//! Criterion benches for the slaq workspace (see benches/).
