//! The seed (pre-dense-index) placement heuristic, kept verbatim as a
//! **differential-testing oracle** for [`crate::solver::solve`].
//!
//! This is the original id-keyed implementation: `BTreeMap` state,
//! `O(n)` `idx_of` position scans in the inner loops. It is *not* part of
//! the public API and is compiled into non-test builds only so the
//! property tests in `solver.rs` and the workspace-level differential
//! suite can compare outcomes on randomized problems. The production
//! solver must produce **identical** `PlacementOutcome`s — both run the
//! same exact-allocation flow, so any divergence is a bug in the dense
//! rewrite of steps 0–6.

use crate::allocation::allocate;
use crate::placement::Placement;
use crate::problem::{AppRequest, JobRequest, PlacementProblem};
use crate::solver::PlacementOutcome;
use slaq_types::{fcmp, AppId, CpuMhz, JobId, MemMb, NodeId};
use std::collections::BTreeMap;

/// Mutable per-node trackers used while making discrete decisions.
struct NodeState {
    id: NodeId,
    mem_free: MemMb,
    cpu_free: f64,
}

/// Solve one cycle with the seed algorithm. `prev` is the placement
/// currently in force.
#[doc(hidden)]
pub fn solve_reference(problem: &PlacementProblem, prev: &Placement) -> PlacementOutcome {
    let cfg = &problem.config;
    let mut budget = cfg.max_changes.unwrap_or(usize::MAX);

    let mut nodes: Vec<NodeState> = problem
        .nodes
        .iter()
        .map(|n| NodeState {
            id: n.id,
            mem_free: n.mem,
            cpu_free: n.cpu.as_f64(),
        })
        .collect();
    let idx_of = |ns: &[NodeState], id: NodeId| ns.iter().position(|n| n.id == id);

    // ------------------------------------------------------------------
    // Step 0/1: keep previous app instances and running jobs; reserve
    // memory and commit CPU.
    // ------------------------------------------------------------------
    let mut app_hosts: BTreeMap<AppId, Vec<NodeId>> = BTreeMap::new();
    for app in &problem.apps {
        let mut hosts: Vec<NodeId> = prev
            .apps
            .get(&app.id)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        hosts.retain(|h| idx_of(&nodes, *h).is_some());
        for h in &hosts {
            let i = idx_of(&nodes, *h).expect("retained");
            nodes[i].mem_free = nodes[i].mem_free.saturating_sub(app.mem_per_instance);
        }
        app_hosts.insert(app.id, hosts);
    }

    let mut ordered_jobs: Vec<&JobRequest> = problem.jobs.iter().collect();
    ordered_jobs.sort_by(|a, b| fcmp(b.priority, a.priority).then(a.id.cmp(&b.id)));

    let mut job_nodes: BTreeMap<JobId, NodeId> = BTreeMap::new();
    let mut committed: BTreeMap<JobId, f64> = BTreeMap::new();
    for job in &ordered_jobs {
        if let Some(node) = job.running_on {
            if let Some(i) = idx_of(&nodes, node) {
                if nodes[i].mem_free.fits(job.mem) || prev.jobs.contains_key(&job.id) {
                    nodes[i].mem_free = nodes[i].mem_free.saturating_sub(job.mem);
                    let got = job.demand.as_f64().min(nodes[i].cpu_free).max(0.0);
                    nodes[i].cpu_free -= got;
                    committed.insert(job.id, got);
                    job_nodes.insert(job.id, node);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Step 2: grow/shrink application instance sets.
    // ------------------------------------------------------------------
    let mut app_take: BTreeMap<(AppId, NodeId), f64> = BTreeMap::new();
    let mut ordered_apps: Vec<&AppRequest> = problem.apps.iter().collect();
    ordered_apps.sort_by(|a, b| b.demand.total_cmp(a.demand).then(a.id.cmp(&b.id)));
    for app in &ordered_apps {
        let hosts = app_hosts.entry(app.id).or_default();
        let shrink_to = if app.demand.is_zero() {
            app.min_instances.max(1) as usize
        } else {
            app.max_instances as usize
        };
        while hosts.len() > shrink_to && budget > 0 {
            let (pos, &host) = hosts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ca = idx_of(&nodes, **a).map_or(0.0, |i| nodes[i].cpu_free);
                    let cb = idx_of(&nodes, **b).map_or(0.0, |i| nodes[i].cpu_free);
                    fcmp(ca, cb).then(a.cmp(b))
                })
                .expect("hosts nonempty");
            if let Some(i) = idx_of(&nodes, host) {
                nodes[i].mem_free += app.mem_per_instance;
            }
            hosts.remove(pos);
            budget -= 1;
        }
        loop {
            let reachable: f64 = hosts
                .iter()
                .filter_map(|h| idx_of(&nodes, *h))
                .map(|i| nodes[i].cpu_free)
                .sum();
            if reachable + 1e-6 >= app.demand.as_f64()
                || hosts.len() >= app.max_instances as usize
                || budget == 0
            {
                break;
            }
            let cand = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.mem_free.fits(app.mem_per_instance)
                        && n.cpu_free > 1e-9
                        && !hosts.contains(&n.id)
                })
                .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
                .map(|(i, _)| i);
            let Some(i) = cand else { break };
            nodes[i].mem_free -= app.mem_per_instance;
            hosts.push(nodes[i].id);
            budget -= 1;
        }
        let mut remaining = app.demand.as_f64();
        for _ in 0..hosts.len().max(1) {
            if remaining <= 1e-6 {
                break;
            }
            let open: Vec<usize> = hosts
                .iter()
                .filter_map(|h| idx_of(&nodes, *h))
                .filter(|&i| nodes[i].cpu_free > 1e-9)
                .collect();
            if open.is_empty() {
                break;
            }
            let share = remaining / open.len() as f64;
            for i in open {
                let host = nodes[i].id;
                let take = share.min(nodes[i].cpu_free).min(remaining);
                nodes[i].cpu_free -= take;
                remaining -= take;
                *app_take.entry((app.id, host)).or_insert(0.0) += take;
            }
        }
        while hosts.len() < app.min_instances as usize && budget > 0 {
            let cand = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.mem_free.fits(app.mem_per_instance) && !hosts.contains(&n.id))
                .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
                .map(|(i, _)| i);
            let Some(i) = cand else { break };
            nodes[i].mem_free -= app.mem_per_instance;
            hosts.push(nodes[i].id);
            budget -= 1;
        }
        hosts.sort();
    }

    // ------------------------------------------------------------------
    // Step 3: place unplaced jobs with positive targets, priority order.
    // ------------------------------------------------------------------
    let place_job =
        |job: &JobRequest, nodes: &mut [NodeState], budget: &mut usize| -> Option<NodeId> {
            if *budget == 0 || job.demand.is_zero() {
                return None;
            }
            if let Some(aff) = job.affinity {
                if let Some(i) = idx_of(nodes, aff) {
                    if nodes[i].mem_free.fits(job.mem)
                        && nodes[i].cpu_free >= job.demand.as_f64() * 0.5
                    {
                        nodes[i].mem_free -= job.mem;
                        let got = job.demand.as_f64().min(nodes[i].cpu_free);
                        nodes[i].cpu_free -= got;
                        *budget -= 1;
                        return Some(aff);
                    }
                }
            }
            let best = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.mem_free.fits(job.mem) && n.cpu_free > 1e-9)
                .max_by(|(_, a), (_, b)| {
                    fcmp(
                        a.cpu_free.min(job.demand.as_f64()),
                        b.cpu_free.min(job.demand.as_f64()),
                    )
                    .then(a.mem_free.cmp(&b.mem_free))
                    .then(b.id.cmp(&a.id))
                })
                .map(|(i, _)| i)?;
            nodes[best].mem_free -= job.mem;
            let got = job.demand.as_f64().min(nodes[best].cpu_free);
            nodes[best].cpu_free -= got;
            *budget -= 1;
            Some(nodes[best].id)
        };

    for job in &ordered_jobs {
        if job_nodes.contains_key(&job.id) {
            continue;
        }
        if let Some(node) = place_job(job, &mut nodes, &mut budget) {
            job_nodes.insert(job.id, node);
            committed.insert(job.id, job.demand.as_f64().min(f64::MAX));
        }
    }

    // ------------------------------------------------------------------
    // Step 4: rebalance — migrate shortchanged running jobs to nodes
    // with room.
    // ------------------------------------------------------------------
    for job in &ordered_jobs {
        if budget == 0 {
            break;
        }
        let Some(&cur) = job_nodes.get(&job.id) else {
            continue;
        };
        if job.running_on != Some(cur) {
            continue;
        }
        let got = committed.get(&job.id).copied().unwrap_or(0.0);
        let deficit = job.demand.as_f64() - got;
        if deficit <= job.demand.as_f64() * 0.25 {
            continue;
        }
        let target = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.id != cur && n.mem_free.fits(job.mem) && n.cpu_free > got + deficit * 0.5
            })
            .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
            .map(|(i, _)| i);
        if let Some(t) = target {
            let ci = idx_of(&nodes, cur).expect("current node exists");
            nodes[ci].mem_free += job.mem;
            nodes[ci].cpu_free += got;
            nodes[t].mem_free -= job.mem;
            let newgot = job.demand.as_f64().min(nodes[t].cpu_free);
            nodes[t].cpu_free -= newgot;
            committed.insert(job.id, newgot);
            job_nodes.insert(job.id, nodes[t].id);
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Step 5: eviction — unplaced high-priority jobs displace strictly
    // lower-priority running jobs (suspend + start = two changes).
    // ------------------------------------------------------------------
    for job in &ordered_jobs {
        if budget < 2 {
            break;
        }
        if job_nodes.contains_key(&job.id) || job.demand.is_zero() {
            continue;
        }
        let victim = ordered_jobs
            .iter()
            .rev() // ascending priority
            .filter(|v| {
                job_nodes.contains_key(&v.id)
                    && v.priority + problem.config.evict_priority_gap < job.priority
            })
            .find(|v| {
                let node = job_nodes[&v.id];
                let i = idx_of(&nodes, node).expect("placed on known node");
                (nodes[i].mem_free + v.mem).fits(job.mem)
            })
            .map(|v| v.id);
        if let Some(vid) = victim {
            let vreq = problem
                .jobs
                .iter()
                .find(|j| j.id == vid)
                .expect("victim exists");
            let node = job_nodes.remove(&vid).expect("victim placed");
            let i = idx_of(&nodes, node).expect("known node");
            nodes[i].mem_free += vreq.mem;
            nodes[i].cpu_free += committed.remove(&vid).unwrap_or(0.0);
            budget -= 1; // the suspension
            nodes[i].mem_free -= job.mem;
            let got = job.demand.as_f64().min(nodes[i].cpu_free);
            nodes[i].cpu_free -= got;
            committed.insert(job.id, got);
            job_nodes.insert(job.id, node);
            budget -= 1; // the start
        }
    }

    // ------------------------------------------------------------------
    // Step 6: reclaim — memory-blocked jobs retire zero-load application
    // instances (above min_instances) and take their slot.
    // ------------------------------------------------------------------
    for job in &ordered_jobs {
        if budget < 2 {
            break;
        }
        if job_nodes.contains_key(&job.id) || job.demand.is_zero() {
            continue;
        }
        'apps: for app in &ordered_apps {
            let hosts = app_hosts.get_mut(&app.id).expect("initialized above");
            if hosts.len() <= app.min_instances.max(1) as usize {
                continue;
            }
            for (pos, &host) in hosts.iter().enumerate() {
                let take = app_take.get(&(app.id, host)).copied().unwrap_or(0.0);
                if take > 1e-6 {
                    continue;
                }
                let i = idx_of(&nodes, host).expect("host known");
                if (nodes[i].mem_free + app.mem_per_instance).fits(job.mem)
                    && nodes[i].cpu_free > 1e-9
                {
                    nodes[i].mem_free += app.mem_per_instance;
                    hosts.remove(pos);
                    budget -= 1; // the instance stop
                    nodes[i].mem_free -= job.mem;
                    let got = job.demand.as_f64().min(nodes[i].cpu_free);
                    nodes[i].cpu_free -= got;
                    committed.insert(job.id, got);
                    job_nodes.insert(job.id, host);
                    budget -= 1; // the job start
                    break 'apps;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Step 7: exact allocation + bookkeeping.
    // ------------------------------------------------------------------
    let placement = allocate(
        &problem.nodes,
        &problem.apps,
        &app_hosts,
        &problem.jobs,
        &job_nodes,
        problem.config.mhz_unit,
    );
    let changes = placement.diff(prev);

    let satisfied_apps: BTreeMap<AppId, CpuMhz> = problem
        .apps
        .iter()
        .map(|a| (a.id, placement.app_alloc(a.id)))
        .collect();
    let satisfied_jobs: BTreeMap<JobId, CpuMhz> =
        placement.jobs.iter().map(|(&j, &(_, c))| (j, c)).collect();
    let unplaced_jobs: Vec<JobId> = problem
        .jobs
        .iter()
        .filter(|j| !j.demand.is_zero() && !placement.jobs.contains_key(&j.id))
        .map(|j| j.id)
        .collect();

    PlacementOutcome {
        placement,
        changes,
        satisfied_apps,
        satisfied_jobs,
        unplaced_jobs,
    }
}
