//! Regenerate **Figure 2**: CPU power allocated to each workload and the
//! demand each workload would need to achieve maximum utility, vs time.
//!
//! ```text
//! cargo run --release -p slaq-experiments --bin fig2 [-- --small]
//! ```
//!
//! Writes `out/fig2.csv` and prints an ASCII rendition.

use slaq_core::scenario::PaperParams;
use slaq_experiments::ascii::{downsample, plot, summary};
use slaq_experiments::{fig2_csv, run_paper_experiment};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let params = if small {
        PaperParams::small()
    } else {
        PaperParams::default()
    };
    eprintln!(
        "running paper experiment ({} nodes, horizon {} s)…",
        params.nodes, params.horizon_secs
    );
    let report = run_paper_experiment(&params).expect("simulation must succeed");

    std::fs::create_dir_all("out").expect("create out/");
    let csv = fig2_csv(&report);
    std::fs::write("out/fig2.csv", &csv).expect("write out/fig2.csv");

    let m = &report.metrics;
    println!("Figure 2 — CPU allocated to each workload and max-utility demands\n");
    let series = [
        (
            "satisfied transactional",
            downsample(m.series("trans_alloc"), 110),
        ),
        (
            "satisfied long-running",
            downsample(m.series("jobs_alloc"), 110),
        ),
        (
            "transactional demand",
            downsample(m.series("trans_demand"), 110),
        ),
        (
            "long-running demand",
            downsample(m.series("jobs_demand"), 110),
        ),
    ];
    let refs: Vec<(&str, &[(f64, f64)])> = series.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    println!("{}", plot(&refs, 110, 22));
    for name in ["trans_alloc", "jobs_alloc", "trans_demand", "jobs_demand"] {
        println!("{}", summary(name, m.series(name)));
    }
    println!("\nwrote out/fig2.csv ({} rows)", csv.lines().count() - 1);
}
