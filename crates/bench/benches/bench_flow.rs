//! E7 — flow-kernel microbench: Dinic max-flow and min-cost flow on
//! bipartite transportation networks shaped exactly like the allocation
//! subproblem (entities × nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slaq_flow::FlowNetwork;
use std::hint::black_box;

/// Build `entities × nodes` transportation network; each entity is
/// connected to ~4 pseudo-random nodes.
fn build(entities: usize, nodes: usize, costs: bool) -> (FlowNetwork, usize, usize) {
    let s = 0usize;
    let t = 1 + entities + nodes;
    let mut g = FlowNetwork::new(t + 1);
    for e in 0..entities {
        let demand = 600 + ((e * 7919) % 2400) as i64;
        g.add_edge_with_cost(s, 1 + e, demand, i64::from(costs && e % 3 == 0));
        for k in 0..4usize {
            let n = (e * 31 + k * 17) % nodes;
            g.add_edge(1 + e, 1 + entities + n, demand);
        }
    }
    for n in 0..nodes {
        g.add_edge(1 + entities + n, t, 12_000);
    }
    (g, s, t)
}

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    for &(entities, nodes) in &[(50usize, 25usize), (200, 50), (800, 100)] {
        group.bench_with_input(
            BenchmarkId::new("dinic_max_flow", format!("{entities}e_{nodes}n")),
            &(entities, nodes),
            |b, &(e, n)| {
                b.iter(|| {
                    let (mut g, s, t) = build(e, n, false);
                    black_box(g.max_flow(s, t))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("min_cost_flow", format!("{entities}e_{nodes}n")),
            &(entities, nodes),
            |b, &(e, n)| {
                b.iter(|| {
                    let (mut g, s, t) = build(e, n, true);
                    black_box(g.min_cost_flow(s, t, i64::MAX / 8).cost)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
