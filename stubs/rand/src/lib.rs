//! Offline stand-in for the `rand` crate: the `RngCore`/`SeedableRng`
//! core traits plus a `Rng` extension with uniform `gen_range` sampling
//! over half-open ranges.

pub mod rand_core {
    //! Core generator traits (mirrors the `rand_core` crate layout).

    /// A source of random 64-bit words.
    pub trait RngCore {
        /// Next raw 32 bits.
        fn next_u32(&mut self) -> u32;
        /// Next raw 64 bits.
        fn next_u64(&mut self) -> u64;
    }

    /// Generators constructible from seeds.
    pub trait SeedableRng: Sized {
        /// Build from a 64-bit seed (SplitMix64 key-expansion convention).
        fn seed_from_u64(state: u64) -> Self;
    }
}

pub use rand_core::{RngCore, SeedableRng};

/// Types samplable uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "empty gen_range");
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range; panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
