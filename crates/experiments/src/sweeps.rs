//! E4: placement-solver scalability sweeps (rayon-parallel), seed
//! robustness sweeps of the paper experiment, and brief runs over the
//! whole scenario corpus.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use slaq_core::scenario::PaperParams;
use slaq_core::ScenarioSpec;
use slaq_placement::problem::{
    AppRequest, JobRequest, NodeCapacity, PlacementConfig, PlacementProblem,
};
use slaq_placement::{solve, Placement};
use slaq_types::{AppId, CpuMhz, JobId, MemMb, NodeId, Result, SimTime};
use std::time::Instant;

/// One cell of the placement scalability grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Node count.
    pub nodes: u32,
    /// Job count.
    pub jobs: u32,
    /// Application count.
    pub apps: u32,
    /// Wall time of one `solve` call, microseconds.
    pub solve_micros: u128,
    /// Fraction of total job demand satisfied.
    pub satisfaction: f64,
}

/// Build a synthetic placement problem of the given size, shaped like the
/// paper's (3000 MHz jobs on 12 000 MHz nodes, 3 jobs per node by memory).
pub fn synthetic_problem(nodes: u32, jobs: u32, apps: u32) -> PlacementProblem {
    let node_caps: Vec<NodeCapacity> = (0..nodes)
        .map(|i| NodeCapacity {
            id: NodeId::new(i),
            cpu: CpuMhz::new(12_000.0),
            mem: MemMb::new(4096),
        })
        .collect();
    let app_reqs: Vec<AppRequest> = (0..apps)
        .map(|i| AppRequest {
            id: AppId::new(i),
            demand: CpuMhz::new(12_000.0 * nodes as f64 * 0.3 / apps.max(1) as f64),
            mem_per_instance: MemMb::new(1024),
            min_instances: 1,
            max_instances: nodes,
            affinity: Vec::new(),
        })
        .collect();
    let job_reqs: Vec<JobRequest> = (0..jobs)
        .map(|i| JobRequest {
            id: JobId::new(i),
            // Deterministic spread of demands, 600..3000 MHz.
            demand: CpuMhz::new(600.0 + 2400.0 * ((i * 7919) % 100) as f64 / 100.0),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: ((i * 31) % 17) as f64,
        })
        .collect();
    PlacementProblem {
        nodes: node_caps,
        apps: app_reqs,
        jobs: job_reqs,
        config: PlacementConfig::default(),
    }
}

/// Time `solve` across a grid of `(nodes, jobs)` sizes, in parallel.
pub fn placement_scalability(grid: &[(u32, u32)], apps: u32) -> Vec<SweepCell> {
    grid.par_iter()
        .map(|&(nodes, jobs)| {
            let problem = synthetic_problem(nodes, jobs, apps);
            let start = Instant::now();
            let outcome = solve(&problem, &Placement::empty());
            let solve_micros = start.elapsed().as_micros();
            let demand: f64 = problem.jobs.iter().map(|j| j.demand.as_f64()).sum();
            let got: f64 = outcome.satisfied_jobs.values().map(|c| c.as_f64()).sum();
            SweepCell {
                nodes,
                jobs,
                apps,
                solve_micros,
                satisfaction: if demand > 0.0 { got / demand } else { 1.0 },
            }
        })
        .collect()
}

/// Shape robustness across workload seeds: re-run the (small) paper
/// experiment under different arrival streams and report the crossover
/// time and equalization gap per seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedOutcome {
    /// Workload seed.
    pub seed: u64,
    /// Crossover instant, if any.
    pub crossover_secs: Option<f64>,
    /// Mean equalization gap under contention.
    pub equalization_gap: Option<f64>,
    /// Jobs completed.
    pub completed: usize,
}

/// Run the seed sweep (parallel).
pub fn seed_sweep(base: &PaperParams, seeds: &[u64]) -> Vec<SeedOutcome> {
    seeds
        .par_iter()
        .map(|&seed| {
            let mut p = base.clone();
            p.seed = seed;
            let report = crate::figures::run_paper_experiment(&p).expect("scenario must simulate");
            let shape = crate::shape::shape_metrics(
                &report,
                slaq_types::SimTime::from_secs(p.tail_start_secs),
                slaq_types::SimTime::from_secs(p.horizon_secs),
            );
            SeedOutcome {
                seed,
                crossover_secs: shape.crossover_secs,
                equalization_gap: shape.equalization_gap,
                completed: report.job_stats.completed,
            }
        })
        .collect()
}

/// One corpus scenario's scorecard from a (possibly horizon-capped) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusOutcome {
    /// Preset name.
    pub scenario: String,
    /// Controller the spec names (`utility` | `fcfs` | `static`) —
    /// corpus rows compare controllers per scenario, not a hard-coded
    /// one.
    pub controller: String,
    /// Cluster size.
    pub nodes: usize,
    /// Transactional applications.
    pub apps: usize,
    /// Jobs the generated stream submits within the (capped) horizon.
    pub jobs_submitted: usize,
    /// Control cycles executed.
    pub cycles: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Mean measured transactional utility.
    pub mean_trans_utility: f64,
    /// Mean controller-neutral job outlook.
    pub mean_jobs_outlook: f64,
    /// Mean request-weighted warmth of routed traffic (`route_quality`
    /// series); `0.0` for scenarios without a routing tier.
    pub route_quality: f64,
    /// Worst per-app SLO compliance across the run (fraction of cycles
    /// meeting the app's `slo` target, minimized over apps); `1.0` for
    /// scenarios without transactional applications. The sweep runs
    /// with the recorder on to read the SLO board — bit-identical
    /// results either way, per the observability gate.
    pub slo_compliance: f64,
}

/// Run every corpus preset under its own controller, horizon-capped to
/// `max_cycles` control cycles — scenarios are data, so the cap is one
/// field write on the spec. `None` runs each preset's full horizon.
pub fn corpus_sweep(max_cycles: Option<usize>) -> Result<Vec<CorpusOutcome>> {
    sweep_specs(ScenarioSpec::corpus(), max_cycles)
}

/// Cross the corpus with controller kinds: every preset re-run under
/// each requested controller (`utility` | `fcfs` | `static`), so one
/// table answers "which controller wins on which scenario". The
/// controller is spec data, so each cell is a single field write.
pub fn corpus_controller_sweep(
    kinds: &[slaq_core::ControllerKind],
    max_cycles: Option<usize>,
) -> Result<Vec<CorpusOutcome>> {
    let mut specs = Vec::new();
    for spec in ScenarioSpec::corpus() {
        for &kind in kinds {
            let mut s = spec.clone();
            s.controller.kind = kind;
            specs.push(s);
        }
    }
    sweep_specs(specs, max_cycles)
}

fn sweep_specs(specs: Vec<ScenarioSpec>, max_cycles: Option<usize>) -> Result<Vec<CorpusOutcome>> {
    let rows: Vec<Result<CorpusOutcome>> = specs
        .par_iter()
        .map(|spec| {
            let mut spec = spec.clone();
            if let Some(cycles) = max_cycles {
                spec.timing.cap_to_cycles(cycles);
            }
            let horizon = SimTime::from_secs(spec.timing.horizon_secs);
            // Observe each run so the SLO board is populated (the
            // recorder observes, never steers — every other column is
            // bit-identical to an unobserved run).
            spec.controller.observe = slaq_core::ObserveSpec::On;
            let scenario = spec.materialize()?;
            let mut controller = scenario.controller();
            let mut sim = scenario.build()?;
            let report = sim.run(controller.as_mut())?;
            let slo_compliance = sim
                .recorder()
                .slo_board()
                .iter()
                .map(|(_, tracker)| tracker.compliance())
                .fold(1.0f64, f64::min);
            Ok(CorpusOutcome {
                scenario: spec.name.clone(),
                controller: spec.controller.kind.name().to_string(),
                nodes: scenario.cluster.len(),
                apps: scenario.apps.len(),
                jobs_submitted: report.job_stats.submitted,
                cycles: report.cycles,
                completed: report.job_stats.completed,
                mean_trans_utility: report
                    .metrics
                    .mean_over("trans_utility", SimTime::ZERO, horizon)
                    .unwrap_or(0.0),
                mean_jobs_outlook: report
                    .metrics
                    .mean_over("jobs_outlook", SimTime::ZERO, horizon)
                    .unwrap_or(0.0),
                route_quality: report
                    .metrics
                    .mean_over("route_quality", SimTime::ZERO, horizon)
                    .unwrap_or(0.0),
                slo_compliance,
            })
        })
        .collect();
    rows.into_iter().collect()
}

/// One cell of the control-plane staleness sweep: a corpus preset run
/// under one pipeline mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StalenessCell {
    /// Preset name.
    pub scenario: String,
    /// Pipeline mode label (`sync` | `overlapN`).
    pub mode: String,
    /// Control cycles executed.
    pub cycles: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Σ over cycles of the satisfied CPU samples (`trans_alloc` +
    /// `jobs_alloc`) — the series the staleness gate pins.
    pub satisfied_cpu: f64,
    /// Mean wall-clock solve latency (µs) over enacted plans (0 under
    /// `sync`, which records no pipeline series).
    pub mean_solve_micros: f64,
    /// Mean age of the enacted plan in seconds (0 under `sync`).
    pub mean_staleness_secs: f64,
}

/// The staleness sweep: every corpus preset × every requested pipeline
/// mode, horizon-capped to `max_cycles` cycles. Quantifies what acting
/// on a stale snapshot costs: how much satisfied CPU (and how many job
/// completions) survive as `latency_cycles` grows. The pipeline is spec
/// data, so each cell is a single field write.
pub fn staleness_sweep(
    modes: &[slaq_core::PipelineSpec],
    max_cycles: Option<usize>,
) -> Result<Vec<StalenessCell>> {
    let mut runs: Vec<(ScenarioSpec, String)> = Vec::new();
    for spec in ScenarioSpec::corpus() {
        for &mode in modes {
            let mut s = spec.clone();
            s.controller.pipeline = mode;
            if let Some(cycles) = max_cycles {
                s.timing.cap_to_cycles(cycles);
            }
            runs.push((s, mode.label()));
        }
    }
    let cells: Vec<Result<StalenessCell>> = runs
        .par_iter()
        .map(|(spec, label)| {
            let report = spec.run()?;
            let sum =
                |name: &str| -> f64 { report.metrics.series(name).iter().map(|&(_, v)| v).sum() };
            let mean = |name: &str| -> f64 {
                let pts = report.metrics.series(name);
                if pts.is_empty() {
                    0.0
                } else {
                    pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64
                }
            };
            Ok(StalenessCell {
                scenario: spec.name.clone(),
                mode: label.clone(),
                cycles: report.cycles,
                completed: report.job_stats.completed,
                satisfied_cpu: sum("trans_alloc") + sum("jobs_alloc"),
                mean_solve_micros: mean("pipeline_solve_micros"),
                mean_staleness_secs: mean("pipeline_staleness_secs"),
            })
        })
        .collect();
    cells.into_iter().collect()
}

/// One cell of the routing-policy sweep: the `request-routing` preset
/// re-run under one routing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingCell {
    /// Preset name.
    pub scenario: String,
    /// Routing policy label (`off` | `uniform` | `affinity`).
    pub policy: String,
    /// Control cycles executed.
    pub cycles: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Mean request-weighted warmth of routed traffic (0 when off).
    pub route_quality: f64,
    /// Mean warm-work discount factor (1 when off — no work saved).
    pub route_discount: f64,
    /// Mean measured transactional utility.
    pub mean_trans_utility: f64,
    /// Mean CPU the job tier held (MHz).
    pub mean_jobs_alloc: f64,
}

/// The routing-policy sweep: one preset re-run under each requested
/// routing policy, horizon-capped to `max_cycles` cycles. Quantifies
/// what request affinity buys: how much per-request work the warm
/// routes save and where the released CPU goes. The policy is spec
/// data, so each cell is a single field write.
pub fn routing_sweep(
    preset: &str,
    policies: &[slaq_core::RoutingSpec],
    max_cycles: Option<usize>,
) -> Result<Vec<RoutingCell>> {
    let base = ScenarioSpec::preset(preset)
        .ok_or_else(|| slaq_types::SlaqError::spec("scenario", format!("no preset {preset:?}")))?;
    let runs: Vec<(ScenarioSpec, String)> = policies
        .iter()
        .map(|&policy| {
            let mut s = base.clone();
            s.controller.routing = policy;
            if let Some(cycles) = max_cycles {
                s.timing.cap_to_cycles(cycles);
            }
            (s, policy.label().to_string())
        })
        .collect();
    let cells: Vec<Result<RoutingCell>> = runs
        .par_iter()
        .map(|(spec, label)| {
            let horizon = SimTime::from_secs(spec.timing.horizon_secs);
            let report = spec.run()?;
            let mean = |name: &str, fallback: f64| -> f64 {
                report
                    .metrics
                    .mean_over(name, SimTime::ZERO, horizon)
                    .unwrap_or(fallback)
            };
            Ok(RoutingCell {
                scenario: spec.name.clone(),
                policy: label.clone(),
                cycles: report.cycles,
                completed: report.job_stats.completed,
                route_quality: mean("route_quality", 0.0),
                route_discount: mean("route_discount", 1.0),
                mean_trans_utility: mean("trans_utility", 0.0),
                mean_jobs_alloc: mean("jobs_alloc", 0.0),
            })
        })
        .collect();
    cells.into_iter().collect()
}

/// Text table for the routing-policy sweep.
pub fn format_routing(cells: &[RoutingCell]) -> String {
    let mut out = String::from(
        "scenario              policy    cycles  done   route-q  discount  mean u_T  jobs-mhz\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{:<21} {:<9} {:<7} {:<6} {:<8.3} {:<9.3} {:<9.3} {:.0}\n",
            c.scenario,
            c.policy,
            c.cycles,
            c.completed,
            c.route_quality,
            c.route_discount,
            c.mean_trans_utility,
            c.mean_jobs_alloc,
        ));
    }
    out
}

/// Text table for the staleness sweep.
pub fn format_staleness(cells: &[StalenessCell]) -> String {
    let mut out = String::from(
        "scenario              mode      cycles  done   satisfied-cpu  solve(us)  staleness(s)\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{:<21} {:<9} {:<7} {:<6} {:<14.0} {:<10.1} {:.0}\n",
            c.scenario,
            c.mode,
            c.cycles,
            c.completed,
            c.satisfied_cpu,
            c.mean_solve_micros,
            c.mean_staleness_secs,
        ));
    }
    out
}

/// Text table for the corpus sweep.
pub fn format_corpus(rows: &[CorpusOutcome]) -> String {
    let mut out = String::from(
        "scenario              ctrl     nodes  apps  submitted  cycles  done   mean u_T   outlook  route-q  slo%\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<21} {:<8} {:<6} {:<5} {:<10} {:<7} {:<6} {:<10.3} {:<8.3} {:<8.3} {:.1}\n",
            r.scenario,
            r.controller,
            r.nodes,
            r.apps,
            r.jobs_submitted,
            r.cycles,
            r.completed,
            r.mean_trans_utility,
            r.mean_jobs_outlook,
            r.route_quality,
            r.slo_compliance * 100.0,
        ));
    }
    out
}

/// Text table for the scalability grid.
pub fn format_scalability(cells: &[SweepCell]) -> String {
    let mut out = String::from("nodes   jobs   apps   solve(us)   job-satisfaction\n");
    for c in cells {
        out.push_str(&format!(
            "{:<7} {:<6} {:<6} {:<11} {:.3}\n",
            c.nodes, c.jobs, c.apps, c.solve_micros, c.satisfaction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_problem_is_well_formed() {
        let p = synthetic_problem(10, 30, 2);
        assert_eq!(p.nodes.len(), 10);
        assert_eq!(p.jobs.len(), 30);
        assert_eq!(p.apps.len(), 2);
        assert!(p.jobs.iter().all(|j| j.demand.as_f64() >= 600.0));
    }

    #[test]
    fn scalability_sweep_returns_cells_in_grid_order() {
        let grid = [(5u32, 10u32), (10, 30)];
        let cells = placement_scalability(&grid, 1);
        assert_eq!(cells.len(), 2);
        assert_eq!((cells[0].nodes, cells[0].jobs), (5, 10));
        assert!(cells.iter().all(|c| c.satisfaction > 0.0));
    }

    #[test]
    fn bigger_instances_satisfy_loads_that_fit() {
        // 40 nodes × 12 000 = 480 000 MHz vs ~30 jobs × ≤3000: trivial fit.
        let cells = placement_scalability(&[(40, 30)], 1);
        assert!(cells[0].satisfaction > 0.99, "{}", cells[0].satisfaction);
    }

    #[test]
    fn controller_sweep_crosses_presets_with_kinds() {
        use slaq_core::ControllerKind;
        // One small preset × all three controllers: the kind column must
        // reflect the spec, and the baselines must actually run.
        let kinds = [
            ControllerKind::Utility,
            ControllerKind::Fcfs,
            ControllerKind::Static {
                trans_fraction: 0.5,
            },
        ];
        let rows = corpus_controller_sweep(&kinds, Some(2)).unwrap();
        assert_eq!(rows.len(), ScenarioSpec::corpus().len() * kinds.len());
        let small: Vec<&CorpusOutcome> = rows
            .iter()
            .filter(|r| r.scenario == "paper-small")
            .collect();
        let names: Vec<&str> = small.iter().map(|r| r.controller.as_str()).collect();
        assert_eq!(names, vec!["utility", "fcfs", "static"]);
        for r in &small {
            assert!(r.cycles >= 2, "{}/{}", r.scenario, r.controller);
        }
    }

    #[test]
    fn staleness_sweep_crosses_corpus_with_pipeline_modes() {
        use slaq_core::PipelineSpec;
        let modes = [PipelineSpec::Sync, PipelineSpec::overlap(1)];
        let cells = staleness_sweep(&modes, Some(2)).unwrap();
        assert_eq!(cells.len(), ScenarioSpec::corpus().len() * modes.len());
        for pair in cells.chunks(2) {
            let (sync, overlap) = (&pair[0], &pair[1]);
            assert_eq!(sync.scenario, overlap.scenario);
            assert_eq!(sync.mode, "sync");
            assert_eq!(overlap.mode, "overlap1");
            // Only the overlapped run records pipeline series; its
            // enacted plans are exactly one cycle stale.
            assert_eq!(sync.mean_staleness_secs, 0.0, "{}", sync.scenario);
            assert!(
                overlap.mean_staleness_secs > 0.0,
                "{}: no staleness recorded",
                overlap.scenario
            );
            assert!(overlap.mean_solve_micros > 0.0, "{}", overlap.scenario);
        }
        let table = format_staleness(&cells);
        assert_eq!(table.lines().count(), cells.len() + 1);
    }

    #[test]
    fn routing_sweep_crosses_the_preset_with_policies() {
        use slaq_core::RoutingSpec;
        let policies = [
            RoutingSpec::Off,
            RoutingSpec::Uniform {
                warm_gain: 0.5,
                warm_alpha: 0.5,
            },
            RoutingSpec::Affinity {
                temperature: 0.0,
                warm_gain: 0.5,
                warm_alpha: 0.5,
                load_penalty: 0.4,
                placement_bias: 600.0,
            },
        ];
        let cells = routing_sweep("request-routing", &policies, Some(6)).unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.policy.as_str()).collect();
        assert_eq!(labels, vec!["off", "uniform", "affinity"]);
        // Off records no router series: quality 0, discount pinned 1.
        assert_eq!(cells[0].route_quality, 0.0);
        assert_eq!(cells[0].route_discount, 1.0);
        // Both live policies route and save work; even six cycles in,
        // warm concentration beats round-robin spreading.
        for c in &cells[1..] {
            assert!(c.route_quality > 0.0, "{}: no warmth built", c.policy);
            assert!(c.route_discount < 1.0, "{}: no work saved", c.policy);
        }
        assert!(
            cells[2].route_quality > cells[1].route_quality,
            "affinity {:.3} should beat uniform {:.3}",
            cells[2].route_quality,
            cells[1].route_quality
        );
        assert!(routing_sweep("no-such-preset", &policies, Some(1)).is_err());
        let table = format_routing(&cells);
        assert_eq!(table.lines().count(), cells.len() + 1);
        assert!(table.contains("affinity"));
    }

    #[test]
    fn corpus_sweep_touches_every_preset() {
        // Three cycles per preset keeps this minutes-free while still
        // exercising generation → placement → measurement end to end.
        let rows = corpus_sweep(Some(3)).unwrap();
        let names: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, ScenarioSpec::preset_names());
        for r in &rows {
            assert!(r.cycles >= 3, "{}: cycles {}", r.scenario, r.cycles);
            assert!(r.nodes > 0 && r.apps > 0, "{}", r.scenario);
        }
        let table = format_corpus(&rows);
        assert_eq!(table.lines().count(), rows.len() + 1);
        assert!(table.contains("hetero-pool"));
    }
}
