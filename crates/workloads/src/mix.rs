//! Job-template mixes: heterogeneous job populations from one stream.
//!
//! The paper's evaluation submits 800 *identical* jobs; real batch queues
//! mix short against long jobs, small against large memory footprints,
//! and gold against bronze importance tiers. A [`JobMix`] holds weighted
//! [`TemplateClass`]es; each arrival instant draws a class with a seeded
//! RNG, so the mixture itself is reproducible — the same
//! `(mix, arrivals, seed)` yields bit-identical job populations.

use crate::jobstream::JobTemplate;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use slaq_jobs::JobSpec;
use slaq_types::SimTime;

/// One class of jobs inside a [`JobMix`]: the template to instantiate, a
/// selection weight, and the importance tier its jobs carry into the
/// controller's service-differentiation weighting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateClass {
    /// The job shape.
    pub template: JobTemplate,
    /// Relative selection weight (> 0); probabilities are weights
    /// normalized over the mix.
    pub weight: f64,
    /// Importance tier for service differentiation (1.0 = baseline; an
    /// entity weighted `w` is allowed only `1/w` of the common utility
    /// shortfall).
    pub importance: f64,
}

/// A weighted mixture of job templates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMix {
    /// The classes; must be non-empty with positive weights.
    pub classes: Vec<TemplateClass>,
}

/// One concrete job produced by [`JobMix::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedJob {
    /// Submission instant.
    pub submit: SimTime,
    /// The job specification (SLA anchored at `submit`).
    pub spec: JobSpec,
    /// Importance tier inherited from the class that produced it.
    pub importance: f64,
}

impl JobMix {
    /// A single-class mix: every job from `template`, importance 1.0 —
    /// the paper's identical-jobs population.
    pub fn uniform(template: JobTemplate) -> Self {
        JobMix {
            classes: vec![TemplateClass {
                template,
                weight: 1.0,
                importance: 1.0,
            }],
        }
    }

    /// Structural sanity of the mix.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("job mix must have at least one class".into());
        }
        for (i, c) in self.classes.iter().enumerate() {
            if !(c.weight.is_finite() && c.weight > 0.0) {
                return Err(format!("class {i}: weight must be positive"));
            }
            if !(c.importance.is_finite() && c.importance > 0.0) {
                return Err(format!("class {i}: importance must be positive"));
            }
            if !(c.template.goal_factor >= 1.0
                && c.template.exhausted_factor >= c.template.goal_factor)
            {
                return Err(format!(
                    "class {i} ({}): goal factors must satisfy 1 ≤ goal ≤ exhausted",
                    c.template.name_prefix
                ));
            }
            if c.template.work.as_f64() <= 0.0 || c.template.max_speed.as_f64() <= 0.0 {
                return Err(format!(
                    "class {i} ({}): work and max speed must be positive",
                    c.template.name_prefix
                ));
            }
        }
        Ok(())
    }

    /// Instantiate one job per arrival instant. Class choice is driven by
    /// `seed`; job names are `"{class_prefix}-{index_offset + i}"` so
    /// several streams can coexist without name collisions by spacing
    /// their offsets. Single-class mixes skip the RNG entirely, which
    /// keeps them bit-compatible with plain
    /// [`crate::generate_job_stream`].
    pub fn generate(
        &self,
        arrivals: &[SimTime],
        seed: u64,
        index_offset: usize,
    ) -> Vec<GeneratedJob> {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        arrivals
            .iter()
            .enumerate()
            .filter_map(|(i, &submit)| {
                let class = if self.classes.len() == 1 {
                    &self.classes[0]
                } else {
                    let mut pick: f64 = rng.gen_range(0.0..total);
                    let mut chosen = &self.classes[0];
                    for c in &self.classes {
                        chosen = c;
                        pick -= c.weight;
                        if pick < 0.0 {
                            break;
                        }
                    }
                    chosen
                };
                class
                    .template
                    .spec_at(submit, index_offset + i)
                    .map(|spec| GeneratedJob {
                        submit,
                        spec,
                        importance: class.importance,
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::{CpuMhz, MemMb, Work};

    fn template(prefix: &str, work_secs: f64, mem: u64) -> JobTemplate {
        JobTemplate {
            name_prefix: prefix.into(),
            work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(mem),
            goal_factor: 1.25,
            exhausted_factor: 3.0,
        }
    }

    fn two_class_mix() -> JobMix {
        JobMix {
            classes: vec![
                TemplateClass {
                    template: template("short", 1000.0, 512),
                    weight: 3.0,
                    importance: 2.0,
                },
                TemplateClass {
                    template: template("long", 8000.0, 2048),
                    weight: 1.0,
                    importance: 1.0,
                },
            ],
        }
    }

    fn arrivals(n: usize) -> Vec<SimTime> {
        (0..n)
            .map(|i| SimTime::from_secs(i as f64 * 60.0))
            .collect()
    }

    #[test]
    fn uniform_mix_matches_template_everywhere() {
        let mix = JobMix::uniform(template("batch", 4000.0, 1280));
        assert!(mix.validate().is_ok());
        let jobs = mix.generate(&arrivals(10), 5, 0);
        assert_eq!(jobs.len(), 10);
        assert!(jobs.iter().all(|j| j.importance == 1.0));
        assert!(jobs.iter().all(|j| j.spec.mem == MemMb::new(1280)));
        assert_eq!(jobs[3].spec.name, "batch-3");
    }

    #[test]
    fn weighted_mix_draws_both_classes_in_proportion() {
        let mix = two_class_mix();
        let jobs = mix.generate(&arrivals(400), 11, 0);
        let short = jobs
            .iter()
            .filter(|j| j.spec.name.starts_with("short"))
            .count();
        // Expect ~300 of 400; loose band to stay seed-robust.
        assert!((200..=380).contains(&short), "short count {short}");
        // Importance rides along with the class.
        for j in &jobs {
            let expect = if j.spec.name.starts_with("short") {
                2.0
            } else {
                1.0
            };
            assert_eq!(j.importance, expect, "{}", j.spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mix = two_class_mix();
        let a = mix.generate(&arrivals(100), 7, 0);
        let b = mix.generate(&arrivals(100), 7, 0);
        assert_eq!(a, b);
        let c = mix.generate(&arrivals(100), 8, 0);
        assert_ne!(a, c, "different seeds must reshuffle the mixture");
    }

    #[test]
    fn index_offset_spaces_names() {
        let mix = JobMix::uniform(template("batch", 1000.0, 512));
        let jobs = mix.generate(&arrivals(3), 0, 100);
        assert_eq!(jobs[0].spec.name, "batch-100");
        assert_eq!(jobs[2].spec.name, "batch-102");
    }

    #[test]
    fn validation_rejects_degenerate_mixes() {
        assert!(JobMix { classes: vec![] }.validate().is_err());
        let mut m = two_class_mix();
        m.classes[0].weight = 0.0;
        assert!(m.validate().is_err());
        let mut m = two_class_mix();
        m.classes[1].importance = -1.0;
        assert!(m.validate().is_err());
        let mut m = two_class_mix();
        m.classes[0].template.goal_factor = 0.5;
        assert!(m.validate().is_err());
    }
}
