//! The placement heuristic: sticky, priority-ordered, churn-bounded.
//!
//! Pipeline per control cycle (NOMS'08 heuristic extended with jobs):
//!
//! 1. **Keep** — running jobs stay put and previous application instances
//!    survive (free: no churn). Their memory is reserved first.
//! 2. **Grow/shrink apps** — applications claim residual capacity
//!    *before* any new job is placed (kept jobs stay senior): they gain
//!    instances until their cluster-wide targets are covered and shed
//!    instances beyond `max_instances` or, when idle, down to
//!    `min_instances`.
//! 3. **Place** — unplaced jobs with positive CPU targets are placed in
//!    priority order, each on the node offering it the most residual CPU
//!    among those with memory room (affinity-first for suspended images).
//! 4. **Rebalance** — running jobs shortchanged on oversubscribed nodes
//!    migrate to nodes with room (live migration).
//! 5. **Evict** — still-unplaced jobs may displace strictly
//!    lower-priority running jobs (suspend + start, two changes), guarded
//!    by a priority-gap hysteresis.
//! 6. **Reclaim** — jobs still memory-blocked may retire zero-load
//!    application instances (above `min_instances`) and take their slot.
//! 7. **Allocate** — exact CPU division for the final placement via
//!    two-phase max-flow ([`crate::allocation::Allocator`]).
//!
//! Every step consumes from a shared *change budget*
//! ([`crate::problem::PlacementConfig::max_changes`]); keeping an entity
//! where it is costs nothing, which is what makes placements sticky.
//!
//! ### Dense-index hot path
//!
//! All per-cycle state lives in flat `Vec`s indexed by **dense indices**
//! (position in `problem.nodes` / `problem.apps` / `problem.jobs`); ids
//! are translated once at the problem boundary through a
//! [`slaq_types::Interner`]. The inner loops perform no map lookups and
//! no `position()` scans. A long-lived [`Solver`] additionally reuses all
//! of that scratch memory *and* the allocation flow network across
//! cycles, so a steady-state warm re-solve allocates next to nothing.
//! The public [`PlacementOutcome`] stays id-keyed (`BTreeMap`) for API
//! stability.
//!
//! ### Candidate-node heap
//!
//! The "which node?" question of steps 2–4 is answered by a
//! [`CandidateHeap`] — an indexed tournament heap keyed by residual CPU,
//! updated point-wise as placements land and capacities clamp — turning
//! the improvement loop from `O(J·N)` scans into `O(J log N)` queries.
//! The heap reproduces the scan comparators bit for bit (see its module
//! docs for the ordering contract); [`CandidateEngine::Scan`] keeps the
//! original linear scans compilable as the executable specification and
//! as the bench gate's baseline. Like the allocator, the heap is warm-
//! reused: values refresh in place every solve and the tree rebuilds
//! only when the node topology changes. Step 5's victim search (a scan
//! over *jobs*, not nodes) is bounded instead by a failed-scan memo:
//! searchers run priority-descending, so one exhaustive failure proves
//! failure for every later searcher with no easier memory requirement
//! until an eviction changes the node states.

use crate::allocation::Allocator;
use crate::delta::{DeltaStats, SolveDelta};
use crate::heap::CandidateHeap;
use crate::placement::{Placement, PlacementChange};
use crate::problem::{JobRequest, NodeCapacity, PlacementConfig, PlacementProblem};
use serde::{Deserialize, Serialize};
use slaq_obs::Recorder;
use slaq_types::{fcmp, AppId, CpuMhz, Interner, JobId, MemMb, NodeId};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// How the solver answers its candidate-node queries (the per-entity
/// "which node offers the most residual CPU?" question of steps 2–4).
///
/// Both engines produce **bit-identical** outcomes — the heap reproduces
/// the scan comparators exactly (see [`CandidateHeap`]) and differential
/// proptests pin the equality — they differ only in cost: the scan is
/// `O(N)` per query, the heap `O(log N)` typical with a point update per
/// landed placement. [`Scan`](CandidateEngine::Scan) survives as the
/// measurable baseline for the bench gate and as the executable
/// specification of the selection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CandidateEngine {
    /// Linear `max_by` scans over all nodes (the pre-heap hot path).
    Scan,
    /// [`CandidateHeap`]-backed queries, updated incrementally as
    /// placements land and capacities clamp. The default.
    #[default]
    Heap,
}

/// How [`Solver::solve`] treats consecutive cycles.
///
/// Both modes produce **bit-identical** outcomes — the delta path only
/// engages after verifying, against the actual problem, that its answer
/// is forced to equal the batch path's (see
/// [`crate::allocation::Allocator::try_allocate_delta`] and the
/// differential oracle in `tests/delta_solve.rs`). They differ in cost:
/// `Delta` makes the warm-cycle price churn-proportional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolveMode {
    /// Every cycle pays the full pipeline: boundary sorts, discrete
    /// steps, and a complete two-phase allocation flow. The default.
    #[default]
    Batch,
    /// Churn-proportional warm cycles: the node interner and boundary
    /// sort orders are reused when still valid, and the allocation flow
    /// is patched incrementally around dirty jobs instead of re-solved —
    /// falling back to the batch path whenever any reuse precondition
    /// fails.
    Delta,
}

/// Result of one placement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// The new placement with exact allocations.
    pub placement: Placement,
    /// Disruptive actions relative to the previous placement.
    pub changes: Vec<PlacementChange>,
    /// Per-application satisfied CPU.
    pub satisfied_apps: BTreeMap<AppId, CpuMhz>,
    /// Per-job satisfied CPU (running jobs only).
    pub satisfied_jobs: BTreeMap<JobId, CpuMhz>,
    /// Jobs with positive targets that could not be placed this cycle
    /// (they stay pending/suspended).
    pub unplaced_jobs: Vec<JobId>,
}

impl PlacementOutcome {
    /// Σ satisfied transactional CPU.
    pub fn total_app_satisfied(&self) -> CpuMhz {
        self.satisfied_apps.values().copied().sum()
    }

    /// Σ satisfied job CPU.
    pub fn total_job_satisfied(&self) -> CpuMhz {
        self.satisfied_jobs.values().copied().sum()
    }
}

/// Mutable per-node trackers used while making discrete decisions.
/// Indexed by dense node index; `id` is carried only for tie-breaking and
/// final readout.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    id: NodeId,
    mem_free: MemMb,
    /// Residual CPU available for *committing* new demand. An
    /// approximation used only to steer discrete choices; the exact
    /// division is recomputed by the flow at the end.
    cpu_free: f64,
}

/// Reusable per-cycle working memory (all dense-indexed).
#[derive(Debug, Clone, Default)]
struct Scratch {
    nodes: Vec<NodeState>,
    /// Per app: dense node indices currently hosting an instance.
    app_hosts: Vec<Vec<usize>>,
    /// Per app: CPU actually claimed per host, parallel to `app_hosts`.
    app_take: Vec<Vec<f64>>,
    /// Per job: dense node index where placed this cycle.
    job_node: Vec<Option<usize>>,
    /// Per job: CPU committed during the discrete phase.
    committed: Vec<f64>,
    /// Per job: `running_on` translated to a dense index.
    running_dense: Vec<Option<usize>>,
    /// Job dense indices, priority-descending (ties: id ascending).
    ordered_jobs: Vec<usize>,
    /// App dense indices, demand-descending (ties: id ascending).
    ordered_apps: Vec<usize>,
    /// Water-fill temporary: host *positions* with residual CPU.
    open: Vec<usize>,
    /// Host-sort temporary.
    host_sort: Vec<(NodeId, usize, f64)>,
    /// Step-2 affinity term: per dense node, the current app's affinity
    /// bonus (MHz scale). Rebuilt only for apps whose request carries a
    /// non-empty `affinity`; affinity-free apps never read it.
    aff_bonus: Vec<f64>,
    /// Step-0/1 kept jobs committed below their demand, in priority
    /// order: the only jobs step 4's rebalance can act on.
    deficit_jobs: Vec<usize>,
    /// Jobs still unplaced after step 3, in priority order: the only
    /// jobs steps 5/6 can act on (they re-check placement — step 5's
    /// evictions place some mid-iteration).
    unplaced: Vec<usize>,
}

/// Delta mode's discrete-phase certificate: the conditions under which
/// a warm cycle may skip steps 0–6 outright and go straight to the
/// allocator's incremental re-flow, with the previous cycle's discrete
/// decisions (`Scratch::job_node`, `Scratch::app_hosts`) *re-validated
/// rather than recomputed*.
///
/// Armed at the end of a full delta-mode solve only when that cycle
/// **proves** the discrete phase sits at a demand-insensitive fixed
/// point (see the capture site in [`Solver::solve_with_delta`] for the
/// exact conditions). A later cycle may then reuse the scratch
/// decisions verbatim if everything the discrete phase reads — node
/// capacities, job identity/membership/affinity/memory/priority, the
/// config — is bit-equal to this capture, and each drifted demand
/// leaves its node's f64 demand sum under capacity (so keep commits
/// stay saturated and no rebalance deficit can appear). Demand drift
/// on *unplaced* jobs is free: the capture's memory-blocked condition
/// makes every step-3/5/6 probe fail on memory alone, independent of
/// residual CPU. Any condition that cannot be re-verified refuses to
/// the full path, which re-arms or invalidates the capture — reuse is
/// never trusted across a refusal.
#[derive(Debug, Clone, Default)]
struct DiscreteCapture {
    /// Whether the capture describes the solver's current scratch.
    valid: bool,
    /// The node set (ids + exact capacities) of the captured cycle.
    nodes: Vec<NodeCapacity>,
    /// The job set of the captured cycle; `demand` is updated in place
    /// as skip cycles absorb drift (all other fields must stay
    /// bit-equal for the capture to hold).
    jobs: Vec<JobRequest>,
    /// The config of the captured cycle (budget, gaps, unit).
    cfg: PlacementConfig,
    /// Per dense node: Σ demand of jobs placed there — the running sum
    /// behind the f64 headroom check that keeps keep-commits saturated.
    node_demand: Vec<f64>,
}

/// A long-lived placement solver: reuses its dense scratch state and the
/// allocation flow network across cycles. Construct once per controller
/// and call [`Solver::solve`] every cycle; the free [`solve`] function
/// remains as a cold one-shot convenience.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    alloc: Allocator,
    s: Scratch,
    engine: CandidateEngine,
    heap: CandidateHeap,
    mode: SolveMode,
    stats: DeltaStats,
    /// Delta mode's cached problem boundary: node ids of the interner
    /// below, for the O(N) id-stability check that licenses its reuse.
    node_ids: Vec<NodeId>,
    node_ix: Interner<NodeId>,
    /// Delta mode's cached `running_on` per job slot, licensing reuse of
    /// the slot's `running_dense` translation while the interner holds:
    /// the dense index depends only on the node id and the interner, so
    /// an unchanged `running_on` keeps its translation with no search.
    cached_running: Vec<Option<NodeId>>,
    /// Delta mode's discrete fixed-point certificate (see its docs).
    disc: DiscreteCapture,
    /// Observability plane: step spans + migrated one-off counters
    /// (delta hits/fallbacks, memo hits, heap rebuilds). Off by
    /// default — the hot path then pays one branch per step.
    recorder: Recorder,
    obs: SolverObsKeys,
    /// Heap rebuild count already published to the recorder (the heap's
    /// own counter is cumulative; the registry wants increments).
    obs_rebuilds: usize,
}

/// Pre-interned observability keys for the solver's step spans and
/// migrated counters (dummies while the recorder is off).
#[derive(Debug, Clone, Copy)]
struct SolverObsKeys {
    step0: slaq_obs::Key,
    step1: slaq_obs::Key,
    step2: slaq_obs::Key,
    step3: slaq_obs::Key,
    step4: slaq_obs::Key,
    step5: slaq_obs::Key,
    step6: slaq_obs::Key,
    step7: slaq_obs::Key,
    skip_hits: slaq_obs::Key,
    alloc_hits: slaq_obs::Key,
    alloc_fallbacks: slaq_obs::Key,
    memo_hits: slaq_obs::Key,
    heap_rebuilds: slaq_obs::Key,
}

impl SolverObsKeys {
    fn intern(rec: &Recorder) -> Self {
        SolverObsKeys {
            step0: rec.key("solve.step0.boundary"),
            step1: rec.key("solve.step1.keep"),
            step2: rec.key("solve.step2.apps"),
            step3: rec.key("solve.step3.place"),
            step4: rec.key("solve.step4.rebalance"),
            step5: rec.key("solve.step5.evict"),
            step6: rec.key("solve.step6.reclaim"),
            step7: rec.key("solve.step7.allocate"),
            skip_hits: rec.key("delta.skip.hits"),
            alloc_hits: rec.key("delta.alloc.hits"),
            alloc_fallbacks: rec.key("delta.alloc.fallbacks"),
            memo_hits: rec.key("solver.memo.hits"),
            heap_rebuilds: rec.key("heap.rebuilds"),
        }
    }
}

impl Default for SolverObsKeys {
    fn default() -> Self {
        SolverObsKeys::intern(&Recorder::off())
    }
}

impl Solver {
    /// A fresh solver with empty caches and the default (heap) candidate
    /// engine.
    pub fn new() -> Self {
        Solver::default()
    }

    /// A fresh solver answering candidate-node queries with `engine`.
    /// Outcomes are bit-identical across engines; only the cost differs.
    pub fn with_engine(engine: CandidateEngine) -> Self {
        Solver {
            engine,
            ..Solver::default()
        }
    }

    /// A fresh solver in the given [`SolveMode`].
    pub fn with_mode(mode: SolveMode) -> Self {
        let mut s = Solver::default();
        s.set_mode(mode);
        s
    }

    /// The candidate engine in force.
    pub fn engine(&self) -> CandidateEngine {
        self.engine
    }

    /// The solve mode in force.
    pub fn mode(&self) -> SolveMode {
        self.mode
    }

    /// Switch solve modes. A no-op when the mode is unchanged; an actual
    /// switch drops the delta caches (they describe solves the other
    /// mode never audited).
    pub fn set_mode(&mut self, mode: SolveMode) {
        if self.mode == mode {
            return;
        }
        self.mode = mode;
        self.node_ids.clear();
        self.node_ix = Interner::default();
        self.disc = DiscreteCapture::default();
        self.alloc.set_track_delta(mode == SolveMode::Delta);
    }

    /// Install an observability [`Recorder`]: step spans (0–7) plus
    /// counters for the delta fast paths, the failed-scan memos, and
    /// heap rebuilds, forwarded into the allocator for its flow-phase
    /// spans. Observes only — no solve decision reads it, so enabling
    /// it is bit-identical.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = SolverObsKeys::intern(&recorder);
        self.alloc.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Fast-path diagnostics: how many delta-mode solves were answered
    /// incrementally vs. fell back to the full path.
    pub fn delta_stats(&self) -> DeltaStats {
        self.stats
    }

    /// How many times the candidate heap rebuilt its topology
    /// (diagnostics: warm re-solves over an unchanged node set must not
    /// rebuild — capacity changes only refresh leaf values in place).
    pub fn heap_rebuilds(&self) -> usize {
        self.heap.rebuilds()
    }

    /// Solve one cycle. `prev` is the placement currently in force.
    pub fn solve(&mut self, problem: &PlacementProblem, prev: &Placement) -> PlacementOutcome {
        self.solve_with_delta(problem, prev, None)
    }

    /// [`Solver::solve`], with an optional churn hint. The hint is purely
    /// advisory — a known-structural delta skips the fast-path audit that
    /// could not succeed — and never trusted for correctness: every reuse
    /// the solver performs is re-verified against the problem itself.
    pub fn solve_with_delta(
        &mut self,
        problem: &PlacementProblem,
        prev: &Placement,
        delta: Option<&SolveDelta>,
    ) -> PlacementOutcome {
        let cfg = &problem.config;
        let mut budget = cfg.max_changes.unwrap_or(usize::MAX);
        let n_apps = problem.apps.len();
        let n_jobs = problem.jobs.len();
        let engine = self.engine;
        let mode = self.mode;
        // Observability: cheap handle + pre-interned keys. Every span /
        // count below is a single branch while the recorder is off; the
        // memo counter accumulates locally and publishes once per solve.
        let rec = self.recorder.clone();
        let ok = self.obs;
        let mut memo_hits: u64 = 0;

        // --------------------------------------------------------------
        // Delta fixed-point skip: when the previous full cycle certified
        // that the discrete phase is at a demand-insensitive fixed point
        // (see `DiscreteCapture`), re-validate the certificate against
        // this cycle's problem and — if it holds and the allocator's own
        // audit accepts — reuse the scratch decisions verbatim. This is
        // the "prior placements are re-validated, not recomputed" leg of
        // delta mode: a hit costs O(N + J) field compares plus O(dirty)
        // flow surgery instead of the full discrete pipeline. Any
        // mismatch falls through to the full path below.
        // --------------------------------------------------------------
        if mode == SolveMode::Delta && delta.is_none_or(|d| !d.is_structural()) {
            if let Some(placement) = self.try_discrete_skip(problem) {
                self.stats.hits += 1;
                rec.count(ok.skip_hits, 1);
                return assemble_outcome(problem, prev, placement, &self.s.job_node);
            }
        }

        // --------------------------------------------------------------
        // Boundary: intern ids, build dense state. The only id-keyed
        // lookups of the whole solve happen here. Delta mode reuses the
        // interner while the node set is id-stable (an O(N) check versus
        // an O(N log N) rebuild); batch mode rebuilds every cycle,
        // keeping its baseline cost honest.
        // --------------------------------------------------------------
        let span_boundary = rec.span(ok.step0);
        let owned_ix: Interner<NodeId>;
        let mut interner_reused = false;
        let node_ix: &Interner<NodeId> = if mode == SolveMode::Delta {
            let id_stable = self.node_ids.len() == problem.nodes.len()
                && self
                    .node_ids
                    .iter()
                    .zip(&problem.nodes)
                    .all(|(a, n)| *a == n.id);
            if !id_stable {
                self.node_ids.clear();
                self.node_ids.extend(problem.nodes.iter().map(|n| n.id));
                self.node_ix = Interner::new(self.node_ids.iter().copied());
            }
            interner_reused = id_stable;
            &self.node_ix
        } else {
            owned_ix = Interner::new(problem.nodes.iter().map(|n| n.id));
            &owned_ix
        };
        let s = &mut self.s;
        let heap = &mut self.heap;
        s.nodes.clear();
        s.nodes.extend(problem.nodes.iter().map(|n| NodeState {
            id: n.id,
            mem_free: n.mem,
            cpu_free: n.cpu.as_f64(),
        }));

        s.app_hosts.truncate(n_apps);
        s.app_take.truncate(n_apps);
        while s.app_hosts.len() < n_apps {
            s.app_hosts.push(Vec::new());
        }
        while s.app_take.len() < n_apps {
            s.app_take.push(Vec::new());
        }
        for v in &mut s.app_hosts {
            v.clear();
        }
        for v in &mut s.app_take {
            v.clear();
        }

        s.job_node.clear();
        s.job_node.resize(n_jobs, None);
        s.committed.clear();
        s.committed.resize(n_jobs, 0.0);
        // `running_on → dense`. Delta mode caches the translation per
        // slot: the dense index depends only on the node id and the
        // (reused) interner, so in the steady state an O(1) equality
        // check replaces a binary search per job; only slots whose
        // `running_on` actually moved re-translate.
        let running_cache_ok = interner_reused
            && self.cached_running.len() == n_jobs
            && s.running_dense.len() == n_jobs;
        if running_cache_ok {
            for (ji, j) in problem.jobs.iter().enumerate() {
                if self.cached_running[ji] != j.running_on {
                    self.cached_running[ji] = j.running_on;
                    s.running_dense[ji] = j.running_on.and_then(|n| node_ix.dense(n));
                }
            }
        } else {
            s.running_dense.clear();
            s.running_dense.extend(
                problem
                    .jobs
                    .iter()
                    .map(|j| j.running_on.and_then(|n| node_ix.dense(n))),
            );
            self.cached_running.clear();
            if interner_reused {
                self.cached_running
                    .extend(problem.jobs.iter().map(|j| j.running_on));
            }
        }
        // Boundary sorts. In delta mode the previous cycle's order is
        // kept when it still sorts the new keys — an O(J) sortedness
        // check instead of an O(J log J) re-sort. Exact: the comparators
        // are total orders whose id tie-break makes the sorted
        // permutation unique (problem entities carry distinct ids), so
        // *any* sorted order equals the sort's output.
        let job_cmp = |a: usize, b: usize| {
            let (ja, jb) = (&problem.jobs[a], &problem.jobs[b]);
            fcmp(jb.priority, ja.priority).then(ja.id.cmp(&jb.id))
        };
        let jobs_order_warm = mode == SolveMode::Delta
            && s.ordered_jobs.len() == n_jobs
            && s.ordered_jobs
                .windows(2)
                .all(|w| job_cmp(w[0], w[1]) != Ordering::Greater);
        if !jobs_order_warm {
            s.ordered_jobs.clear();
            s.ordered_jobs.extend(0..n_jobs);
            s.ordered_jobs.sort_by(|&a, &b| job_cmp(a, b));
        }
        let app_cmp = |a: usize, b: usize| {
            let (aa, ab) = (&problem.apps[a], &problem.apps[b]);
            ab.demand.total_cmp(aa.demand).then(aa.id.cmp(&ab.id))
        };
        let apps_order_warm = mode == SolveMode::Delta
            && s.ordered_apps.len() == n_apps
            && s.ordered_apps
                .windows(2)
                .all(|w| app_cmp(w[0], w[1]) != Ordering::Greater);
        if !apps_order_warm {
            s.ordered_apps.clear();
            s.ordered_apps.extend(0..n_apps);
            s.ordered_apps.sort_by(|&a, &b| app_cmp(a, b));
        }
        drop(span_boundary);

        // --------------------------------------------------------------
        // Step 0/1: keep previous app instances and running jobs; reserve
        // memory and commit CPU.
        // --------------------------------------------------------------
        let span_keep = rec.span(ok.step1);
        for (ai, app) in problem.apps.iter().enumerate() {
            if let Some(prev_hosts) = prev.apps.get(&app.id) {
                for (&host, _) in prev_hosts.iter() {
                    let Some(ni) = node_ix.dense(host) else {
                        continue;
                    };
                    s.nodes[ni].mem_free =
                        s.nodes[ni].mem_free.saturating_sub(app.mem_per_instance);
                    s.app_hosts[ai].push(ni);
                    s.app_take[ai].push(0.0);
                }
            }
        }

        // Fixed-point bookkeeping for the next cycle's discrete skip:
        // whether any keep decision consulted `prev` (if none did, the
        // keep outcome is independent of `prev` entirely) and whether
        // any of steps 3–6 changed a placement (if none did, the
        // discrete phase was an identity on its scratch).
        let mut probed_prev = false;
        let mut acted = false;
        s.deficit_jobs.clear();
        for k in 0..s.ordered_jobs.len() {
            let ji = s.ordered_jobs[k];
            let job = &problem.jobs[ji];
            if job.running_on.is_none() {
                continue;
            }
            let Some(i) = s.running_dense[ji] else {
                continue;
            };
            // The map lookup sits behind the fits() short-circuit: in the
            // steady state every kept job's memory fits its node's
            // residual, so the per-job `prev` probe almost never runs.
            let fits = s.nodes[i].mem_free.fits(job.mem);
            probed_prev |= !fits;
            if fits || prev.jobs.contains_key(&job.id) {
                // A running job's memory is already resident; keeping
                // it is always feasible (prev placement was valid).
                s.nodes[i].mem_free = s.nodes[i].mem_free.saturating_sub(job.mem);
                let got = job.demand.as_f64().min(s.nodes[i].cpu_free).max(0.0);
                s.nodes[i].cpu_free -= got;
                s.committed[ji] = got;
                s.job_node[ji] = Some(i);
                if got < job.demand.as_f64() {
                    // Shortchanged: a step-4 rebalance candidate. Fully
                    // fed jobs (and step-3 placements, committed at full
                    // demand) have zero deficit and can never act there,
                    // so step 4 walks only this list.
                    s.deficit_jobs.push(ji);
                }
            }
        }

        // --------------------------------------------------------------
        // Candidate heap: mirror the post-keep node trackers. From here
        // through step 4 every node mutation is echoed into the heap
        // (steps 5–6 run no candidate queries, so the heap is allowed to
        // go stale after step 4 — `assign` refreshes it next solve, and
        // only a *topology* change makes it rebuild).
        // --------------------------------------------------------------
        if engine == CandidateEngine::Heap {
            heap.assign(s.nodes.iter().map(|n| (n.id, 0, n.cpu_free, n.mem_free)));
        }
        drop(span_keep);

        // --------------------------------------------------------------
        // Step 2: grow/shrink application instance sets. Applications
        // claim nodes *before new jobs are placed* (kept jobs committed
        // above stay senior): the transactional tier is fluid
        // cluster-wide only through its instances, so it gets first pick
        // of residual capacity; jobs are indivisible and fill in around
        // it.
        // --------------------------------------------------------------
        let span_apps = rec.span(ok.step2);
        for k in 0..s.ordered_apps.len() {
            let ai = s.ordered_apps[k];
            let app = &problem.apps[ai];
            // Affinity term: apps carrying routing-tier warmth scores
            // order grow candidates by `cpu_free + bonus` instead of raw
            // residual CPU, so a warm node outranks a marginally emptier
            // cold one. The dense bonus map is built only here; the
            // empty-affinity case never reads it and routes through the
            // engines untouched (bit-identical to the affinity-free
            // solver).
            let has_affinity = !app.affinity.is_empty();
            if has_affinity {
                s.aff_bonus.clear();
                s.aff_bonus.resize(s.nodes.len(), 0.0);
                for &(n, b) in &app.affinity {
                    if let Some(ni) = node_ix.dense(n) {
                        s.aff_bonus[ni] = b;
                    }
                }
            }
            // While this app is being processed its hosts are out of
            // candidacy (the scan engine's `!hosts.contains(i)` filter);
            // removing them up front also lets the water-fill mutate
            // host CPU without heap upkeep. Every leaf removed here is
            // restored — with its final trackers — when the app is done.
            if engine == CandidateEngine::Heap {
                for &hi in &s.app_hosts[ai] {
                    heap.remove(hi);
                }
            }
            // Shrink above max_instances (stop the emptiest nodes first —
            // the flow would starve them anyway). Also shed down to
            // min_instances when the app is idle, releasing memory for
            // future cycles.
            let shrink_to = if app.demand.is_zero() {
                app.min_instances.max(1) as usize
            } else {
                app.max_instances as usize
            };
            while s.app_hosts[ai].len() > shrink_to && budget > 0 {
                let hosts = &s.app_hosts[ai];
                let nodes = &s.nodes;
                let (pos, &hi) = hosts
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        fcmp(nodes[a].cpu_free, nodes[b].cpu_free)
                            .then(nodes[a].id.cmp(&nodes[b].id))
                    })
                    .expect("hosts nonempty");
                s.nodes[hi].mem_free += app.mem_per_instance;
                s.app_hosts[ai].remove(pos);
                s.app_take[ai].remove(pos);
                budget -= 1;
                rec.audit(
                    slaq_obs::AuditSubject::App(app.id.raw()),
                    Some(s.nodes[hi].id.raw()),
                    None,
                    "solve.step2",
                    if app.demand.is_zero() {
                        "idle-shrink"
                    } else {
                        "max-instances"
                    },
                );
                if engine == CandidateEngine::Heap {
                    // No longer a host: back into candidacy immediately.
                    heap.restore(hi, s.nodes[hi].cpu_free, s.nodes[hi].mem_free);
                }
            }
            // Grow the host set until the reachable capacity covers the
            // target (or instances run out).
            loop {
                let reachable: f64 = s.app_hosts[ai].iter().map(|&i| s.nodes[i].cpu_free).sum();
                if reachable + 1e-6 >= app.demand.as_f64()
                    || s.app_hosts[ai].len() >= app.max_instances as usize
                    || budget == 0
                {
                    break;
                }
                let cand = if has_affinity {
                    // Affinity carriers always scan: the bonus-shifted
                    // key is not the heap's residual order.
                    let hosts = &s.app_hosts[ai];
                    let bonus = &s.aff_bonus;
                    s.nodes
                        .iter()
                        .enumerate()
                        .filter(|&(i, n)| {
                            n.mem_free.fits(app.mem_per_instance)
                                && n.cpu_free > 1e-9
                                && !hosts.contains(&i)
                        })
                        .max_by(|&(ia, a), &(ib, b)| {
                            fcmp(a.cpu_free + bonus[ia], b.cpu_free + bonus[ib])
                                .then(b.id.cmp(&a.id))
                        })
                        .map(|(i, _)| i)
                } else {
                    match engine {
                        CandidateEngine::Scan => {
                            let hosts = &s.app_hosts[ai];
                            s.nodes
                                .iter()
                                .enumerate()
                                .filter(|&(i, n)| {
                                    n.mem_free.fits(app.mem_per_instance)
                                        && n.cpu_free > 1e-9
                                        && !hosts.contains(&i)
                                })
                                .max_by(|(_, a), (_, b)| {
                                    fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id))
                                })
                                .map(|(i, _)| i)
                        }
                        CandidateEngine::Heap => {
                            heap.best_residual(app.mem_per_instance, 1e-9, None)
                        }
                    }
                };
                let Some(i) = cand else { break };
                s.nodes[i].mem_free -= app.mem_per_instance;
                s.app_hosts[ai].push(i);
                s.app_take[ai].push(0.0);
                budget -= 1;
                rec.audit(
                    slaq_obs::AuditSubject::App(app.id.raw()),
                    None,
                    Some(s.nodes[i].id.raw()),
                    "solve.step2",
                    "demand-growth",
                );
                if engine == CandidateEngine::Heap {
                    heap.remove(i); // now a host of this app
                }
            }
            // Spread the target evenly across the hosts (water-fill): a
            // load-balanced cluster divides its traffic, and packing
            // nodes solid would starve their memory slots of job CPU —
            // the Figure 2 ratio depends on this spreading.
            let mut remaining = app.demand.as_f64();
            for _ in 0..s.app_hosts[ai].len().max(1) {
                if remaining <= 1e-6 {
                    break;
                }
                s.open.clear();
                {
                    let nodes = &s.nodes;
                    s.open.extend(
                        s.app_hosts[ai]
                            .iter()
                            .enumerate()
                            .filter(|&(_, &i)| nodes[i].cpu_free > 1e-9)
                            .map(|(pos, _)| pos),
                    );
                }
                if s.open.is_empty() {
                    break;
                }
                let share = remaining / s.open.len() as f64;
                for oi in 0..s.open.len() {
                    let pos = s.open[oi];
                    let i = s.app_hosts[ai][pos];
                    let take = share.min(s.nodes[i].cpu_free).min(remaining);
                    s.nodes[i].cpu_free -= take;
                    remaining -= take;
                    s.app_take[ai][pos] += take;
                }
            }
            // Honour min_instances even when idle (no CPU floor here:
            // a warm-spare instance may sit on an exhausted node).
            while s.app_hosts[ai].len() < app.min_instances as usize && budget > 0 {
                let cand = if has_affinity {
                    let hosts = &s.app_hosts[ai];
                    let bonus = &s.aff_bonus;
                    s.nodes
                        .iter()
                        .enumerate()
                        .filter(|&(i, n)| {
                            n.mem_free.fits(app.mem_per_instance) && !hosts.contains(&i)
                        })
                        .max_by(|&(ia, a), &(ib, b)| {
                            fcmp(a.cpu_free + bonus[ia], b.cpu_free + bonus[ib])
                                .then(b.id.cmp(&a.id))
                        })
                        .map(|(i, _)| i)
                } else {
                    match engine {
                        CandidateEngine::Scan => {
                            let hosts = &s.app_hosts[ai];
                            s.nodes
                                .iter()
                                .enumerate()
                                .filter(|&(i, n)| {
                                    n.mem_free.fits(app.mem_per_instance) && !hosts.contains(&i)
                                })
                                .max_by(|(_, a), (_, b)| {
                                    fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id))
                                })
                                .map(|(i, _)| i)
                        }
                        CandidateEngine::Heap => {
                            heap.best_residual(app.mem_per_instance, f64::NEG_INFINITY, None)
                        }
                    }
                };
                let Some(i) = cand else { break };
                s.nodes[i].mem_free -= app.mem_per_instance;
                s.app_hosts[ai].push(i);
                s.app_take[ai].push(0.0);
                budget -= 1;
                rec.audit(
                    slaq_obs::AuditSubject::App(app.id.raw()),
                    None,
                    Some(s.nodes[i].id.raw()),
                    "solve.step2",
                    "min-instances",
                );
                if engine == CandidateEngine::Heap {
                    heap.remove(i);
                }
            }
            // Keep hosts id-sorted (deterministic downstream iteration,
            // matching the seed's `hosts.sort()` on NodeIds).
            s.host_sort.clear();
            for (pos, &i) in s.app_hosts[ai].iter().enumerate() {
                s.host_sort.push((s.nodes[i].id, i, s.app_take[ai][pos]));
            }
            s.host_sort.sort_by_key(|&(id, _, _)| id);
            for (pos, &(_, i, take)) in s.host_sort.iter().enumerate() {
                s.app_hosts[ai][pos] = i;
                s.app_take[ai][pos] = take;
            }
            // The app is done: its hosts re-enter candidacy (for other
            // apps and for jobs) with their water-filled trackers.
            if engine == CandidateEngine::Heap {
                for &i in &s.app_hosts[ai] {
                    heap.restore(i, s.nodes[i].cpu_free, s.nodes[i].mem_free);
                }
            }
        }
        drop(span_apps);

        // --------------------------------------------------------------
        // Step 3: place unplaced jobs with positive targets, priority
        // order.
        //
        // Failed-scan memo, the same shape as steps 5/6 below: a failed
        // general scan means no node passes `fits(mem) && cpu > 1e-9`,
        // and within this step node trackers only shrink (placements
        // subtract, nothing restores), so any later job needing ≥ that
        // memory fails the same scan. The memo is consulted only for
        // jobs *without* affinity: the affinity fast path accepts a
        // node under a demand-scaled CPU floor the general filter
        // doesn't use, so affinity carriers always run the real probe.
        // (Their failures still feed the memo — failing means the
        // general scan ran and failed.)
        // --------------------------------------------------------------
        let span_place = rec.span(ok.step3);
        let mut place_failed_mem: Option<MemMb> = None;
        s.unplaced.clear();
        for k in 0..s.ordered_jobs.len() {
            let ji = s.ordered_jobs[k];
            if s.job_node[ji].is_some() {
                continue;
            }
            let job = &problem.jobs[ji];
            if job.affinity.is_none() && place_failed_mem.is_some_and(|m| job.mem.fits(m)) {
                memo_hits += 1;
                s.unplaced.push(ji);
                continue; // a no-easier scan already failed
            }
            let affinity_dense = job.affinity.and_then(|n| node_ix.dense(n));
            if let Some(i) = place_job(job, &mut s.nodes, &mut budget, affinity_dense, engine, heap)
            {
                acted = true;
                s.job_node[ji] = Some(i);
                s.committed[ji] = job.demand.as_f64();
                rec.audit(
                    slaq_obs::AuditSubject::Job(job.id.raw()),
                    None,
                    Some(s.nodes[i].id.raw()),
                    "solve.step3",
                    "priority-place",
                );
            } else {
                if !job.demand.is_zero() && budget > 0 {
                    place_failed_mem = Some(match place_failed_mem {
                        Some(m) => m.min(job.mem),
                        None => job.mem,
                    });
                }
                s.unplaced.push(ji);
            }
        }
        drop(span_place);

        // --------------------------------------------------------------
        // Step 4: rebalance — migrate shortchanged running jobs to nodes
        // with room.
        // --------------------------------------------------------------
        let span_rebalance = rec.span(ok.step4);
        for k in 0..s.deficit_jobs.len() {
            if budget == 0 {
                break;
            }
            let ji = s.deficit_jobs[k];
            let Some(cur) = s.job_node[ji] else { continue };
            if s.running_dense[ji] != Some(cur) {
                continue; // only running jobs can live-migrate
            }
            let job = &problem.jobs[ji];
            let got = s.committed[ji];
            let deficit = job.demand.as_f64() - got;
            if deficit <= job.demand.as_f64() * 0.25 {
                continue; // close enough; not worth a migration
            }
            let target = match engine {
                CandidateEngine::Scan => s
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|&(i, n)| {
                        i != cur && n.mem_free.fits(job.mem) && n.cpu_free > got + deficit * 0.5
                    })
                    .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
                    .map(|(i, _)| i),
                CandidateEngine::Heap => {
                    heap.best_residual(job.mem, got + deficit * 0.5, Some(cur))
                }
            };
            if let Some(t) = target {
                acted = true;
                s.nodes[cur].mem_free += job.mem;
                s.nodes[cur].cpu_free += got;
                s.nodes[t].mem_free -= job.mem;
                let newgot = job.demand.as_f64().min(s.nodes[t].cpu_free);
                s.nodes[t].cpu_free -= newgot;
                s.committed[ji] = newgot;
                s.job_node[ji] = Some(t);
                budget -= 1;
                rec.audit(
                    slaq_obs::AuditSubject::Job(job.id.raw()),
                    Some(s.nodes[cur].id.raw()),
                    Some(s.nodes[t].id.raw()),
                    "solve.step4",
                    "rebalance-deficit",
                );
                if engine == CandidateEngine::Heap {
                    heap.update(cur, s.nodes[cur].cpu_free, s.nodes[cur].mem_free);
                    heap.update(t, s.nodes[t].cpu_free, s.nodes[t].mem_free);
                }
            }
        }
        drop(span_rebalance);

        // --------------------------------------------------------------
        // Step 5: eviction — unplaced high-priority jobs displace
        // strictly lower-priority running jobs (suspend + start = two
        // changes).
        // --------------------------------------------------------------
        let span_evict = rec.span(ok.step5);
        // Failed-scan memo: searchers run in priority-descending order,
        // so a later searcher's eligible-victim set (priority strictly
        // below its own minus the gap) is a subset of every earlier
        // searcher's. If a scan found no victim for a searcher needing
        // `m` MB, any later searcher needing ≥ `m` must fail too — as
        // long as no eviction changed the node states in between. This
        // turns the steady state's O(unplaced × jobs) re-scans into one
        // failed scan (and is outcome-preserving by that subset
        // argument, so both candidate engines share it).
        let mut evict_failed_mem: Option<MemMb> = None;
        for k in 0..s.unplaced.len() {
            if budget < 2 {
                break;
            }
            let ji = s.unplaced[k];
            let job = &problem.jobs[ji];
            if s.job_node[ji].is_some() || job.demand.is_zero() {
                continue;
            }
            if evict_failed_mem.is_some_and(|m| job.mem.fits(m)) {
                memo_hits += 1;
                continue; // a no-easier scan already failed
            }
            // Cheapest victim: the lowest-priority placed job whose
            // removal makes room, strictly below this job's priority
            // minus the gap.
            let victim = {
                let (job_node, nodes) = (&s.job_node, &s.nodes);
                s.ordered_jobs
                    .iter()
                    .rev() // ascending priority
                    .filter(|&&vi| {
                        job_node[vi].is_some()
                            && problem.jobs[vi].priority + problem.config.evict_priority_gap
                                < job.priority
                    })
                    .find(|&&vi| {
                        let i = job_node[vi].expect("filtered to placed");
                        (nodes[i].mem_free + problem.jobs[vi].mem).fits(job.mem)
                    })
                    .copied()
            };
            if let Some(vi) = victim {
                acted = true;
                let i = s.job_node[vi].take().expect("victim placed");
                s.nodes[i].mem_free += problem.jobs[vi].mem;
                s.nodes[i].cpu_free += std::mem::replace(&mut s.committed[vi], 0.0);
                budget -= 1; // the suspension
                rec.audit(
                    slaq_obs::AuditSubject::Job(problem.jobs[vi].id.raw()),
                    Some(s.nodes[i].id.raw()),
                    None,
                    "solve.step5",
                    "evicted",
                );
                s.nodes[i].mem_free -= job.mem;
                let got = job.demand.as_f64().min(s.nodes[i].cpu_free);
                s.nodes[i].cpu_free -= got;
                s.committed[ji] = got;
                s.job_node[ji] = Some(i);
                budget -= 1; // the start
                rec.audit(
                    slaq_obs::AuditSubject::Job(job.id.raw()),
                    None,
                    Some(s.nodes[i].id.raw()),
                    "solve.step5",
                    "evict-place",
                );
                evict_failed_mem = None; // node states changed: memo off
            } else {
                evict_failed_mem = Some(match evict_failed_mem {
                    Some(m) => m.min(job.mem),
                    None => job.mem,
                });
            }
        }
        drop(span_evict);

        // --------------------------------------------------------------
        // Step 6: reclaim — when jobs with positive targets are still
        // memory-blocked, disposable (zero-CPU-take, above min_instances)
        // application instances give their memory back to the job tier.
        // This is the "drop least-useful instances when memory-blocked"
        // move of the NOMS'08 heuristic.
        //
        // Failed-scan memo, same shape as step 5's: whether a disposable
        // instance can be reclaimed for a job depends only on the job's
        // memory need — the eligibility tests (zero take, min-instance
        // headroom, post-reclaim fit, residual CPU) are otherwise
        // job-independent. A scan that failed for `m` MB therefore fails
        // for every later job needing ≥ `m` until a successful reclaim
        // changes node frees or instance headroom. In the steady state
        // (thousands of unplaced jobs, no reclaimable instance) this
        // collapses the O(unplaced × apps × hosts) re-scan into one
        // failed scan per cycle; it is outcome-preserving by the same
        // subset argument, so both solve modes share it.
        let span_reclaim = rec.span(ok.step6);
        let mut reclaim_failed_mem: Option<MemMb> = None;
        for k in 0..s.unplaced.len() {
            if budget < 2 {
                break;
            }
            let ji = s.unplaced[k];
            let job = &problem.jobs[ji];
            if s.job_node[ji].is_some() || job.demand.is_zero() {
                continue;
            }
            if reclaim_failed_mem.is_some_and(|m| job.mem.fits(m)) {
                memo_hits += 1;
                continue; // a no-easier reclaim scan already failed
            }
            'apps: for ak in 0..s.ordered_apps.len() {
                let ai = s.ordered_apps[ak];
                let app = &problem.apps[ai];
                if s.app_hosts[ai].len() <= app.min_instances.max(1) as usize {
                    continue;
                }
                for pos in 0..s.app_hosts[ai].len() {
                    if s.app_take[ai][pos] > 1e-6 {
                        continue; // instance is carrying real load
                    }
                    let i = s.app_hosts[ai][pos];
                    if (s.nodes[i].mem_free + app.mem_per_instance).fits(job.mem)
                        && s.nodes[i].cpu_free > 1e-9
                    {
                        acted = true;
                        s.nodes[i].mem_free += app.mem_per_instance;
                        s.app_hosts[ai].remove(pos);
                        s.app_take[ai].remove(pos);
                        budget -= 1; // the instance stop
                        rec.audit(
                            slaq_obs::AuditSubject::App(app.id.raw()),
                            Some(s.nodes[i].id.raw()),
                            None,
                            "solve.step6",
                            "memory-reclaim",
                        );
                        s.nodes[i].mem_free -= job.mem;
                        let got = job.demand.as_f64().min(s.nodes[i].cpu_free);
                        s.nodes[i].cpu_free -= got;
                        s.committed[ji] = got;
                        s.job_node[ji] = Some(i);
                        budget -= 1; // the job start
                        rec.audit(
                            slaq_obs::AuditSubject::Job(job.id.raw()),
                            None,
                            Some(s.nodes[i].id.raw()),
                            "solve.step6",
                            "reclaim-place",
                        );
                        reclaim_failed_mem = None; // headroom changed: memo off
                        break 'apps;
                    }
                }
            }
            if s.job_node[ji].is_none() {
                reclaim_failed_mem = Some(match reclaim_failed_mem {
                    Some(m) => m.min(job.mem),
                    None => job.mem,
                });
            }
        }
        drop(span_reclaim);

        // --------------------------------------------------------------
        // Step 7: exact allocation + bookkeeping. Delta mode first offers
        // the cycle to the allocator's incremental re-flow — a hit means
        // only the dirty jobs' flows move and the placement is patched,
        // not rebuilt; any refused precondition falls back to the full
        // path. A hint that says the cycle is structural (job or node
        // set reshaped) skips the audit outright: the topology signature
        // cannot match.
        let try_incremental = mode == SolveMode::Delta && delta.is_none_or(|d| !d.is_structural());
        let span_alloc = rec.span(ok.step7);
        let placement = match try_incremental
            .then(|| {
                self.alloc.try_allocate_delta(
                    &problem.nodes,
                    &problem.apps,
                    &s.app_hosts,
                    &problem.jobs,
                    &s.job_node,
                    problem.config.mhz_unit,
                )
            })
            .flatten()
        {
            Some(patched) => {
                self.stats.hits += 1;
                rec.count(ok.alloc_hits, 1);
                patched
            }
            None => {
                if mode == SolveMode::Delta {
                    self.stats.fallbacks += 1;
                    rec.count(ok.alloc_fallbacks, 1);
                }
                self.alloc.allocate_dense(
                    &problem.nodes,
                    &problem.apps,
                    &s.app_hosts,
                    &problem.jobs,
                    &s.job_node,
                    problem.config.mhz_unit,
                )
            }
        };
        drop(span_alloc);
        // --------------------------------------------------------------
        // (Re-)arm the discrete fixed-point certificate for the next
        // cycle. Valid only when this cycle *proves* the discrete phase
        // is at a demand-insensitive fixed point:
        //   - no apps: steps 0 (app keep), 2, and 6 are vacuous, and
        //     `prev.apps` is never read;
        //   - no step-3–6 action and an untouched change budget, so the
        //     phase was an identity on the kept placements;
        //   - no keep decision probed `prev` (every running job's memory
        //     fit), so the keep outcome is `prev`-independent;
        //   - no rebalance deficit: every kept job committed its full
        //     demand, so step 4 never scanned;
        //   - memory-blocked unplaced set: no node's residual memory fits
        //     any unplaced positive-demand job, so every step-3/5/6 probe
        //     fails on memory alone, independent of residual CPU (which
        //     is the one tracker demand drift perturbs).
        // Under these conditions the only demand-sensitive outputs are
        // the keep commits, which the skip path re-validates per drifted
        // job via the per-node f64 demand sums captured here.
        // --------------------------------------------------------------
        if mode == SolveMode::Delta {
            let max_free = s
                .nodes
                .iter()
                .map(|n| n.mem_free)
                .max()
                .unwrap_or(MemMb::new(0));
            let mem_blocked = s.unplaced.iter().all(|&ji| {
                let j = &problem.jobs[ji];
                j.demand.is_zero() || !max_free.fits(j.mem)
            });
            let d = &mut self.disc;
            d.valid = problem.apps.is_empty()
                && !acted
                && !probed_prev
                && s.deficit_jobs.is_empty()
                && mem_blocked;
            if d.valid {
                d.cfg = *cfg;
                d.nodes.clear();
                d.nodes.extend_from_slice(&problem.nodes);
                d.jobs.clear();
                d.jobs.extend_from_slice(&problem.jobs);
                d.node_demand.clear();
                d.node_demand.resize(problem.nodes.len(), 0.0);
                for (ji, j) in problem.jobs.iter().enumerate() {
                    if let Some(ni) = s.job_node[ji] {
                        d.node_demand[ni] += j.demand.as_f64();
                    }
                }
            }
        }

        // Publish the per-solve counters accumulated locally (and the
        // heap's rebuild increment — its own counter is cumulative).
        if rec.is_enabled() {
            rec.count(ok.memo_hits, memo_hits);
            let rb = heap.rebuilds();
            rec.count(
                ok.heap_rebuilds,
                rb.saturating_sub(self.obs_rebuilds) as u64,
            );
            self.obs_rebuilds = rb;
        }

        assemble_outcome(problem, prev, placement, &s.job_node)
    }

    /// Attempt the delta fixed-point skip (see [`DiscreteCapture`]): if
    /// every input the discrete phase reads is bit-equal to the armed
    /// capture — modulo demand drift that provably cannot flip any
    /// discrete decision — hand the previous cycle's scratch decisions
    /// straight to the allocator's incremental re-flow and return its
    /// patched placement. Every refusal (including the allocator's own
    /// audit) returns `None` and the caller runs the full path, which
    /// re-arms or invalidates the capture.
    fn try_discrete_skip(&mut self, problem: &PlacementProblem) -> Option<Placement> {
        let d = &mut self.disc;
        if !d.valid || !problem.apps.is_empty() || problem.config != d.cfg {
            return None;
        }
        if problem.nodes != d.nodes {
            return None;
        }
        if problem.jobs.len() != d.jobs.len() {
            return None;
        }
        // Everything but demand must be bit-equal; demand may drift as
        // long as its sign class holds (`is_zero` gates step-3/5/6
        // eligibility) and its node keeps f64 headroom (checked below).
        for (j, c) in problem.jobs.iter().zip(&d.jobs) {
            if j.id != c.id
                || j.running_on != c.running_on
                || j.affinity != c.affinity
                || j.mem != c.mem
                || j.priority != c.priority
                || j.demand.is_zero() != c.demand.is_zero()
            {
                return None;
            }
        }
        // From here the capture mutates in place. That is safe across a
        // refusal: every miss runs the full path in this same call,
        // which re-arms the capture from scratch (or invalidates it).
        d.valid = false;
        for (ji, j) in problem.jobs.iter().enumerate() {
            let old = d.jobs[ji].demand;
            if j.demand != old {
                d.jobs[ji].demand = j.demand;
                if let Some(ni) = self.s.job_node[ji] {
                    d.node_demand[ni] += j.demand.as_f64() - old.as_f64();
                    // Conservative headroom margin: it dwarfs both the
                    // running sum's accumulated rounding and the keep
                    // loop's sequential-subtraction error, and refusing
                    // a marginal node just routes it to the exact path.
                    // Written so a NaN sum is also refused.
                    let fits = d.node_demand[ni] + 1e-6 <= problem.nodes[ni].cpu.as_f64();
                    if !fits {
                        return None;
                    }
                }
            }
        }
        let placement = self.alloc.try_allocate_delta(
            &problem.nodes,
            &problem.apps,
            &self.s.app_hosts,
            &problem.jobs,
            &self.s.job_node,
            problem.config.mhz_unit,
        )?;
        self.disc.valid = true;
        Some(placement)
    }
}

/// Final outcome assembly shared by the full path and the discrete
/// skip: the change list against `prev` plus id-keyed views over the
/// exact placement.
fn assemble_outcome(
    problem: &PlacementProblem,
    prev: &Placement,
    placement: Placement,
    job_node: &[Option<usize>],
) -> PlacementOutcome {
    let changes = placement.diff(prev);
    let satisfied_apps: BTreeMap<AppId, CpuMhz> = problem
        .apps
        .iter()
        .map(|a| (a.id, placement.app_alloc(a.id)))
        .collect();
    let satisfied_jobs: BTreeMap<JobId, CpuMhz> =
        placement.jobs.iter().map(|(&j, &(_, c))| (j, c)).collect();
    let unplaced_jobs: Vec<JobId> = problem
        .jobs
        .iter()
        .enumerate()
        .filter(|(ji, j)| !j.demand.is_zero() && job_node[*ji].is_none())
        .map(|(_, j)| j.id)
        .collect();

    PlacementOutcome {
        placement,
        changes,
        satisfied_apps,
        satisfied_jobs,
        unplaced_jobs,
    }
}

/// Step 3's placement move: put one job on the node offering it the most
/// CPU (saturating at its demand; ties: more free memory, then lower id)
/// among nodes with memory room, affinity-first for suspended images.
/// Mutates the chosen node's trackers (and echoes them into the heap
/// when that engine is active); returns the chosen dense node index.
fn place_job(
    job: &JobRequest,
    nodes: &mut [NodeState],
    budget: &mut usize,
    affinity_dense: Option<usize>,
    engine: CandidateEngine,
    heap: &mut CandidateHeap,
) -> Option<usize> {
    if *budget == 0 || job.demand.is_zero() {
        return None;
    }
    // Affinity first if it can feed the job meaningfully.
    if let Some(i) = affinity_dense {
        if nodes[i].mem_free.fits(job.mem) && nodes[i].cpu_free >= job.demand.as_f64() * 0.5 {
            nodes[i].mem_free -= job.mem;
            let got = job.demand.as_f64().min(nodes[i].cpu_free);
            nodes[i].cpu_free -= got;
            *budget -= 1;
            if engine == CandidateEngine::Heap {
                heap.update(i, nodes[i].cpu_free, nodes[i].mem_free);
            }
            return Some(i);
        }
    }
    // Otherwise, the node offering the most CPU (ties: more free
    // memory, then lower id).
    let best = match engine {
        CandidateEngine::Scan => nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.mem_free.fits(job.mem) && n.cpu_free > 1e-9)
            .max_by(|(_, a), (_, b)| {
                fcmp(
                    a.cpu_free.min(job.demand.as_f64()),
                    b.cpu_free.min(job.demand.as_f64()),
                )
                .then(a.mem_free.cmp(&b.mem_free))
                .then(b.id.cmp(&a.id))
            })
            .map(|(i, _)| i),
        CandidateEngine::Heap => heap.best_saturating(job.demand.as_f64(), job.mem, 1e-9, None),
    }?;
    nodes[best].mem_free -= job.mem;
    let got = job.demand.as_f64().min(nodes[best].cpu_free);
    nodes[best].cpu_free -= got;
    *budget -= 1;
    if engine == CandidateEngine::Heap {
        heap.update(best, nodes[best].cpu_free, nodes[best].mem_free);
    }
    Some(best)
}

/// Solve one cycle with a cold (single-shot) [`Solver`]. `prev` is the
/// placement currently in force. Controllers that re-solve every cycle
/// should hold a [`Solver`] instead to reuse its scratch and network.
pub fn solve(problem: &PlacementProblem, prev: &Placement) -> PlacementOutcome {
    Solver::new().solve(problem, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{AppRequest, NodeCapacity, PlacementConfig};
    use crate::reference::solve_reference;
    use proptest::prelude::*;

    fn nodes(n: u32, cpu: f64, mem: u64) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity {
                id: NodeId::new(i),
                cpu: CpuMhz::new(cpu),
                mem: MemMb::new(mem),
            })
            .collect()
    }

    fn jobr(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    fn appr(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 1,
            max_instances: 32,
            affinity: Vec::new(),
        }
    }

    fn problem(
        nodes: Vec<NodeCapacity>,
        apps: Vec<AppRequest>,
        jobs: Vec<JobRequest>,
    ) -> PlacementProblem {
        PlacementProblem {
            nodes,
            apps,
            jobs,
            config: PlacementConfig::default(),
        }
    }

    #[test]
    fn empty_problem_yields_empty_outcome() {
        let p = problem(nodes(2, 12_000.0, 4096), vec![], vec![]);
        let out = solve(&p, &Placement::empty());
        assert!(out.placement.jobs.is_empty());
        assert!(out.changes.is_empty());
        assert!(out.unplaced_jobs.is_empty());
    }

    #[test]
    fn memory_limits_jobs_per_node() {
        // The paper's constraint: 4 cores but only 3 jobs fit in memory.
        let p = problem(
            nodes(1, 12_000.0, 4096),
            vec![],
            (0..4).map(|i| jobr(i, 3000.0)).collect(),
        );
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.jobs.len(), 3);
        assert_eq!(out.unplaced_jobs.len(), 1);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(9000.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn placement_is_sticky_across_cycles() {
        let p = problem(
            nodes(3, 12_000.0, 4096),
            vec![appr(0, 9000.0)],
            (0..4).map(|i| jobr(i, 3000.0)).collect(),
        );
        let first = solve(&p, &Placement::empty());
        // Second cycle: mark jobs as running where they landed.
        let mut p2 = p.clone();
        for j in &mut p2.jobs {
            j.running_on = first.placement.job_node(j.id);
        }
        let second = solve(&p2, &first.placement);
        assert!(
            second.changes.is_empty(),
            "unchanged problem must not churn: {:?}",
            second.changes
        );
        assert_eq!(second.placement.jobs, first.placement.jobs);
    }

    #[test]
    fn delta_mode_matches_batch_and_hits_the_fast_path() {
        // Jobs-only uncontended fleet: 8 nodes x 3 memory slots = 24 jobs,
        // max demand < 3000 so 3 jobs never exceed a node's 12 000 MHz.
        // After the first cycle placements hold still and the per-cycle
        // single-job demand drifts must ride the incremental re-flow,
        // bit-identical to the batch solver run side by side.
        let fleet = nodes(8, 12_000.0, 4096);
        let n_jobs = 24usize;
        let mut batch = Solver::new();
        let mut delta = Solver::with_mode(SolveMode::Delta);
        assert_eq!(delta.mode(), SolveMode::Delta);
        let mut prev_batch = Placement::empty();
        let mut prev_delta = Placement::empty();
        let mut demands: Vec<f64> = (0..n_jobs)
            .map(|i| 1000.0 + ((i * 997) % 1800) as f64)
            .collect();
        let mut running: Vec<Option<NodeId>> = vec![None; n_jobs];
        for cycle in 0..12usize {
            if cycle > 0 {
                // One job drifts per cycle (cumulative, never reverted).
                demands[(cycle * 7) % n_jobs] = 800.0 + ((cycle * 531) % 2000) as f64;
            }
            let jobs: Vec<JobRequest> = (0..n_jobs)
                .map(|i| JobRequest {
                    running_on: running[i],
                    ..jobr(i as u32, demands[i])
                })
                .collect();
            let p = problem(fleet.clone(), vec![], jobs);
            let out_batch = batch.solve(&p, &prev_batch);
            let out_delta = delta.solve(&p, &prev_delta);
            assert_eq!(out_batch, out_delta, "divergence at cycle {cycle}");
            for (i, j) in p.jobs.iter().enumerate() {
                running[i] = out_batch.placement.job_node(j.id);
            }
            prev_batch = out_batch.placement;
            prev_delta = out_delta.placement;
        }
        let stats = delta.delta_stats();
        assert!(
            stats.hits >= 8,
            "fast path barely engaged on a steady fleet: {stats:?}"
        );
        assert_eq!(batch.delta_stats(), DeltaStats::default());
    }

    #[test]
    fn delta_mode_survives_structural_churn() {
        // Arrivals, completions, and node outages force the full path
        // (topology signatures change) — the delta solver must fall back
        // and stay bit-identical, then recover the fast path once the
        // shape settles again.
        let mut batch = Solver::new();
        let mut delta = Solver::with_mode(SolveMode::Delta);
        let mut prev_batch = Placement::empty();
        let mut prev_delta = Placement::empty();
        // (node count, job ids) per cycle: shape churns, then settles.
        let cycles: Vec<(u32, Vec<u32>)> = vec![
            (4, vec![0, 1, 2, 3, 4]),
            (4, vec![0, 1, 2, 3, 4, 5, 6]), // arrivals
            (3, vec![0, 2, 3, 5, 6]),       // outage + completions
            (4, vec![0, 2, 3, 5, 6]),       // recovery
            (4, vec![0, 2, 3, 5, 6]),       // settled
            (4, vec![0, 2, 3, 5, 6]),       // settled: fast path again
        ];
        let mut running: std::collections::BTreeMap<u32, Option<NodeId>> =
            std::collections::BTreeMap::new();
        for (cycle, (n_nodes, ids)) in cycles.iter().enumerate() {
            let jobs: Vec<JobRequest> = ids
                .iter()
                .map(|&i| JobRequest {
                    running_on: running.get(&i).copied().flatten().filter(|n| {
                        // A job can't keep running on a node that left.
                        n.raw() < *n_nodes
                    }),
                    ..jobr(i, 1200.0 + 400.0 * (i % 4) as f64)
                })
                .collect();
            let p = problem(nodes(*n_nodes, 12_000.0, 4096), vec![], jobs);
            let out_batch = batch.solve(&p, &prev_batch);
            let out_delta = delta.solve(&p, &prev_delta);
            assert_eq!(out_batch, out_delta, "divergence at cycle {cycle}");
            running.clear();
            for j in &p.jobs {
                running.insert(j.id.raw(), out_batch.placement.job_node(j.id));
            }
            prev_batch = out_batch.placement;
            prev_delta = out_delta.placement;
        }
        let stats = delta.delta_stats();
        assert!(
            stats.fallbacks >= 2,
            "structural cycles must fall back: {stats:?}"
        );
        assert!(
            stats.hits >= 1,
            "settled tail must recover the fast path: {stats:?}"
        );
    }

    #[test]
    fn warm_solver_matches_cold_solver_across_cycles() {
        // The same Solver re-used across cycles (scratch + network reuse)
        // must behave exactly like fresh one-shot solves.
        let mut warm = Solver::new();
        let mut prev_warm = Placement::empty();
        let mut prev_cold = Placement::empty();
        for cycle in 0..6u32 {
            let mut p = problem(
                nodes(4, 12_000.0, 4096),
                vec![appr(0, 6000.0 + 2000.0 * cycle as f64)],
                (0..8)
                    .map(|i| jobr(i, 1500.0 + 300.0 * ((i + cycle) % 5) as f64))
                    .collect(),
            );
            for j in &mut p.jobs {
                j.running_on = prev_warm.job_node(j.id);
            }
            let w = warm.solve(&p, &prev_warm);
            let c = solve(&p, &prev_cold);
            assert_eq!(w, c, "cycle {cycle}");
            prev_warm = w.placement;
            prev_cold = c.placement;
        }
    }

    #[test]
    fn change_budget_caps_disruptions() {
        let mut p = problem(
            nodes(2, 12_000.0, 8192),
            vec![],
            (0..6).map(|i| jobr(i, 3000.0)).collect(),
        );
        p.config.max_changes = Some(2);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.changes.len(), 2, "{:?}", out.changes);
        assert_eq!(out.placement.jobs.len(), 2);
        assert_eq!(out.unplaced_jobs.len(), 4);
    }

    #[test]
    fn high_priority_pending_evicts_low_priority_running() {
        // Node full with three running low-priority jobs; a high-priority
        // job arrives.
        let mut jobs: Vec<JobRequest> = (0..3)
            .map(|i| {
                let mut j = jobr(i, 500.0);
                j.running_on = Some(NodeId::new(0));
                j.priority = 1.0;
                j
            })
            .collect();
        let mut hot = jobr(3, 3000.0);
        hot.priority = 100.0;
        jobs.push(hot);
        let mut prev = Placement::empty();
        for i in 0..3 {
            prev.jobs
                .insert(JobId::new(i), (NodeId::new(0), CpuMhz::new(500.0)));
        }
        let mut p = problem(nodes(1, 12_000.0, 4096), vec![], jobs);
        p.config.evict_priority_gap = 10.0;
        let out = solve(&p, &prev);
        assert!(out.placement.jobs.contains_key(&JobId::new(3)));
        assert_eq!(out.placement.jobs.len(), 3);
        let suspended = out
            .changes
            .iter()
            .filter(|c| matches!(c, PlacementChange::SuspendJob { .. }))
            .count();
        assert_eq!(suspended, 1);
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn eviction_respects_priority_gap() {
        let mut running = jobr(0, 2900.0);
        running.running_on = Some(NodeId::new(0));
        running.priority = 95.0;
        let mut pending = jobr(1, 3000.0);
        pending.priority = 100.0;
        // Memory only fits one job.
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(2900.0)));
        let mut p = problem(nodes(1, 12_000.0, 1500), vec![], vec![running, pending]);
        p.config.evict_priority_gap = 10.0; // gap of 5 < 10: no eviction
        let out = solve(&p, &prev);
        assert!(out.placement.jobs.contains_key(&JobId::new(0)));
        assert!(!out.placement.jobs.contains_key(&JobId::new(1)));
    }

    #[test]
    fn shortchanged_running_job_migrates_to_free_node() {
        // Two jobs run on node0 (cpu 3000): together they demand 6000.
        // Node1 is idle: the solver should migrate one over.
        let mut j0 = jobr(0, 3000.0);
        j0.running_on = Some(NodeId::new(0));
        let mut j1 = jobr(1, 3000.0);
        j1.running_on = Some(NodeId::new(0));
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(1500.0)));
        prev.jobs
            .insert(JobId::new(1), (NodeId::new(0), CpuMhz::new(1500.0)));
        let p = problem(nodes(2, 3000.0, 4096), vec![], vec![j0, j1]);
        let out = solve(&p, &prev);
        let migrations = out
            .changes
            .iter()
            .filter(|c| matches!(c, PlacementChange::MigrateJob { .. }))
            .count();
        assert_eq!(migrations, 1, "{:?}", out.changes);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(6000.0));
    }

    #[test]
    fn app_grows_instances_to_cover_demand() {
        let p = problem(nodes(4, 12_000.0, 4096), vec![appr(0, 30_000.0)], vec![]);
        let out = solve(&p, &Placement::empty());
        assert!(out.placement.app_instances(AppId::new(0)) >= 3);
        assert!(out
            .total_app_satisfied()
            .approx_eq(CpuMhz::new(30_000.0), 1.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn idle_app_keeps_min_instances() {
        let mut app = appr(0, 0.0);
        app.min_instances = 2;
        let p = problem(nodes(3, 12_000.0, 4096), vec![app], vec![]);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.app_instances(AppId::new(0)), 2);
        assert_eq!(out.total_app_satisfied(), CpuMhz::ZERO);
    }

    #[test]
    fn idle_app_sheds_extra_instances() {
        // Previously spread over 3 nodes; demand collapses to zero.
        let mut prev = Placement::empty();
        for n in 0..3 {
            prev.apps
                .entry(AppId::new(0))
                .or_default()
                .insert(NodeId::new(n), CpuMhz::new(1000.0));
        }
        let mut app = appr(0, 0.0);
        app.min_instances = 1;
        let p = problem(nodes(3, 12_000.0, 4096), vec![app], vec![]);
        let out = solve(&p, &prev);
        assert_eq!(out.placement.app_instances(AppId::new(0)), 1);
        let stops = out
            .changes
            .iter()
            .filter(|c| matches!(c, PlacementChange::StopInstance { .. }))
            .count();
        assert_eq!(stops, 2);
    }

    #[test]
    fn max_instances_caps_app_growth() {
        let mut app = appr(0, 48_000.0);
        app.max_instances = 2;
        let p = problem(nodes(4, 12_000.0, 4096), vec![app], vec![]);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.app_instances(AppId::new(0)), 2);
        assert!(out
            .total_app_satisfied()
            .approx_eq(CpuMhz::new(24_000.0), 1.0));
    }

    #[test]
    fn mixed_workload_shares_one_node() {
        let p = problem(
            nodes(1, 12_000.0, 4096),
            vec![appr(0, 6000.0)],
            vec![jobr(0, 3000.0), jobr(1, 3000.0)],
        );
        let out = solve(&p, &Placement::empty());
        // 2 jobs (2×1280) + 1 instance (1024) = 3584 ≤ 4096 ✓; CPU exactly full.
        assert_eq!(out.placement.jobs.len(), 2);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(6000.0));
        assert!(out
            .total_app_satisfied()
            .approx_eq(CpuMhz::new(6000.0), 1.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn zero_demand_jobs_are_not_newly_placed_but_kept_if_running() {
        let mut running = jobr(0, 0.0);
        running.running_on = Some(NodeId::new(0));
        running.priority = 0.0;
        let pending = jobr(1, 0.0);
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::ZERO));
        let p = problem(nodes(2, 12_000.0, 4096), vec![], vec![running, pending]);
        let out = solve(&p, &prev);
        assert!(
            out.placement.jobs.contains_key(&JobId::new(0)),
            "kept running"
        );
        assert!(
            !out.placement.jobs.contains_key(&JobId::new(1)),
            "not started"
        );
        assert!(
            out.unplaced_jobs.is_empty(),
            "zero-demand pending is not 'unplaced'"
        );
    }

    #[test]
    fn suspended_job_prefers_affinity_node() {
        let mut j = jobr(0, 3000.0);
        j.affinity = Some(NodeId::new(1));
        let p = problem(nodes(3, 12_000.0, 4096), vec![], vec![j]);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.job_node(JobId::new(0)), Some(NodeId::new(1)));
    }

    #[test]
    fn warm_resolve_with_capacity_change_never_rebuilds_heap() {
        // Same node set across cycles — even with capacities and demands
        // shifting — must keep the candidate heap's topology: one build
        // at the first solve, zero rebuilds after.
        let mut warm = Solver::new();
        let mut prev = Placement::empty();
        for cycle in 0..5u32 {
            let mut p = problem(
                nodes(
                    4,
                    9_000.0 + 1500.0 * cycle as f64,
                    4096 + 512 * cycle as u64,
                ),
                vec![appr(0, 8000.0)],
                (0..6).map(|i| jobr(i, 1200.0 + 300.0 * i as f64)).collect(),
            );
            for j in &mut p.jobs {
                j.running_on = prev.job_node(j.id);
            }
            prev = warm.solve(&p, &prev).placement;
        }
        assert_eq!(warm.heap_rebuilds(), 1, "capacity-only cycles rebuilt");
        // A topology change (node lost) does rebuild.
        let p = problem(nodes(3, 9_000.0, 4096), vec![appr(0, 8000.0)], vec![]);
        warm.solve(&p, &prev);
        assert_eq!(warm.heap_rebuilds(), 2);
    }

    #[test]
    fn scan_engine_is_available_and_agrees() {
        let p = problem(
            nodes(5, 12_000.0, 4096),
            vec![appr(0, 20_000.0)],
            (0..9).map(|i| jobr(i, 1000.0 + 400.0 * i as f64)).collect(),
        );
        let mut scan = Solver::with_engine(CandidateEngine::Scan);
        let mut heap = Solver::with_engine(CandidateEngine::Heap);
        assert_eq!(scan.engine(), CandidateEngine::Scan);
        assert_eq!(
            scan.solve(&p, &Placement::empty()),
            heap.solve(&p, &Placement::empty())
        );
    }

    #[test]
    fn sparse_node_ids_work_via_interning() {
        // Node ids far apart and unordered: dense indices must absorb it.
        let caps = vec![
            NodeCapacity {
                id: NodeId::new(90),
                cpu: CpuMhz::new(6000.0),
                mem: MemMb::new(4096),
            },
            NodeCapacity {
                id: NodeId::new(7),
                cpu: CpuMhz::new(6000.0),
                mem: MemMb::new(4096),
            },
        ];
        let mut j = jobr(0, 3000.0);
        j.running_on = Some(NodeId::new(90));
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(90), CpuMhz::new(3000.0)));
        let p = problem(caps, vec![appr(0, 4000.0)], vec![j, jobr(1, 2000.0)]);
        let out = solve(&p, &prev);
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
        assert_eq!(out.placement.job_node(JobId::new(0)), Some(NodeId::new(90)));
        assert_eq!(out, solve_reference(&p, &prev));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_outcome_always_valid_and_within_budget(
            n_nodes in 1u32..6,
            node_cpu in 3000.0..16_000.0f64,
            node_mem in 1024u64..8192,
            app_demands in proptest::collection::vec(0.0..40_000.0f64, 0..3),
            job_demands in proptest::collection::vec(0.0..3000.0f64, 0..12),
            budget in proptest::option::of(0usize..8),
        ) {
            let apps: Vec<AppRequest> = app_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut a = appr(i as u32, d);
                    a.min_instances = 0;
                    a
                })
                .collect();
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| jobr(i as u32, d))
                .collect();
            let mut p = problem(nodes(n_nodes, node_cpu, node_mem), apps, jobs);
            p.config.max_changes = budget;
            let out = solve(&p, &Placement::empty());
            // 1. Structural validity (capacity constraints, counts).
            out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
            // 2. Budget respected.
            if let Some(b) = budget {
                prop_assert!(out.changes.len() <= b, "{} > {b}", out.changes.len());
            }
            // 3. Nobody exceeds their demand.
            for a in &p.apps {
                prop_assert!(
                    out.satisfied_apps[&a.id].as_f64() <= a.demand.as_f64() + 1.0
                );
            }
            for j in &p.jobs {
                if let Some(&got) = out.satisfied_jobs.get(&j.id) {
                    prop_assert!(got.as_f64() <= j.demand.as_f64() + 1.0);
                }
            }
        }

        #[test]
        fn prop_resolving_same_problem_is_stable(
            n_nodes in 1u32..5,
            job_demands in proptest::collection::vec(100.0..3000.0f64, 1..10),
        ) {
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| jobr(i as u32, d))
                .collect();
            let p = problem(nodes(n_nodes, 12_000.0, 4096), vec![], jobs);
            let first = solve(&p, &Placement::empty());
            let mut p2 = p.clone();
            for j in &mut p2.jobs {
                j.running_on = first.placement.job_node(j.id);
            }
            let second = solve(&p2, &first.placement);
            prop_assert!(second.changes.is_empty(), "churn: {:?}", second.changes);
        }

        /// Delta mode must be bit-identical to batch mode over random
        /// churn sequences (drifts, completions, arrivals) — the solver-
        /// layer arm of the tentpole's differential oracle. Contended and
        /// non-canonical cycles simply fall back; identity must hold
        /// either way.
        #[test]
        fn prop_delta_mode_matches_batch_mode(
            n_nodes in 1u32..6,
            base in proptest::collection::vec(100.0..3000.0f64, 1..12),
            churn in proptest::collection::vec(
                (0usize..12, 100.0..3000.0f64, 0u8..4), 1..10),
        ) {
            let mut demands = base;
            let mut alive = vec![true; demands.len()];
            let mut running: Vec<Option<NodeId>> = vec![None; demands.len()];
            let mut batch = Solver::new();
            let mut delta = Solver::with_mode(SolveMode::Delta);
            let mut prev_b = Placement::empty();
            let mut prev_d = Placement::empty();
            for (k, &(ix, d, op)) in churn.iter().enumerate() {
                let i = ix % demands.len();
                match op {
                    0 => demands[i] = d, // demand drift
                    1 => alive[i] = false, // completion
                    2 => alive[i] = true, // (re-)arrival
                    _ => {} // quiet cycle
                }
                let jobs: Vec<JobRequest> = (0..demands.len())
                    .filter(|&j| alive[j])
                    .map(|j| JobRequest {
                        running_on: running[j],
                        ..jobr(j as u32, demands[j])
                    })
                    .collect();
                let p = problem(nodes(n_nodes, 12_000.0, 4096), vec![], jobs);
                let out_b = batch.solve(&p, &prev_b);
                let out_d = delta.solve(&p, &prev_d);
                prop_assert_eq!(&out_b, &out_d, "divergence at cycle {}", k);
                for (j, slot) in running.iter_mut().enumerate() {
                    *slot = out_b.placement.job_node(JobId::new(j as u32));
                }
                prev_b = out_b.placement;
                prev_d = out_d.placement;
            }
        }

        /// The heap engine must be bit-identical to the scan engine on
        /// random problems, cold and across a warm second cycle — the
        /// tentpole differential for the candidate-heap rework (the scan
        /// arm is the pre-heap hot path, kept as the executable spec).
        #[test]
        fn prop_heap_engine_matches_scan_engine(
            n_nodes in 1u32..8,
            node_cpu in 3000.0..16_000.0f64,
            node_mem in 1024u64..8192,
            app_demands in proptest::collection::vec(0.0..40_000.0f64, 0..4),
            job_demands in proptest::collection::vec(0.0..3000.0f64, 0..14),
            budget in proptest::option::of(0usize..10),
            gap in 0.0..500.0f64,
        ) {
            let apps: Vec<AppRequest> = app_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut a = appr(i as u32, d);
                    a.min_instances = (i % 3) as u32;
                    a
                })
                .collect();
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut j = jobr(i as u32, d);
                    // Quantized priorities manufacture eviction ties and
                    // exercise the failed-scan memo's reset paths.
                    j.priority = (d / 250.0).floor();
                    j
                })
                .collect();
            let mut p = problem(nodes(n_nodes, node_cpu, node_mem), apps, jobs);
            p.config.max_changes = budget;
            p.config.evict_priority_gap = gap;
            let mut scan = Solver::with_engine(CandidateEngine::Scan);
            let mut heap = Solver::with_engine(CandidateEngine::Heap);
            let s1 = scan.solve(&p, &Placement::empty());
            let h1 = heap.solve(&p, &Placement::empty());
            prop_assert_eq!(&s1, &h1, "cold cycle diverged");
            let mut p2 = p.clone();
            for j in &mut p2.jobs {
                j.running_on = s1.placement.job_node(j.id);
                j.affinity = j.running_on;
            }
            let s2 = scan.solve(&p2, &s1.placement);
            let h2 = heap.solve(&p2, &h1.placement);
            prop_assert_eq!(&s2, &h2, "warm cycle diverged");
        }

        #[test]
        fn prop_dense_solver_matches_reference(
            n_nodes in 1u32..7,
            node_cpu in 3000.0..16_000.0f64,
            node_mem in 1024u64..8192,
            app_demands in proptest::collection::vec(0.0..40_000.0f64, 0..4),
            job_demands in proptest::collection::vec(0.0..3000.0f64, 0..14),
            budget in proptest::option::of(0usize..10),
            gap in 0.0..500.0f64,
        ) {
            // Differential test: the dense-index solver must reproduce the
            // seed (id-keyed) implementation's outcome bit-for-bit —
            // including across a warm second cycle with running jobs and a
            // prior placement.
            let apps: Vec<AppRequest> = app_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut a = appr(i as u32, d);
                    a.min_instances = (i % 3) as u32;
                    a
                })
                .collect();
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut j = jobr(i as u32, d);
                    j.priority = d * if i % 2 == 0 { 1.0 } else { 0.5 };
                    j
                })
                .collect();
            let mut p = problem(nodes(n_nodes, node_cpu, node_mem), apps, jobs);
            p.config.max_changes = budget;
            p.config.evict_priority_gap = gap;
            let mut warm = Solver::new();
            let dense1 = warm.solve(&p, &Placement::empty());
            let ref1 = solve_reference(&p, &Placement::empty());
            prop_assert_eq!(&dense1, &ref1, "cold cycle diverged");
            // Warm cycle: jobs run where they landed; prev = cycle-1 result.
            let mut p2 = p.clone();
            for j in &mut p2.jobs {
                j.running_on = dense1.placement.job_node(j.id);
                j.affinity = j.running_on;
            }
            let dense2 = warm.solve(&p2, &dense1.placement);
            let ref2 = solve_reference(&p2, &ref1.placement);
            prop_assert_eq!(&dense2, &ref2, "warm cycle diverged");
        }
    }
}
