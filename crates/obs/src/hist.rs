//! Fixed-log-bucket histogram over `u64` samples.
//!
//! Buckets are powers of two: bucket 0 holds exactly the value `0`,
//! bucket `i` (for `1 ≤ i ≤ 63`) holds values in `[2^(i-1), 2^i)`, and
//! bucket 64 holds everything from `2^63` up. The layout is fixed at
//! compile time, so two histograms always merge bucket-by-bucket with no
//! rebinning, and recording a sample is a single shift + increment.
//!
//! Quantiles are answered from the bucket counts: `quantile(q)` returns
//! the *lower edge* of the bucket containing the `ceil(q·count)`-th
//! smallest sample. On inputs that are exact bucket edges (powers of
//! two and zero) this is exact; otherwise it underestimates by at most
//! one bucket width, which is the usual log-histogram contract.

/// Number of buckets: `0`, 63 pow-2 ranges, and one overflow bucket.
pub const BUCKETS: usize = 65;

/// A fixed-layout log-bucket histogram of `u64` samples.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// array, so means and extrema never suffer bucketing error.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`,
    /// capped at the overflow bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Lower edge of bucket `i` (the smallest sample it can hold).
    pub fn bucket_lower(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1).min(63),
        }
    }

    /// Exclusive upper edge of bucket `i`, or `u64::MAX` for the
    /// overflow bucket.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index via [`Histogram::bucket_index`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Lower edge of the bucket containing the `ceil(q·count)`-th
    /// smallest sample (`0 < q ≤ 1`). Returns 0 when empty. Exact when
    /// every sample sits on a bucket edge (powers of two or zero).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The extrema are exact; use them to tighten the edges.
                return Self::bucket_lower(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Median shorthand for [`Histogram::quantile`]`(0.50)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand for [`Histogram::quantile`]`(0.95)`.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Fold another histogram into this one bucket-by-bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `earlier` (which must be a previous
    /// snapshot of this histogram): bucket counts, `count` and `sum`
    /// subtract exactly (saturating against misuse); `min`/`max` are
    /// re-derived from the surviving buckets, so they are exact only to
    /// bucket resolution (lower edge of the first non-empty bucket,
    /// upper edge of the last). Backs the recorder's snapshot-delta
    /// API.
    pub fn saturating_diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (&a, &b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[i] = a.saturating_sub(b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        if out.count > 0 {
            let first = out.buckets.iter().position(|&c| c > 0).unwrap_or(0);
            let last = out.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
            out.min = Self::bucket_lower(first);
            out.max = Self::bucket_upper(last).saturating_sub(1).max(out.min);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        // Each pow-2 value sits exactly on its bucket's lower edge.
        for i in 0..20 {
            let v = 1u64 << i;
            let b = Histogram::bucket_index(v);
            assert_eq!(Histogram::bucket_lower(b), v);
            assert!(v < Histogram::bucket_upper(b));
        }
    }

    #[test]
    fn quantiles_exact_on_pow2_inputs() {
        let mut h = Histogram::new();
        // 100 samples: 50× 4, 45× 16, 5× 1024.
        for _ in 0..50 {
            h.record(4);
        }
        for _ in 0..45 {
            h.record(16);
        }
        for _ in 0..5 {
            h.record(1024);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 4); // rank 50 → still in the 4s
        assert_eq!(h.p95(), 16); // rank 95 → last of the 16s
        assert_eq!(h.quantile(0.96), 1024); // rank 96 → first 1024
        assert_eq!(h.max(), 1024);
        assert_eq!(h.min(), 4);
        assert_eq!(h.sum(), 50 * 4 + 45 * 16 + 5 * 1024);
    }

    #[test]
    fn quantile_clamped_by_exact_extrema() {
        let mut h = Histogram::new();
        h.record(1000); // bucket [512, 1024) — lower edge 512
        assert_eq!(h.p50(), 1000); // min == max == 1000 tightens it
        for _ in 0..9 {
            h.record(600);
        }
        // All ten samples share bucket 10; p50's lower edge 512 is
        // raised to the exact min 600.
        assert_eq!(h.p50(), 600);
    }

    #[test]
    fn merge_adds_buckets_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0u64, 1, 2, 4] {
            a.record(v);
        }
        for v in [8u64, 16, 1 << 40] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 1 << 40);
        assert_eq!(a.sum(), 1 + 2 + 4 + 8 + 16 + (1 << 40));
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[41], 1);
    }

    /// The interpolation contract at exact bucket boundaries: a
    /// quantile rank landing on the last sample of a bucket reports
    /// that bucket, and rank+1 jumps to the next bucket's lower edge —
    /// no off-by-one smearing across the pow-2 boundary.
    #[test]
    fn quantile_ranks_at_exact_bucket_boundaries() {
        let mut h = Histogram::new();
        // 10 samples of 8 (bucket [8,16)) then 10 of 16 (bucket [16,32)).
        for _ in 0..10 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(16);
        }
        // Rank 10 (q = 0.5) is the last 8; rank 11 (q = 0.55) the first 16.
        assert_eq!(h.quantile(0.50), 8);
        assert_eq!(h.quantile(0.55), 16);
        // q just above 0.5 still rounds up to rank 11.
        assert_eq!(h.quantile(0.5001), 16);
        // The extreme quantiles pin to the exact extrema.
        assert_eq!(h.quantile(1.0), 16);
        assert_eq!(h.quantile(1e-9), 8); // rank clamps to 1
    }

    /// Boundary values `2^k` sit in bucket k+1 whose lower edge is the
    /// value itself, while `2^k - 1` sits one bucket below — quantiles
    /// over such inputs must respect the split exactly.
    #[test]
    fn quantiles_respect_the_pow2_split() {
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(1023); // bucket [512, 1024)
        }
        for _ in 0..50 {
            h.record(1024); // bucket [1024, 2048)
        }
        assert_eq!(h.p50(), 1023); // rank 50: lower edge 512 raised to min
        assert_eq!(h.quantile(0.51), 1024); // rank 51: exactly the boundary
        assert_eq!(h.p95(), 1024);
    }

    #[test]
    fn saturating_diff_recovers_the_new_samples() {
        let mut h = Histogram::new();
        h.record(4);
        h.record(16);
        let snap = h.clone();
        h.record(16);
        h.record(64);
        let d = h.saturating_diff(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 16 + 64);
        assert_eq!(d.buckets()[Histogram::bucket_index(16)], 1);
        assert_eq!(d.buckets()[Histogram::bucket_index(64)], 1);
        // Extrema come back at bucket resolution: [16,32) and [64,128).
        assert_eq!(d.min(), 16);
        assert_eq!(d.max(), 127);
        // Diffing identical snapshots is empty.
        let z = h.saturating_diff(&h.clone());
        assert_eq!(z.count(), 0);
        assert_eq!(z.min(), 0);
        assert_eq!(z.max(), 0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
