//! M/G/1 processor-sharing queueing model.
//!
//! The application is abstracted as a fluid server of capacity ω MHz
//! shared by concurrently executing requests. Requests arrive Poisson at
//! rate λ and each needs `service` MHz·s of CPU work. Under processor
//! sharing the mean response time depends on the service distribution only
//! through its mean:
//!
//! ```text
//! RT(ω) = service / (ω − λ·service)      for ω > λ·service (stable)
//!       = ∞                              otherwise
//! ```
//!
//! The closed form inverts exactly, which the transactional utility curve
//! exploits: `ω(RT) = λ·service + service / RT`.

use serde::{Deserialize, Serialize};
use slaq_types::{CpuMhz, SimDuration, Work};

/// An M/G/1-PS queue: Poisson arrivals at `lambda` req/s, mean per-request
/// service demand `service` (MHz·s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsQueue {
    /// Request arrival rate, requests per second. May be zero (idle app).
    pub lambda: f64,
    /// Mean CPU work per request.
    pub service: Work,
}

impl PsQueue {
    /// Create a queue; `lambda ≥ 0` and `service > 0` required.
    pub fn new(lambda: f64, service: Work) -> Option<Self> {
        (lambda >= 0.0 && lambda.is_finite() && service.as_f64() > 0.0)
            .then_some(PsQueue { lambda, service })
    }

    /// The raw work arrival rate λ·service — the minimum CPU power below
    /// which the queue is unstable. (This is the "pure demand" of the
    /// workload; any response-time goal requires headroom above it.)
    #[inline]
    pub fn offered_load(&self) -> CpuMhz {
        CpuMhz::new(self.lambda * self.service.as_f64())
    }

    /// Server utilization at allocation `alloc` (may exceed 1 when
    /// unstable).
    pub fn utilization(&self, alloc: CpuMhz) -> f64 {
        if alloc.is_zero() {
            if self.lambda == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.offered_load().as_f64() / alloc.as_f64()
        }
    }

    /// `true` if the queue is stable (utilization < 1) at `alloc`.
    pub fn is_stable(&self, alloc: CpuMhz) -> bool {
        self.offered_load().as_f64() < alloc.as_f64()
    }

    /// Mean response time at allocation `alloc`
    /// ([`SimDuration::INFINITE`] when unstable).
    pub fn response_time(&self, alloc: CpuMhz) -> SimDuration {
        let headroom = alloc - self.offered_load();
        if headroom.as_f64() <= 0.0 {
            return SimDuration::INFINITE;
        }
        SimDuration::from_secs(self.service.secs_at(headroom))
    }

    /// Least allocation achieving mean response time ≤ `rt`.
    ///
    /// Returns `None` for a non-positive target (unreachable under PS).
    pub fn cpu_for_response_time(&self, rt: SimDuration) -> Option<CpuMhz> {
        if rt.as_secs() <= 0.0 {
            return None;
        }
        if rt.is_infinite() {
            return Some(CpuMhz::ZERO);
        }
        Some(self.offered_load() + self.service.power_for_secs(rt.as_secs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(lambda: f64, service_mhz_s: f64) -> PsQueue {
        PsQueue::new(lambda, Work::new(service_mhz_s)).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(PsQueue::new(-1.0, Work::new(100.0)).is_none());
        assert!(PsQueue::new(1.0, Work::ZERO).is_none());
        assert!(PsQueue::new(f64::NAN, Work::new(1.0)).is_none());
        assert!(PsQueue::new(0.0, Work::new(1.0)).is_some());
    }

    #[test]
    fn offered_load_is_lambda_times_service() {
        let queue = q(50.0, 2000.0);
        assert_eq!(queue.offered_load(), CpuMhz::new(100_000.0));
    }

    #[test]
    fn response_time_closed_form() {
        // λ=50 req/s, c=2000 MHz·s, ω=108 000 ⇒ RT = 2000/8000 = 0.25 s.
        let queue = q(50.0, 2000.0);
        let rt = queue.response_time(CpuMhz::new(108_000.0));
        assert!((rt.as_secs() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instability_below_offered_load() {
        let queue = q(50.0, 2000.0);
        assert!(!queue.is_stable(CpuMhz::new(100_000.0)));
        assert!(queue.response_time(CpuMhz::new(100_000.0)).is_infinite());
        assert!(queue.response_time(CpuMhz::new(50_000.0)).is_infinite());
        assert!(queue.response_time(CpuMhz::ZERO).is_infinite());
        assert!(queue.is_stable(CpuMhz::new(100_001.0)));
    }

    #[test]
    fn idle_app_has_pure_service_latency() {
        let queue = q(0.0, 3000.0);
        assert_eq!(queue.offered_load(), CpuMhz::ZERO);
        // A lone request on a 3000 MHz slice finishes in 1 s.
        assert!((queue.response_time(CpuMhz::new(3000.0)).as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(queue.utilization(CpuMhz::ZERO), 0.0);
    }

    #[test]
    fn zero_allocation_with_traffic_is_saturated() {
        let queue = q(10.0, 100.0);
        assert_eq!(queue.utilization(CpuMhz::ZERO), f64::INFINITY);
        assert!(!queue.is_stable(CpuMhz::ZERO));
    }

    #[test]
    fn cpu_for_response_time_inverts() {
        let queue = q(50.0, 2000.0);
        let alloc = queue
            .cpu_for_response_time(SimDuration::from_secs(0.25))
            .unwrap();
        assert!(alloc.approx_eq(CpuMhz::new(108_000.0), 1e-6));
        assert!(queue.cpu_for_response_time(SimDuration::ZERO).is_none());
        assert_eq!(
            queue.cpu_for_response_time(SimDuration::INFINITE),
            Some(CpuMhz::ZERO)
        );
    }

    proptest! {
        #[test]
        fn prop_rt_decreases_with_allocation(
            lambda in 0.0..200.0f64,
            service in 10.0..5000.0f64,
            a1 in 1.0..1e6f64,
            extra in 0.0..1e6f64,
        ) {
            let queue = q(lambda, service);
            let r1 = queue.response_time(CpuMhz::new(a1));
            let r2 = queue.response_time(CpuMhz::new(a1 + extra));
            prop_assert!(r2.as_secs() <= r1.as_secs() + 1e-9);
        }

        #[test]
        fn prop_inverse_roundtrip(
            lambda in 0.0..200.0f64,
            service in 10.0..5000.0f64,
            rt in 0.001..100.0f64,
        ) {
            let queue = q(lambda, service);
            let alloc = queue.cpu_for_response_time(SimDuration::from_secs(rt)).unwrap();
            let rt_back = queue.response_time(alloc);
            prop_assert!((rt_back.as_secs() - rt).abs() < 1e-6 * rt.max(1.0));
        }

        #[test]
        fn prop_stability_boundary(
            lambda in 0.1..200.0f64,
            service in 10.0..5000.0f64,
            eps in 0.01..1e3f64,
        ) {
            let queue = q(lambda, service);
            let load = queue.offered_load();
            prop_assert!(!queue.is_stable(load));
            prop_assert!(queue.is_stable(load + CpuMhz::new(eps)));
            prop_assert!(queue.response_time(load + CpuMhz::new(eps)).as_secs().is_finite());
        }
    }
}
