//! Failure injection: node outages mid-run. The controller never sees
//! more than a zero-capacity node, yet the system must suspend victims,
//! re-place them elsewhere, and re-absorb the node after recovery.

use slaq::prelude::*;
use slaq_sim::NodeOutage;

fn cfg(horizon: f64) -> SimConfig {
    SimConfig {
        control_period: SimDuration::from_secs(600.0),
        horizon: SimTime::from_secs(horizon),
        overheads: OverheadConfig {
            start: SimDuration::ZERO,
            resume: SimDuration::ZERO,
            migrate: SimDuration::ZERO,
        },
        cap_transactional: false,
    }
}

fn job(i: u32, work_secs: f64) -> JobSpec {
    JobSpec {
        name: format!("j{i}"),
        total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
        max_speed: CpuMhz::new(3000.0),
        mem: MemMb::new(1280),
        goal: CompletionGoal::relative(SimTime::ZERO, SimDuration::from_secs(work_secs), 1.25, 4.0)
            .unwrap(),
    }
}

#[test]
fn jobs_on_failed_node_are_suspended_and_resumed_elsewhere() {
    // 2 nodes, 3 jobs on node0's slots + others; fail node0 at t=1000.
    let cluster = ClusterSpec::homogeneous(2, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    let mut sim = Simulator::new(&cluster, cfg(8000.0));
    sim.add_arrivals((0..6).map(|i| (SimTime::ZERO, job(i, 3000.0))).collect());
    sim.add_outage(NodeOutage {
        node: NodeId::new(0),
        from: SimTime::from_secs(1000.0),
        to: SimTime::from_secs(3000.0),
    });
    let report = sim.run(&mut UtilityController::default()).unwrap();
    // Everything still completes: victims resume on node1 (or back on
    // node0 after recovery).
    assert_eq!(report.job_stats.completed, 6, "{:?}", report.job_stats);
    // The outage forced real suspensions.
    assert!(
        report.job_stats.disruptions >= 2,
        "disruptions {}",
        report.job_stats.disruptions
    );
    // Nothing may run on node0 between 1000 and 3000: its allocation
    // share is zero in the cycles inside the window.
    for j in sim.jobs().jobs() {
        assert!(!j.is_active(), "{:?} still active", j.id);
    }
}

#[test]
fn cluster_survives_full_single_node_loss_with_app() {
    let cluster = ClusterSpec::homogeneous(3, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    let mut sim = Simulator::new(&cluster, cfg(6000.0));
    let spec = TransactionalSpec {
        name: "front".into(),
        service_per_request: Work::new(720.0),
        rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
        mem_per_instance: MemMb::new(1024),
        max_instances: 3,
        min_instances: 1,
        u_cap: 0.9,
    };
    sim.add_app(TransactionalRuntime::new(AppId::new(0), spec, Box::new(|_| 10.0), 0.5).unwrap());
    sim.add_arrivals((0..4).map(|i| (SimTime::ZERO, job(i, 2000.0))).collect());
    sim.add_outage(NodeOutage {
        node: NodeId::new(1),
        from: SimTime::from_secs(1200.0),
        to: SimTime::from_secs(2400.0),
    });
    let report = sim.run(&mut UtilityController::default()).unwrap();
    assert_eq!(report.job_stats.completed, 4);
    // The app keeps serving throughout (utility never collapses to −1
    // for a whole cycle: two healthy nodes always exceed its demand).
    let min_u = report.metrics.min("trans_utility").unwrap();
    assert!(min_u > -0.5, "app utility collapsed: {min_u}");
}

#[test]
fn overlapping_outages_of_all_nodes_pause_everything() {
    let cluster = ClusterSpec::homogeneous(2, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    let mut sim = Simulator::new(&cluster, cfg(6000.0));
    sim.add_arrivals(vec![(SimTime::ZERO, job(0, 1000.0))]);
    for n in 0..2 {
        sim.add_outage(NodeOutage {
            node: NodeId::new(n),
            from: SimTime::from_secs(600.0),
            to: SimTime::from_secs(1800.0),
        });
    }
    let report = sim.run(&mut UtilityController::default()).unwrap();
    // Job started at 0, ran 600 s, lost its node, resumed at the 1800 s
    // cycle, finished 400 s later.
    assert_eq!(report.job_stats.completed, 1);
    let j = sim.jobs().job(JobId::new(0)).unwrap();
    match j.state {
        JobState::Completed { at } => {
            assert!(
                (at.as_secs() - 2200.0).abs() < 1.0,
                "completed at {at}, expected ≈2200"
            )
        }
        ref s => panic!("unexpected state {s:?}"),
    }
}
