//! Run a scenario from a JSON spec file — scenarios are data, not code.
//!
//! ```text
//! # run a built-in preset
//! cargo run --release --example run_scenario -- --preset paper-small
//!
//! # list the corpus
//! cargo run --release --example run_scenario -- --list
//!
//! # write a preset's JSON, edit it, run it back
//! cargo run --release --example run_scenario -- --dump diurnal > my.json
//! cargo run --release --example run_scenario -- my.json
//!
//! # run every pinned spec in a directory (default: ./scenarios)
//! cargo run --release --example run_scenario -- --dir
//! cargo run --release --example run_scenario -- --dir my-fleets/
//!
//! # instrument the run: print the span/counter report, write a
//! # Chrome trace (load it at ui.perfetto.dev or chrome://tracing)
//! cargo run --release --example run_scenario -- --preset paper-small --report
//! cargo run --release --example run_scenario -- --preset paper-small --trace-out trace.json
//! ```

use slaq::core::{ObserveSpec, ScenarioSpec};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: run_scenario [<spec.json> | --preset <name> | --dump <name> | --list | --dir [path]]\n\
         \x20      [--report] [--trace-out <file>] [--audit-out <file>] [--prom-out <file>]\n\
         presets: {}\n\
         --dir runs every *.json spec in the directory (default: scenarios/)\n\
         --report prints the observability run report (spans, counters, histograms)\n\
         --trace-out writes a Chrome trace-event JSON of the run's spans\n\
         --audit-out writes the placement decision audit log as JSONL\n\
         --prom-out writes the final counters/histograms in Prometheus text format",
        ScenarioSpec::preset_names().join(", ")
    );
    std::process::exit(2);
}

/// Observability flags, extracted from the argument list before the
/// positional dispatch (either flag turns the recorder on for the run).
#[derive(Default)]
struct ObsFlags {
    report: bool,
    trace_out: Option<String>,
    audit_out: Option<String>,
    prom_out: Option<String>,
}

impl ObsFlags {
    fn on(&self) -> bool {
        self.report
            || self.trace_out.is_some()
            || self.audit_out.is_some()
            || self.prom_out.is_some()
    }
}

/// Split `args` into observability flags and the remaining positionals.
fn split_obs_flags(args: Vec<String>) -> (ObsFlags, Vec<String>) {
    let mut flags = ObsFlags::default();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => flags.report = true,
            "--trace-out" => match it.next() {
                Some(path) => flags.trace_out = Some(path),
                None => usage(),
            },
            "--audit-out" => match it.next() {
                Some(path) => flags.audit_out = Some(path),
                None => usage(),
            },
            "--prom-out" => match it.next() {
                Some(path) => flags.prom_out = Some(path),
                None => usage(),
            },
            _ => rest.push(a),
        }
    }
    (flags, rest)
}

/// All `*.json` specs in a directory, sorted by file name for
/// reproducible report order.
fn specs_in_dir(dir: &Path) -> Vec<(String, ScenarioSpec)> {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("cannot read directory {}: {e}", dir.display());
        std::process::exit(1);
    });
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let label = path.display().to_string();
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {label}: {e}");
                std::process::exit(1);
            });
            let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {label}: {e}");
                std::process::exit(1);
            });
            (label, spec)
        })
        .collect()
}

fn load_specs(args: Vec<String>) -> Vec<(String, ScenarioSpec)> {
    match args.first().map(String::as_str) {
        Some("--list") => {
            for name in ScenarioSpec::preset_names() {
                let spec = ScenarioSpec::preset(name).expect("named preset");
                println!(
                    "{name:<22} {} nodes, {} apps, {} job streams, horizon {} s",
                    spec.cluster.node_count(),
                    spec.apps.len(),
                    spec.job_streams.len(),
                    spec.timing.horizon_secs
                );
            }
            std::process::exit(0);
        }
        Some("--dump") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = ScenarioSpec::preset(name).unwrap_or_else(|| usage());
            println!("{}", spec.to_json().expect("presets serialize"));
            std::process::exit(0);
        }
        Some("--preset") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = ScenarioSpec::preset(name).unwrap_or_else(|| usage());
            vec![(name.to_string(), spec)]
        }
        Some("--dir") => {
            let dir = args.get(1).map(String::as_str).unwrap_or("scenarios");
            let specs = specs_in_dir(Path::new(dir));
            if specs.is_empty() {
                eprintln!("no *.json specs under {dir}");
                std::process::exit(1);
            }
            specs
        }
        Some(path) if !path.starts_with("--") => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
            vec![(path.to_string(), spec)]
        }
        _ => usage(),
    }
}

fn run_one(label: &str, spec: &ScenarioSpec, obs: &ObsFlags) {
    if let Err(e) = spec.validate() {
        eprintln!("{label}: invalid spec: {e}");
        std::process::exit(1);
    }
    // Either observability flag instruments the run regardless of the
    // spec's own `controller.observe` knob (the recorder observes only,
    // so results are bit-identical either way).
    let mut spec = spec.clone();
    if obs.on() {
        spec.controller.observe = ObserveSpec::On;
    }
    let spec = &spec;
    eprintln!(
        "running '{}': {} nodes, {} apps, {} job streams, horizon {} s…",
        spec.name,
        spec.cluster.node_count(),
        spec.apps.len(),
        spec.job_streams.len(),
        spec.timing.horizon_secs
    );
    // Keep the simulator alive past the run so its recorder can be
    // exported (`ScenarioSpec::run` would drop it with the recorder).
    let scenario = spec.materialize().unwrap_or_else(|e| {
        eprintln!("{label}: invalid spec: {e}");
        std::process::exit(1);
    });
    let mut controller = scenario.controller();
    let mut sim = scenario.build().unwrap_or_else(|e| {
        eprintln!("{label}: build failed: {e}");
        std::process::exit(1);
    });
    let report = sim.run(controller.as_mut()).unwrap_or_else(|e| {
        eprintln!("{label}: run failed: {e}");
        std::process::exit(1);
    });

    let s = report.job_stats;
    println!("scenario          : {}", spec.name);
    println!("controller        : {}", spec.controller.kind.name());
    println!("control cycles    : {}", report.cycles);
    println!("placement changes : {}", report.total_changes);
    println!(
        "jobs              : {} submitted, {} completed, {} met goals, {} disruptions",
        s.submitted, s.completed, s.goals_met, s.disruptions
    );
    if s.completed > 0 {
        println!("mean job utility  : {:.3}", s.mean_achieved_utility);
    }
    for (label, series) in [
        ("mean trans utility", "trans_utility"),
        ("mean jobs outlook ", "jobs_outlook"),
    ] {
        let m = &report.metrics;
        if let Some(mean) = m.mean_over(
            series,
            slaq::types::SimTime::ZERO,
            slaq::types::SimTime::from_secs(spec.timing.horizon_secs),
        ) {
            println!("{label}: {mean:.3}");
        }
    }
    println!("series recorded   : {}", report.metrics.names().len());

    if obs.report {
        println!();
        print!("{}", slaq::obs::run_report(sim.recorder()));
    }
    if let Some(path) = &obs.trace_out {
        let json = slaq::obs::chrome_trace_json(sim.recorder());
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("{label}: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote Chrome trace ({} bytes) to {path}", json.len());
    }
    if let Some(path) = &obs.audit_out {
        let jsonl = slaq::obs::audit_jsonl(sim.recorder());
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("{label}: cannot write audit log to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote audit log ({} bytes) to {path}", jsonl.len());
    }
    if let Some(path) = &obs.prom_out {
        let text = slaq::obs::prometheus_text(sim.recorder());
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("{label}: cannot write Prometheus text to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote Prometheus text ({} bytes) to {path}", text.len());
    }
}

fn main() {
    let (obs, rest) = split_obs_flags(std::env::args().skip(1).collect());
    let specs = load_specs(rest);
    for (i, (label, spec)) in specs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        run_one(label, spec, &obs);
    }
}
