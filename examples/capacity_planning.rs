//! Capacity planning with the simulator: how many nodes does the paper's
//! workload need before both SLAs hold? Sweeps cluster sizes and reports
//! per-size outcomes under the utility-equalizing controller.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use slaq::prelude::*;
use slaq_experiments::run_paper_experiment;

fn main() {
    println!("cluster-size sweep on the scaled paper workload\n");
    println!(
        "{:<7} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "nodes", "mean u_T", "mean u_J", "done", "goals", "worst utility"
    );

    for nodes in [3u32, 4, 5, 6, 8, 10] {
        let mut params = PaperParams::small();
        params.nodes = nodes;
        let report = match run_paper_experiment(&params) {
            Ok(r) => r,
            Err(e) => {
                println!("{nodes:<7} simulation failed: {e}");
                continue;
            }
        };
        let horizon = SimTime::from_secs(params.horizon_secs);
        let m = &report.metrics;
        let u_t = m
            .mean_over("trans_utility", SimTime::ZERO, horizon)
            .unwrap_or(f64::NAN);
        let u_j = m
            .mean_over("jobs_hypo_utility", SimTime::ZERO, horizon)
            .unwrap_or(f64::NAN);
        let worst = m
            .min("trans_utility")
            .unwrap_or(f64::NAN)
            .min(m.min("jobs_hypo_utility").unwrap_or(f64::NAN));
        println!(
            "{:<7} {:>12.3} {:>12.3} {:>10} {:>10} {:>12.3}",
            nodes, u_t, u_j, report.job_stats.completed, report.job_stats.goals_met, worst,
        );
    }

    println!(
        "\nreading: u_T = measured transactional utility, u_J = hypothetical job \
         utility; 'worst utility' is the lowest point either workload hits. \
         Pick the smallest cluster whose worst utility stays above your floor."
    );
}
