//! Corpus-driven placement bench: for every named scenario preset,
//! materialize the spec (workload generation included) and run the first
//! control cycle — the cold-placement solve each scenario shape produces.
//! Horizon capping is a field write on the spec, so each iteration stays
//! cheap while exercising the full spec → scenario → simulator path.

use criterion::{criterion_group, criterion_main, Criterion};
use slaq_core::ScenarioSpec;
use std::hint::black_box;

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_corpus");
    group.sample_size(10);
    for name in ScenarioSpec::preset_names() {
        group.bench_function(format!("first_cycle_{name}"), |b| {
            let mut spec = ScenarioSpec::preset(name).expect("preset exists");
            spec.timing.horizon_secs = spec.timing.control_period_secs;
            b.iter(|| {
                let scenario = black_box(&spec).materialize().expect("valid preset");
                let mut controller = scenario.controller();
                let report = scenario.run(controller.as_mut()).expect("one cycle runs");
                black_box(report.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corpus);
criterion_main!(benches);
