//! The utility-driven placement controller (the paper's algorithm).

use slaq_obs::Recorder;
use slaq_perfmodel::TransactionalModel;
use slaq_placement::problem::{AppRequest, JobRequest, PlacementConfig, PlacementProblem};
use slaq_placement::{
    DeltaStats, Placement, PlacementOutcome, ShardPlan, ShardedSolver, SolveDelta, SolveMode,
    Solver,
};
use slaq_sim::{ControlInputs, Controller, MetricsSink};
use slaq_types::{AppId, CpuMhz, EntityId};
use slaq_utility::{equalize_bisection, EqEntity, EqualizeOptions, UtilityOfCpu};

/// Tuning for [`UtilityController`].
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Equalizer tolerances.
    pub equalize: EqualizeOptions,
    /// Placement solver knobs (churn budget, eviction hysteresis).
    pub placement: PlacementConfig,
    /// Per-entity importance weights for **service differentiation**
    /// (the paper's abstract: "providing service differentiation based on
    /// high-level performance goals"). An entity with weight `w` is
    /// allowed only `1/w` of the common utility shortfall. Entities
    /// absent from the map weigh 1.0; with the map empty the controller
    /// uses plain (unweighted) utility equalization.
    pub importance: std::collections::BTreeMap<EntityId, f64>,
    /// Node partition handed to the placement engine. With the default
    /// [`ShardPlan::Single`] the controller keeps the exact global
    /// solver; any multi-shard plan switches it to the zone-partitioned
    /// [`ShardedSolver`].
    pub sharding: ShardPlan,
    /// Cross-shard migrations allowed per cycle when sharded (ignored by
    /// the global solver).
    pub rebalance_budget: usize,
    /// Placement engine mode: [`SolveMode::Batch`] recomputes every cycle
    /// from scratch; [`SolveMode::Delta`] keeps warm solver state and
    /// re-routes the allocation flow only around the cycle's dirty set,
    /// bit-identical to batch (the solver self-verifies every reuse).
    pub solve: SolveMode,
    /// MHz-per-warmth-point scale applied to the routing tier's per-node
    /// warmth scores before they enter the solver as candidate-ordering
    /// affinity bonuses. `0.0` (the default) forwards no affinity at
    /// all, keeping the solver's candidate ordering bit-identical to the
    /// affinity-free controller.
    pub affinity_bias: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            equalize: EqualizeOptions::default(),
            // Job priorities are CPU targets in MHz; identical jobs differ
            // by only a few MHz cycle-to-cycle, so a zero eviction gap
            // would let them evict each other endlessly (suspend/resume
            // ping-pong, each paying real latency). Require a ~10 %-of-a-
            // processor advantage before preempting.
            placement: PlacementConfig {
                evict_priority_gap: 300.0,
                ..PlacementConfig::default()
            },
            importance: std::collections::BTreeMap::new(),
            sharding: ShardPlan::Single,
            rebalance_budget: 8,
            solve: SolveMode::Batch,
            affinity_bias: 0.0,
        }
    }
}

/// The placement engine a controller drives: the exact global solver or
/// the zone-partitioned sharded engine (same interface, chosen from
/// [`ControllerConfig::sharding`]).
#[derive(Debug, Clone)]
enum PlacementEngine {
    /// One global solve per cycle (the paper's algorithm, bit for bit).
    Global(Box<Solver>),
    /// Per-shard parallel solves plus a cross-shard rebalance pass.
    Sharded(Box<ShardedSolver>),
}

impl Default for PlacementEngine {
    fn default() -> Self {
        PlacementEngine::Global(Box::new(Solver::new()))
    }
}

impl PlacementEngine {
    fn solve_with_delta(
        &mut self,
        problem: &PlacementProblem,
        prev: &Placement,
        delta: Option<&SolveDelta>,
    ) -> PlacementOutcome {
        match self {
            PlacementEngine::Global(s) => s.solve_with_delta(problem, prev, delta),
            PlacementEngine::Sharded(s) => s.solve_with_delta(problem, prev, delta),
        }
    }

    fn delta_stats(&self) -> DeltaStats {
        match self {
            PlacementEngine::Global(s) => s.delta_stats(),
            PlacementEngine::Sharded(s) => s.delta_stats(),
        }
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        match self {
            PlacementEngine::Global(s) => s.set_recorder(recorder),
            PlacementEngine::Sharded(s) => s.set_recorder(recorder),
        }
    }
}

/// The heterogeneous workload manager: utility equalization over *all*
/// entities followed by constrained placement.
#[derive(Debug, Clone, Default)]
pub struct UtilityController {
    /// Configuration in force.
    pub config: ControllerConfig,
    /// Long-lived placement engine: a global [`Solver`] or a
    /// [`ShardedSolver`], both reusing dense scratch and allocation flow
    /// networks across cycles (warm re-solve path).
    engine: PlacementEngine,
    /// Interned per-app metric keys: `control` runs every cycle for the
    /// life of the experiment, so the `format!` for each per-app series
    /// name is paid once here instead of once per cycle per app.
    pred_utility_keys: std::collections::BTreeMap<AppId, String>,
    /// Observability handle: the controller times its equalization phase
    /// (`control.equalize`) and forwards the recorder into the placement
    /// engine. Observes only — control decisions never read it.
    recorder: Recorder,
    k_equalize: slaq_obs::Key,
}

impl UtilityController {
    /// Controller with the given config. A non-[`ShardPlan::Single`]
    /// sharding plan selects the sharded placement engine.
    pub fn new(config: ControllerConfig) -> Self {
        let engine = match &config.sharding {
            ShardPlan::Single => PlacementEngine::Global(Box::new(Solver::with_mode(config.solve))),
            plan => PlacementEngine::Sharded(Box::new(
                ShardedSolver::new(plan.clone(), config.rebalance_budget).with_mode(config.solve),
            )),
        };
        UtilityController {
            config,
            engine,
            pred_utility_keys: std::collections::BTreeMap::new(),
            recorder: Recorder::off(),
            k_equalize: slaq_obs::Key::default(),
        }
    }

    /// `true` when placement runs through the sharded engine.
    pub fn is_sharded(&self) -> bool {
        matches!(self.engine, PlacementEngine::Sharded(_))
    }

    /// Fast-path diagnostics of the placement engine: how many solves
    /// rode the incremental re-flow vs. falling back to the full path.
    /// All zeros under [`SolveMode::Batch`]. Exposed as an accessor (not
    /// a metric series) so batch and delta runs record bit-identical
    /// metrics.
    pub fn delta_stats(&self) -> DeltaStats {
        self.engine.delta_stats()
    }
}

impl UtilityController {
    /// The control cycle body; `delta` is the advisory dirty-set hint
    /// threaded into the placement engine (ignored in batch mode).
    fn control_inner(
        &mut self,
        inputs: &ControlInputs<'_>,
        delta: Option<&SolveDelta>,
        metrics: &mut MetricsSink,
    ) -> Placement {
        let now = inputs.now;
        let total_cpu: CpuMhz = inputs.nodes.iter().map(|n| n.cpu).sum();
        let span_eq = self.recorder.span(self.k_equalize);

        // ------------------------------------------------------------
        // 1. Utility curves for every entity.
        // ------------------------------------------------------------
        let app_models: Vec<TransactionalModel> = inputs
            .apps
            .iter()
            .filter_map(|a| TransactionalModel::new(a.spec.clone(), a.lambda))
            .collect();
        let job_snapshots = inputs.jobs.entities(now);

        let mut entities: Vec<EqEntity<'_>> =
            Vec::with_capacity(app_models.len() + job_snapshots.len());
        for (model, obs) in app_models.iter().zip(inputs.apps) {
            entities.push(EqEntity::new(obs.id, model as &dyn UtilityOfCpu));
        }
        for (id, ju) in &job_snapshots {
            entities.push(EqEntity::new(*id, ju as &dyn UtilityOfCpu));
        }

        // ------------------------------------------------------------
        // 2. Equalize utility over the whole cluster's CPU power
        // (importance-weighted when differentiation is configured).
        // ------------------------------------------------------------
        let eq = if self.config.importance.is_empty() {
            equalize_bisection(&entities, total_cpu, &self.config.equalize)
        } else {
            let weights: Vec<f64> = entities
                .iter()
                .map(|e| self.config.importance.get(&e.id).copied().unwrap_or(1.0))
                .collect();
            slaq_utility::equalize_weighted(&entities, &weights, total_cpu, &self.config.equalize)
        };
        drop(span_eq);

        // Model-side series (Figures 1 & 2 inputs).
        let trans_demand: CpuMhz = app_models.iter().map(|m| m.max_useful_cpu()).sum();
        let jobs_demand: CpuMhz = job_snapshots
            .iter()
            .map(|(_, ju)| ju.max_useful_cpu())
            .sum();
        let mut trans_target = CpuMhz::ZERO;
        let mut jobs_target = CpuMhz::ZERO;
        let mut jobs_util_sum = 0.0;
        let mut jobs_n = 0usize;
        for a in &eq.allocations {
            match a.id {
                EntityId::App(_) => trans_target += a.cpu,
                EntityId::Job(_) => {
                    jobs_target += a.cpu;
                    jobs_util_sum += a.utility;
                    jobs_n += 1;
                }
            }
        }
        metrics.record("water_level", now, eq.common_utility);
        metrics.record("trans_demand", now, trans_demand.as_f64());
        metrics.record("jobs_demand", now, jobs_demand.as_f64());
        metrics.record("trans_target", now, trans_target.as_f64());
        metrics.record("jobs_target", now, jobs_target.as_f64());
        if jobs_n > 0 {
            metrics.record("jobs_hypo_utility", now, jobs_util_sum / jobs_n as f64);
        }
        for (model, obs) in app_models.iter().zip(inputs.apps) {
            if let Some(cpu) = eq.cpu_of(obs.id) {
                let key = self
                    .pred_utility_keys
                    .entry(obs.id)
                    .or_insert_with(|| format!("trans_pred_utility_{}", obs.id));
                metrics.record(key, now, model.utility(cpu));
            }
        }

        // ------------------------------------------------------------
        // 2b. Work-conserving backfill: surplus CPU (present only when
        // every entity is saturated) flows to SLA-hopeless jobs — flat
        // utility curves, zero equalized demand — so they still run to
        // completion instead of pending forever on an idle cluster.
        // ------------------------------------------------------------
        let mut surplus = eq.surplus;
        let mut backfill: std::collections::BTreeMap<slaq_types::JobId, CpuMhz> =
            std::collections::BTreeMap::new();
        if surplus.as_f64() > 1.0 {
            for (id, ju) in &job_snapshots {
                if surplus.as_f64() <= 1.0 {
                    break;
                }
                if eq.cpu_of(*id).is_none_or(|c| c.is_zero()) {
                    let grant = ju.max_speed.min(surplus);
                    if grant.as_f64() > 0.0 {
                        backfill.insert(*id, grant);
                        surplus -= grant;
                    }
                }
            }
        }

        // ------------------------------------------------------------
        // 3. Realize the targets as a placement.
        // ------------------------------------------------------------
        let apps: Vec<AppRequest> = inputs
            .apps
            .iter()
            .map(|a| AppRequest {
                id: a.id,
                demand: eq.cpu_of(a.id).unwrap_or(CpuMhz::ZERO),
                mem_per_instance: a.spec.mem_per_instance,
                min_instances: a.spec.min_instances,
                max_instances: a.spec.max_instances,
                // Warmth → candidate-ordering bonus, scaled to MHz. A
                // zero bias forwards nothing: the solver's affinity-free
                // path stays bit-identical.
                affinity: if self.config.affinity_bias > 0.0 && !a.affinity.is_empty() {
                    a.affinity
                        .iter()
                        .map(|&(n, w)| (n, w * self.config.affinity_bias))
                        .collect()
                } else {
                    Vec::new()
                },
            })
            .collect();
        let jobs: Vec<JobRequest> = inputs
            .jobs
            .jobs()
            .iter()
            .filter(|j| j.is_active())
            .map(|j| {
                let target = eq
                    .cpu_of(j.id)
                    .unwrap_or(CpuMhz::ZERO)
                    .max(backfill.get(&j.id).copied().unwrap_or(CpuMhz::ZERO));
                let weight = self
                    .config
                    .importance
                    .get(&EntityId::Job(j.id))
                    .copied()
                    .unwrap_or(1.0);
                JobRequest {
                    id: j.id,
                    demand: target.min(j.spec.max_speed),
                    mem: j.spec.mem,
                    running_on: match j.state {
                        slaq_jobs::JobState::Running { node } => Some(node),
                        _ => None,
                    },
                    affinity: j.state.node(),
                    // Urgency = the job's CPU target, scaled by its
                    // importance so differentiation also decides memory-
                    // slot contention; ties resolve to the oldest job
                    // (dense ids are submission-ordered).
                    priority: target.as_f64() * weight,
                }
            })
            .collect();

        let problem = PlacementProblem {
            nodes: inputs.nodes.to_vec(),
            apps,
            jobs,
            config: self.config.placement,
        };
        let outcome = self
            .engine
            .solve_with_delta(&problem, inputs.current, delta);
        metrics.record("placement_changes", now, outcome.changes.len() as f64);
        metrics.record("jobs_unplaced", now, outcome.unplaced_jobs.len() as f64);
        outcome.placement
    }
}

impl Controller for UtilityController {
    fn control(&mut self, inputs: &ControlInputs<'_>, metrics: &mut MetricsSink) -> Placement {
        self.control_inner(inputs, None, metrics)
    }

    fn control_delta(
        &mut self,
        inputs: &ControlInputs<'_>,
        delta: Option<&SolveDelta>,
        metrics: &mut MetricsSink,
    ) -> Placement {
        self.control_inner(inputs, delta, metrics)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.k_equalize = recorder.key("control.equalize");
        self.engine.set_recorder(recorder.clone());
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_jobs::JobSpec;
    use slaq_perfmodel::TransactionalSpec;
    use slaq_sim::{AppObservation, OverheadConfig, SimConfig, Simulator, TransactionalRuntime};
    use slaq_types::{AppId, ClusterSpec, JobId, MemMb, SimDuration, SimTime, Work};
    use slaq_utility::{CompletionGoal, ResponseTimeGoal};

    fn cluster(nodes: u32) -> ClusterSpec {
        ClusterSpec::homogeneous(nodes, 4, CpuMhz::new(3000.0), MemMb::new(4096))
    }

    fn app_spec(_unused: f64) -> TransactionalSpec {
        TransactionalSpec {
            name: "shop".into(),
            service_per_request: Work::new(2000.0),
            rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
            mem_per_instance: MemMb::new(1024),
            max_instances: 32,
            min_instances: 1,
            u_cap: 0.9,
        }
    }

    fn job_spec(work_secs: f64, submit: f64) -> JobSpec {
        JobSpec {
            name: format!("j@{submit}"),
            total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::from_secs(submit),
                SimDuration::from_secs(work_secs),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    fn quiet_config(horizon: f64) -> SimConfig {
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(horizon),
            overheads: OverheadConfig {
                start: SimDuration::ZERO,
                resume: SimDuration::ZERO,
                migrate: SimDuration::ZERO,
            },
            cap_transactional: false,
        }
    }

    #[test]
    fn jobs_only_cluster_runs_all_jobs() {
        let mut sim = Simulator::new(&cluster(2), quiet_config(4000.0));
        sim.add_arrivals(
            (0..6)
                .map(|_| (SimTime::ZERO, job_spec(1000.0, 0.0)))
                .collect(),
        );
        let report = sim.run(&mut UtilityController::default()).unwrap();
        assert_eq!(report.job_stats.completed, 6);
        assert_eq!(report.job_stats.goals_met, 6);
    }

    #[test]
    fn app_only_cluster_satisfies_demand() {
        let mut sim = Simulator::new(&cluster(2), quiet_config(2000.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(1.0), Box::new(|_| 5.0), 0.5)
                .unwrap(),
        );
        let report = sim.run(&mut UtilityController::default()).unwrap();
        // Demand for u_cap at λ=5: 5·2000 + 2000/(0.5·0.1) = 50 000; the
        // 24 000 cluster can't reach u_cap but must stay stable & positive.
        let u = report.metrics.last("trans_utility").unwrap();
        assert!(u > 0.5, "utility {u}");
        let alloc = report.metrics.last("trans_alloc").unwrap();
        assert!(alloc > 10_000.0, "allocation {alloc}");
    }

    #[test]
    fn contention_equalizes_utilities() {
        // Small cluster, one app + a stack of jobs: after a few cycles the
        // water level should pull the app's predicted utility and the
        // jobs' hypothetical utility together.
        let mut sim = Simulator::new(&cluster(3), quiet_config(6000.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(1.0), Box::new(|_| 6.0), 0.5)
                .unwrap(),
        );
        // 12 long jobs: 36 000 MHz of demand against 36 000 total.
        sim.add_arrivals(
            (0..12)
                .map(|_| (SimTime::ZERO, job_spec(8000.0, 0.0)))
                .collect(),
        );
        let report = sim.run(&mut UtilityController::default()).unwrap();
        let m = &report.metrics;
        let t_end = SimTime::from_secs(6000.0);
        let mid = SimTime::from_secs(1800.0);
        let u_app = m.mean_over("trans_pred_utility_app0", mid, t_end).unwrap();
        let u_jobs = m.mean_over("jobs_hypo_utility", mid, t_end).unwrap();
        assert!(
            (u_app - u_jobs).abs() < 0.15,
            "equalization gap too wide: app {u_app} vs jobs {u_jobs}"
        );
        // And the CPU split is uneven even though utilities match — the
        // equal-utility/unequal-MHz signature (Fig. 1 vs Fig. 2).
        let a_alloc = m.mean_over("trans_alloc", mid, t_end).unwrap();
        let j_alloc = m.mean_over("jobs_alloc", mid, t_end).unwrap();
        let rel_diff = (a_alloc - j_alloc).abs() / a_alloc.max(j_alloc);
        assert!(
            rel_diff > 0.15,
            "split should be uneven: jobs {j_alloc} vs app {a_alloc}"
        );
        assert!(a_alloc > 0.0 && j_alloc > 0.0);
    }

    #[test]
    fn idle_app_releases_cluster_to_jobs() {
        let mut sim = Simulator::new(&cluster(2), quiet_config(3000.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(1.0), Box::new(|_| 0.0), 0.5)
                .unwrap(),
        );
        sim.add_arrivals(
            (0..6)
                .map(|_| (SimTime::ZERO, job_spec(1000.0, 0.0)))
                .collect(),
        );
        let report = sim.run(&mut UtilityController::default()).unwrap();
        // All six finish; the sixth had to queue behind the five memory
        // slots (2 on the instance node + 3), so it cannot make its goal
        // — it completes through the work-conserving backfill instead.
        assert_eq!(report.job_stats.completed, 6);
        assert!(report.job_stats.goals_met >= 5);
    }

    #[test]
    fn recorded_series_are_present_and_sane() {
        let mut sim = Simulator::new(&cluster(2), quiet_config(2500.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(1.0), Box::new(|_| 4.0), 0.5)
                .unwrap(),
        );
        sim.add_arrivals(
            (0..3)
                .map(|_| (SimTime::ZERO, job_spec(2000.0, 0.0)))
                .collect(),
        );
        let report = sim.run(&mut UtilityController::default()).unwrap();
        for name in [
            "water_level",
            "trans_demand",
            "jobs_demand",
            "trans_target",
            "jobs_target",
            "jobs_hypo_utility",
            "trans_alloc",
            "jobs_alloc",
        ] {
            assert!(
                !report.metrics.series(name).is_empty(),
                "series {name} missing"
            );
        }
        // Targets never exceed cluster capacity.
        let total = 2.0 * 12_000.0;
        for &(_, v) in report.metrics.series("trans_target") {
            assert!(v <= total + 1.0);
        }
        let _ = AppObservation {
            id: AppId::new(0),
            spec: app_spec(1.0),
            lambda: 1.0,
            affinity: vec![],
        };
        let _ = JobId::new(0);
    }

    #[test]
    fn placement_is_stable_without_workload_change() {
        let mut sim = Simulator::new(&cluster(2), quiet_config(4000.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(1.0), Box::new(|_| 4.0), 0.5)
                .unwrap(),
        );
        sim.add_arrivals(
            (0..4)
                .map(|_| (SimTime::ZERO, job_spec(20_000.0, 0.0)))
                .collect(),
        );
        let report = sim.run(&mut UtilityController::default()).unwrap();
        // After the first cycle places everything, steady cycles must not
        // thrash: total changes ≈ initial placements.
        let changes = report.metrics.series("changes");
        let after_first: f64 = changes.iter().skip(2).map(|&(_, v)| v).sum();
        assert!(
            after_first <= 2.0,
            "steady-state churn detected: {changes:?}"
        );
    }
}
