//! Quickstart: a 4-node cluster running one web application and a batch
//! of jobs under the paper's utility-equalizing controller.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use slaq::prelude::*;

fn main() {
    // A small virtualized cluster: 4 nodes × 4 × 3000 MHz, 4 GB each.
    let cluster = ClusterSpec::homogeneous(4, 4, CpuMhz::new(3000.0), MemMb::new(4096));

    // One transactional application: 2000 MHz·s per request, 0.5 s
    // response-time goal, 1 GB per instance.
    let shop = TransactionalSpec {
        name: "shop".into(),
        service_per_request: Work::new(2000.0),
        rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
        mem_per_instance: MemMb::new(1024),
        max_instances: 4,
        min_instances: 1,
        u_cap: 0.9,
    };

    // Simulator: 600 s control cycles for 2 hours.
    let mut sim = Simulator::new(
        &cluster,
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(7200.0),
            overheads: OverheadConfig::default(),
            cap_transactional: false,
        },
    );
    sim.add_app(
        TransactionalRuntime::new(
            AppId::new(0),
            shop,
            Box::new(|_| 8.0), // constant 8 req/s
            0.4,
        )
        .unwrap(),
    );

    // Six identical batch jobs, each 40 minutes at one processor, with a
    // completion goal of 1.25× their fastest runtime.
    let jobs: Vec<(SimTime, JobSpec)> = (0..6)
        .map(|i| {
            let submit = SimTime::from_secs(i as f64 * 300.0);
            (
                submit,
                JobSpec {
                    name: format!("batch-{i}"),
                    total_work: Work::from_power_secs(CpuMhz::new(3000.0), 2400.0),
                    max_speed: CpuMhz::new(3000.0),
                    mem: MemMb::new(1280),
                    goal: CompletionGoal::relative(
                        submit,
                        SimDuration::from_secs(2400.0),
                        1.25,
                        2.0,
                    )
                    .unwrap(),
                },
            )
        })
        .collect();
    sim.add_arrivals(jobs);

    // Run the paper's controller.
    let report = sim.run(&mut UtilityController::default()).unwrap();

    println!("== quickstart ==");
    println!(
        "cycles: {}   placement changes: {}",
        report.cycles, report.total_changes
    );
    println!(
        "jobs: {} submitted, {} completed, {} met goals, mean achieved utility {:.3}",
        report.job_stats.submitted,
        report.job_stats.completed,
        report.job_stats.goals_met,
        report.job_stats.mean_achieved_utility,
    );
    if let Some(u) = report.metrics.last("trans_utility") {
        println!("transactional utility (final cycle): {u:.3}");
    }
    println!("\nseries recorded: {:?}", report.metrics.names());
}
