//! Minimal terminal line plots — enough to eyeball Figure 1/2 shapes
//! straight from `cargo run` without a plotting stack.

use slaq_types::fcmp;

/// Render one or more series as an ASCII chart of `width × height`
/// characters (plus axes). Each series gets its own glyph, in order:
/// `*`, `+`, `o`, `x`, `#`.
pub fn plot(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    const GLYPHS: [char; 5] = ['*', '+', 'o', 'x', '#'];
    let width = width.max(16);
    let height = height.max(4);

    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_min = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts.iter() {
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>10.2} |")
        } else if i == height - 1 {
            format!("{y_min:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<w$.0}{:>.0}\n",
        "",
        x_min,
        x_max,
        w = width.saturating_sub(6)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

/// Convenience: downsample a series to at most `n` evenly spaced points
/// (keeps plots readable for long runs).
pub fn downsample(pts: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if pts.len() <= n || n == 0 {
        return pts.to_vec();
    }
    let step = pts.len() as f64 / n as f64;
    (0..n)
        .map(|i| pts[((i as f64 * step) as usize).min(pts.len() - 1)])
        .collect()
}

/// Min/max/mean summary line for a series.
pub fn summary(name: &str, pts: &[(f64, f64)]) -> String {
    if pts.is_empty() {
        return format!("{name}: (empty)");
    }
    let min = pts.iter().map(|p| p.1).min_by(|a, b| fcmp(*a, *b)).unwrap();
    let max = pts.iter().map(|p| p.1).max_by(|a, b| fcmp(*a, *b)).unwrap();
    let mean = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
    format!(
        "{name}: min {min:.3}  mean {mean:.3}  max {max:.3}  ({} samples)",
        pts.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_renders_axes_and_glyphs() {
        let a: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64, (i as f64 / 10.0).sin()))
            .collect();
        let b: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 0.5)).collect();
        let out = plot(&[("sin", &a), ("flat", &b)], 60, 12);
        assert!(out.contains('*'));
        assert!(out.contains('+'));
        assert!(out.contains("sin"));
        assert!(out.contains("flat"));
        assert!(out.lines().count() >= 14);
    }

    #[test]
    fn empty_plot_is_graceful() {
        assert_eq!(plot(&[("x", &[])], 40, 10), "(no data)\n");
    }

    #[test]
    fn downsample_keeps_endpoints_spacing() {
        let pts: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, i as f64)).collect();
        let d = downsample(&pts, 100);
        assert_eq!(d.len(), 100);
        assert_eq!(d[0], (0.0, 0.0));
        let short = downsample(&pts[..5], 100);
        assert_eq!(short.len(), 5);
    }

    #[test]
    fn summary_formats() {
        let s = summary("u", &[(0.0, 0.2), (1.0, 0.4)]);
        assert!(s.contains("min 0.200"));
        assert!(s.contains("mean 0.300"));
        assert!(s.contains("max 0.400"));
        assert!(summary("e", &[]).contains("empty"));
    }
}
