//! Gates for the pipelined control plane (snapshot → solve → actuate):
//!
//! 1. **Zero latency ≡ synchronous, bit for bit, on every corpus
//!    preset.** `controller.pipeline = overlap { latency_cycles: 0 }`
//!    routes through the whole pipeline machinery — snapshot capture,
//!    worker dispatch, reconciliation — yet must reproduce the
//!    synchronous run exactly: every job statistic, every change count,
//!    every recorded metric sample. (Unit-level reconciliation
//!    differentials live in `crates/core/src/pipeline.rs`.)
//! 2. **Staleness stays affordable.** Acting on one-cycle-old snapshots
//!    must retain a pinned fraction of the synchronous run's satisfied
//!    CPU across the corpus — the honest-scale-claim gate the ROADMAP
//!    asks for before solves go truly concurrent.
//! 3. **Stale plans survive a hostile world.** Outage presets run under
//!    multi-cycle latency without tripping the simulator's enactment
//!    validation (which rejects placements of completed jobs and
//!    capacity violations outright).

use slaq::core::spec::{PipelineSpec, ScenarioSpec};
use slaq::sim::SimReport;
use slaq_experiments::sweeps::staleness_sweep;

/// Run a preset for `cycles` control cycles under the given pipeline
/// knob.
fn run_with(spec: &ScenarioSpec, pipeline: PipelineSpec, cycles: usize) -> SimReport {
    let mut spec = spec.clone();
    spec.controller.pipeline = pipeline;
    spec.timing.cap_to_cycles(cycles);
    spec.run()
        .unwrap_or_else(|e| panic!("{} ({pipeline:?}): {e}", spec.name))
}

#[test]
fn zero_latency_overlap_is_bit_identical_to_sync_on_every_preset() {
    for name in ScenarioSpec::preset_names() {
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let sync = run_with(&spec, PipelineSpec::Sync, 4);
        let piped = run_with(&spec, PipelineSpec::overlap(0), 4);

        assert_eq!(sync.cycles, piped.cycles, "{name}: cycle count");
        assert_eq!(
            sync.total_changes, piped.total_changes,
            "{name}: total changes"
        );
        let a = &sync.job_stats;
        let b = &piped.job_stats;
        assert_eq!(a.submitted, b.submitted, "{name}: submitted");
        assert_eq!(a.completed, b.completed, "{name}: completed");
        assert_eq!(a.goals_met, b.goals_met, "{name}: goals met");
        assert_eq!(a.disruptions, b.disruptions, "{name}: disruptions");

        // Every synchronous series reproduced sample for sample; the
        // pipelined run may add only its own `pipeline_*` series, and
        // must actually record them (solve latency + staleness are part
        // of the report contract).
        for series in sync.metrics.names() {
            assert_eq!(
                sync.metrics.series(series),
                piped.metrics.series(series),
                "{name}: series {series} diverged"
            );
        }
        for series in piped.metrics.names() {
            assert!(
                !sync.metrics.series(series).is_empty() || series.starts_with("pipeline_"),
                "{name}: unexpected extra series {series}"
            );
        }
        for series in ["pipeline_solve_micros", "pipeline_staleness_secs"] {
            assert!(
                !piped.metrics.series(series).is_empty(),
                "{name}: {series} missing from the pipelined report"
            );
        }
        // Zero latency means zero staleness, every cycle.
        assert!(
            piped
                .metrics
                .series("pipeline_staleness_secs")
                .iter()
                .all(|&(_, v)| v == 0.0),
            "{name}: zero-latency run reported staleness"
        );
    }
}

#[test]
fn one_cycle_staleness_retains_pinned_satisfied_cpu_on_the_corpus() {
    // The pinned staleness cost: enacting every plan one cycle late must
    // retain at least these fractions of the synchronous satisfied CPU
    // (trans_alloc + jobs_alloc summed over cycles) — ≥ 90 % in corpus
    // aggregate, and no single preset below 80 %. Tightening the
    // reconciliation may raise these; they must never sink below.
    const AGGREGATE_FLOOR: f64 = 0.90;
    const PER_PRESET_FLOOR: f64 = 0.80;

    let modes = [PipelineSpec::Sync, PipelineSpec::overlap(1)];
    let cells = staleness_sweep(&modes, Some(18)).expect("sweep runs");
    let mut sync_total = 0.0;
    let mut stale_total = 0.0;
    for pair in cells.chunks(2) {
        let (sync, stale) = (&pair[0], &pair[1]);
        assert_eq!(sync.scenario, stale.scenario);
        assert!(
            stale.satisfied_cpu >= PER_PRESET_FLOOR * sync.satisfied_cpu,
            "{}: stale {:.0} < {PER_PRESET_FLOOR} × sync {:.0}",
            sync.scenario,
            stale.satisfied_cpu,
            sync.satisfied_cpu
        );
        // The staleness the sweep reports is exactly one control period.
        assert!(
            stale.mean_staleness_secs > 0.0,
            "{}: staleness series missing",
            sync.scenario
        );
        sync_total += sync.satisfied_cpu;
        stale_total += stale.satisfied_cpu;
    }
    assert!(
        stale_total >= AGGREGATE_FLOOR * sync_total,
        "corpus aggregate: stale {stale_total:.0} < {AGGREGATE_FLOOR} × sync {sync_total:.0}"
    );
}

#[test]
fn stale_plans_survive_outages_and_completions() {
    // hetero-pool carries a planned node outage; running it at several
    // latencies to the full horizon forces stale plans to be reconciled
    // across the failure and the recovery. The simulator's `enact`
    // rejects (with an error) any placement naming a completed job, a
    // dead node's capacity, or an overcommitted node — so finishing at
    // all is the assertion.
    let spec = ScenarioSpec::preset("hetero-pool").expect("preset");
    for latency in [1u32, 2, 3] {
        let report = run_with(&spec, PipelineSpec::overlap(latency), 36);
        assert!(report.cycles >= 30, "latency {latency}: run truncated");
        assert!(
            report.job_stats.completed > 0,
            "latency {latency}: nothing completed"
        );
        // Staleness series reflect the configured latency once filled.
        let staleness = report.metrics.series("pipeline_staleness_secs");
        assert!(
            staleness
                .iter()
                .all(|&(_, v)| (v - latency as f64 * 600.0).abs() < 1e-6),
            "latency {latency}: unexpected staleness values"
        );
    }
}

#[test]
fn pipeline_warmup_keeps_placement_unchanged() {
    // With latency L, the first L control cycles enact no changes: the
    // pipeline is filling.
    let spec = ScenarioSpec::preset("paper-small").expect("preset");
    for latency in [1u32, 3] {
        let report = run_with(&spec, PipelineSpec::overlap(latency), 8);
        let changes = report.metrics.series("changes");
        for (i, &(_, v)) in changes.iter().take(latency as usize).enumerate() {
            assert_eq!(v, 0.0, "latency {latency}: changes at warmup cycle {i}");
        }
        // And the pipeline does start enacting afterwards.
        assert!(
            changes.iter().skip(latency as usize).any(|&(_, v)| v > 0.0),
            "latency {latency}: pipeline never enacted a plan"
        );
    }
}
