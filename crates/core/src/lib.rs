//! # slaq-core — the heterogeneous workload manager
//!
//! The paper's contribution, assembled from the substrate crates: a
//! controller that manages *transactional applications* (response-time
//! SLAs) and *long-running jobs* (completion-time SLAs) on the same
//! virtualized cluster by trading CPU between them through utility
//! functions.
//!
//! Each control cycle, [`UtilityController`]:
//!
//! 1. builds a monotone utility-of-CPU curve for every entity — each
//!    application from the queueing model (`slaq-perfmodel`), each active
//!    job from its projected completion time (`slaq-jobs`);
//! 2. **equalizes utility** across all entities over the cluster's total
//!    CPU power (`slaq-utility`) — stealing from the more satisfied to
//!    give to the less satisfied, exactly the paper's §2;
//! 3. realizes the resulting CPU targets as a concrete placement under
//!    memory/CPU constraints with bounded churn (`slaq-placement`),
//!    enacted via instance start/stop and job start/suspend/resume/migrate.
//!
//! The `baselines` module provides the two comparison controllers used by
//! experiment E3 (DESIGN.md): a transactional-first FCFS scheduler
//! without utility awareness, and a static cluster partitioning in the
//! spirit of the paper's reference \[6\].
//!
//! The `pipeline` module is the **pipelined control plane**: a
//! [`PipelinedController`] adapter that splits the cycle into snapshot →
//! solve → actuate stages, overlapping solves with simulation so a plan
//! computed from cycle *k*'s snapshot is enacted — reconciled against
//! the live world — at cycle *k + latency* (spec knob
//! `controller.pipeline`).
//!
//! Scenarios are **data**: the `spec` module defines the declarative,
//! serde-round-trippable [`ScenarioSpec`] (cluster pools, timing,
//! outages, apps with composable intensity traces, job streams with
//! composable arrival processes and template mixes, controller tuning)
//! plus a ≥6-preset corpus; the `scenario` module holds the materialized
//! [`Scenario`] form and the paper's [`scenario::PaperParams`], which is
//! now just the `"paper"` preset's parameter struct.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod controller;
pub mod pipeline;
pub mod scenario;
pub mod spec;

pub use baselines::{StaticPartitionController, TransactionalFirstController};
pub use controller::{ControllerConfig, UtilityController};
pub use pipeline::{
    reconcile, CompletedSolve, InlineSolveWorker, PipelinedController, ReconcileOutcome, SolveTask,
    SolveWorker,
};
pub use scenario::{Scenario, ScenarioApp};
pub use spec::{
    AppSpec, ClusterTopology, ControllerKind, ControllerSpec, JobStreamSpec, NodePoolSpec,
    ObserveSpec, OutageSpec, PipelineSpec, RoutingSpec, ScenarioSpec, ShardingSpec, TimingSpec,
};
