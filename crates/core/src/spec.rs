//! Declarative scenario specifications: a run as **data**.
//!
//! [`ScenarioSpec`] fully describes a simulation — cluster topology
//! (homogeneous and heterogeneous node pools), simulator timing/overheads
//! and planned outages, transactional applications with composable
//! intensity traces, job streams with composable arrival processes and
//! template mixes, and controller tuning — and round-trips through serde
//! JSON, so scenarios live in files and corpora instead of code.
//!
//! The pipeline is:
//!
//! ```text
//! ScenarioSpec ──validate()──▶ ok? ──materialize()──▶ Scenario ──build()──▶ Simulator
//!      ▲                                                │
//!      └── serde JSON (to_json / from_json) ────────────┘ run(…) ──▶ SimReport
//! ```
//!
//! [`ScenarioSpec::preset`] names the built-in corpus (≥ 6 scenarios:
//! the paper's experiment and its scaled variant, a heterogeneous pool,
//! diurnal and bursty/batch workloads, and a service-differentiation
//! mix); [`ScenarioSpec::corpus`] returns all of them for sweeps, benches
//! and the CI round-trip gate.

use crate::controller::ControllerConfig;
use crate::scenario::{Scenario, ScenarioApp};
use serde::{Deserialize, Serialize};
use slaq_perfmodel::TransactionalSpec;
use slaq_placement::problem::PlacementConfig;
use slaq_sim::{NodeOutage, OverheadConfig, SimConfig, SimReport};
use slaq_types::{
    ClusterSpec, CpuMhz, EntityId, JobId, MemMb, NodeId, Result, SimDuration, SimTime, SlaqError,
    Work,
};
use slaq_utility::ResponseTimeGoal;
use slaq_workloads::{ArrivalProcess, GeneratedJob, IntensityTrace, JobMix, JobTemplate};
use std::collections::BTreeMap;

/// A pool of identical nodes; a cluster is a list of pools, so one pool
/// is the homogeneous case and several pools are a heterogeneous fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePoolSpec {
    /// Number of identical nodes in this pool.
    pub count: u32,
    /// Processors per node.
    pub cpus_per_node: u32,
    /// Power of one processor.
    pub core_mhz: f64,
    /// Memory per node available to workload VMs.
    pub node_mem_mb: u64,
}

/// Cluster topology: ordered node pools; node ids are assigned
/// sequentially across pools.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// The pools, in node-id order.
    pub pools: Vec<NodePoolSpec>,
}

impl ClusterTopology {
    /// Single-pool (homogeneous) topology.
    pub fn homogeneous(count: u32, cpus_per_node: u32, core_mhz: f64, node_mem_mb: u64) -> Self {
        ClusterTopology {
            pools: vec![NodePoolSpec {
                count,
                cpus_per_node,
                core_mhz,
                node_mem_mb,
            }],
        }
    }

    /// Total node count across pools.
    pub fn node_count(&self) -> u32 {
        self.pools.iter().map(|p| p.count).sum()
    }

    /// Materialize the concrete [`ClusterSpec`].
    pub fn materialize(&self) -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for p in &self.pools {
            b = b.nodes(
                p.count,
                p.cpus_per_node,
                CpuMhz::new(p.core_mhz),
                MemMb::new(p.node_mem_mb),
            );
        }
        b.build()
    }

    fn validate(&self) -> Result<()> {
        if self.pools.is_empty() {
            return Err(SlaqError::spec("cluster", "topology has no nodes"));
        }
        for (i, p) in self.pools.iter().enumerate() {
            let section = format!("cluster.pools[{i}]");
            if p.count == 0 {
                return Err(SlaqError::spec(section, "pool count must be at least 1"));
            }
            if p.cpus_per_node == 0 {
                return Err(SlaqError::spec(section, "cpus_per_node must be at least 1"));
            }
            if !(p.core_mhz.is_finite() && p.core_mhz > 0.0) {
                return Err(SlaqError::spec(section, "core_mhz must be positive"));
            }
            if p.node_mem_mb == 0 {
                return Err(SlaqError::spec(section, "node_mem_mb must be positive"));
            }
        }
        Ok(())
    }
}

/// Simulator timing, placement-action overheads, and enforcement mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Controller invocation period (paper: 600 s).
    pub control_period_secs: f64,
    /// Experiment horizon (paper: 72 000 s).
    pub horizon_secs: f64,
    /// Cold-start latency of a pending job's VM.
    pub start_overhead_secs: f64,
    /// Resume latency of a suspended image.
    pub resume_overhead_secs: f64,
    /// Live-migration latency.
    pub migrate_overhead_secs: f64,
    /// Enforce transactional allocations as hypervisor limits (the
    /// paper's middleware behaviour).
    pub cap_transactional: bool,
}

impl Default for TimingSpec {
    fn default() -> Self {
        TimingSpec {
            control_period_secs: 600.0,
            horizon_secs: 72_000.0,
            start_overhead_secs: 30.0,
            resume_overhead_secs: 60.0,
            migrate_overhead_secs: 90.0,
            cap_transactional: true,
        }
    }
}

impl TimingSpec {
    /// The concrete simulator configuration.
    pub fn materialize(&self) -> SimConfig {
        SimConfig {
            control_period: SimDuration::from_secs(self.control_period_secs),
            horizon: SimTime::from_secs(self.horizon_secs),
            overheads: OverheadConfig {
                start: SimDuration::from_secs(self.start_overhead_secs),
                resume: SimDuration::from_secs(self.resume_overhead_secs),
                migrate: SimDuration::from_secs(self.migrate_overhead_secs),
            },
            cap_transactional: self.cap_transactional,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.control_period_secs.is_finite() && self.control_period_secs > 0.0) {
            return Err(SlaqError::spec("timing", "control period must be positive"));
        }
        if !(self.horizon_secs.is_finite() && self.horizon_secs > 0.0) {
            return Err(SlaqError::spec("timing", "horizon must be positive"));
        }
        for (name, v) in [
            ("start_overhead_secs", self.start_overhead_secs),
            ("resume_overhead_secs", self.resume_overhead_secs),
            ("migrate_overhead_secs", self.migrate_overhead_secs),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(SlaqError::spec(
                    "timing",
                    format!("{name} must be non-negative"),
                ));
            }
        }
        Ok(())
    }
}

/// One transactional application: static SLA parameters plus its
/// ground-truth intensity trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Report label.
    pub name: String,
    /// Ground-truth request intensity λ(t).
    pub trace: IntensityTrace,
    /// CPU work per request (MHz·s).
    pub service_mhz_s: f64,
    /// Response-time goal τ (seconds).
    pub rt_goal_secs: f64,
    /// Modeled maximum-utility level (must lie in (0, 1)).
    pub u_cap: f64,
    /// Memory footprint per instance.
    pub mem_mb: u64,
    /// Instances kept running even when idle.
    pub min_instances: u32,
    /// Cluster-size limit.
    pub max_instances: u32,
    /// EWMA smoothing of the online demand estimator (in (0, 1]).
    pub estimator_alpha: f64,
}

impl AppSpec {
    /// The static spec the performance model consumes.
    pub fn transactional_spec(&self) -> Result<TransactionalSpec> {
        let rt_goal = ResponseTimeGoal::new(SimDuration::from_secs(self.rt_goal_secs))
            .ok_or_else(|| SlaqError::spec(&self.name, "rt_goal_secs must be positive"))?;
        let spec = TransactionalSpec {
            name: self.name.clone(),
            service_per_request: Work::new(self.service_mhz_s),
            rt_goal,
            mem_per_instance: MemMb::new(self.mem_mb),
            max_instances: self.max_instances,
            min_instances: self.min_instances,
            u_cap: self.u_cap,
        };
        spec.validate()
            .map_err(|detail| SlaqError::spec(&self.name, detail))?;
        Ok(spec)
    }

    fn validate(&self, section: &str) -> Result<()> {
        self.transactional_spec().map_err(|e| relabel(e, section))?;
        self.trace
            .validate()
            .map_err(|detail| SlaqError::spec(section, detail))?;
        if !(self.estimator_alpha > 0.0 && self.estimator_alpha <= 1.0) {
            return Err(SlaqError::spec(
                section,
                "estimator_alpha must lie in (0, 1]",
            ));
        }
        Ok(())
    }
}

/// One job stream: an arrival process feeding a template mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStreamSpec {
    /// Report label.
    pub name: String,
    /// When jobs arrive.
    pub arrivals: ArrivalProcess,
    /// Cap on jobs submitted by this stream (the horizon truncates
    /// further).
    pub max_jobs: usize,
    /// What arrives.
    pub mix: JobMix,
    /// Added to the scenario seed so streams draw independent randomness.
    pub seed_offset: u64,
}

impl JobStreamSpec {
    fn validate(&self, section: &str) -> Result<()> {
        self.arrivals
            .validate()
            .map_err(|detail| SlaqError::spec(section, detail))?;
        self.mix
            .validate()
            .map_err(|detail| SlaqError::spec(section, detail))?;
        if self.max_jobs == 0 {
            return Err(SlaqError::spec(section, "max_jobs must be at least 1"));
        }
        Ok(())
    }
}

/// A planned node outage, by node index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    /// Failing node index (dense, across pools).
    pub node: u32,
    /// Failure instant.
    pub from_secs: f64,
    /// Recovery instant.
    pub to_secs: f64,
}

/// Controller tuning carried by the spec (the knobs experiments sweep).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerSpec {
    /// Cap on placement changes per cycle (`None` = unbounded).
    pub max_changes: Option<usize>,
    /// Eviction hysteresis (see [`PlacementConfig::evict_priority_gap`]).
    pub evict_priority_gap: f64,
}

impl Default for ControllerSpec {
    fn default() -> Self {
        let d = ControllerConfig::default();
        ControllerSpec {
            max_changes: d.placement.max_changes,
            evict_priority_gap: d.placement.evict_priority_gap,
        }
    }
}

/// A complete, declarative, serde-round-trippable description of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (also the report label).
    pub name: String,
    /// Master workload seed; streams offset it via their `seed_offset`.
    pub seed: u64,
    /// The cluster.
    pub cluster: ClusterTopology,
    /// Simulator timing and overheads.
    pub timing: TimingSpec,
    /// Controller tuning.
    pub controller: ControllerSpec,
    /// Transactional applications.
    pub apps: Vec<AppSpec>,
    /// Job streams.
    pub job_streams: Vec<JobStreamSpec>,
    /// Planned node outages (failure injection).
    pub outages: Vec<OutageSpec>,
}

/// Rewrite a nested spec error's section to the outer path.
fn relabel(e: SlaqError, section: &str) -> SlaqError {
    match e {
        SlaqError::Spec { detail, .. } => SlaqError::spec(section, detail),
        other => other,
    }
}

impl ScenarioSpec {
    /// Check every section; the error names the offending part.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(SlaqError::spec("name", "scenario name must be non-empty"));
        }
        self.cluster.validate()?;
        self.timing.validate()?;
        if !(self.controller.evict_priority_gap.is_finite()
            && self.controller.evict_priority_gap >= 0.0)
        {
            return Err(SlaqError::spec(
                "controller",
                "evict_priority_gap must be non-negative",
            ));
        }
        if self.apps.is_empty() && self.job_streams.is_empty() {
            return Err(SlaqError::spec(
                "workloads",
                "a scenario needs at least one app or job stream",
            ));
        }
        for (i, app) in self.apps.iter().enumerate() {
            app.validate(&format!("apps[{i}]"))?;
        }
        for (i, s) in self.job_streams.iter().enumerate() {
            s.validate(&format!("job_streams[{i}]"))?;
        }
        let nodes = self.cluster.node_count();
        for (i, o) in self.outages.iter().enumerate() {
            let section = format!("outages[{i}]");
            if o.node >= nodes {
                return Err(SlaqError::spec(
                    section,
                    format!("node {} out of range (cluster has {nodes})", o.node),
                ));
            }
            if !(o.from_secs.is_finite() && o.from_secs >= 0.0 && o.to_secs > o.from_secs) {
                return Err(SlaqError::spec(section, "outage window must be non-empty"));
            }
        }
        Ok(())
    }

    /// Validate and materialize the runnable [`Scenario`]: concrete
    /// cluster, generated job population (with per-job importance tiers
    /// folded into the controller config), and outage plan.
    pub fn materialize(&self) -> Result<Scenario> {
        self.validate()?;
        let cluster = self.cluster.materialize();
        let sim = self.timing.materialize();
        let horizon = sim.horizon;

        let mut apps = Vec::with_capacity(self.apps.len());
        for app in &self.apps {
            apps.push(ScenarioApp {
                spec: app.transactional_spec()?,
                trace: app.trace.clone(),
                estimator_alpha: app.estimator_alpha,
            });
        }

        // Generate all streams, then replicate the simulator's arrival
        // ordering (descending (time, name), popped from the back) so job
        // ids — assigned densely in submission order — can be mapped to
        // importance tiers here, before the simulator exists.
        let mut generated: Vec<GeneratedJob> = Vec::new();
        for stream in &self.job_streams {
            let arrival_seed = self.seed.wrapping_add(stream.seed_offset);
            let mix_seed = arrival_seed ^ 0x6a09_e667_f3bc_c909;
            let arrivals = stream
                .arrivals
                .stream(stream.max_jobs, horizon, arrival_seed);
            generated.extend(stream.mix.generate(&arrivals, mix_seed, generated.len()));
        }
        generated.sort_by(|a, b| {
            b.submit
                .total_cmp(a.submit)
                .then(b.spec.name.cmp(&a.spec.name))
        });
        let mut importance: BTreeMap<EntityId, f64> = BTreeMap::new();
        let mut jobs = Vec::with_capacity(generated.len());
        for (i, g) in generated.into_iter().rev().enumerate() {
            if g.importance != 1.0 {
                importance.insert(EntityId::Job(JobId::new(i as u32)), g.importance);
            }
            jobs.push((g.submit, g.spec));
        }

        let controller = ControllerConfig {
            placement: PlacementConfig {
                max_changes: self.controller.max_changes,
                evict_priority_gap: self.controller.evict_priority_gap,
                ..PlacementConfig::default()
            },
            importance,
            ..ControllerConfig::default()
        };

        let outages = self
            .outages
            .iter()
            .map(|o| NodeOutage {
                node: NodeId::new(o.node),
                from: SimTime::from_secs(o.from_secs),
                to: SimTime::from_secs(o.to_secs),
            })
            .collect();

        Ok(Scenario {
            name: self.name.clone(),
            cluster,
            sim,
            apps,
            jobs,
            outages,
            controller,
        })
    }

    /// Materialize, build, and run under the scenario's own controller.
    pub fn run(&self) -> Result<SimReport> {
        let scenario = self.materialize()?;
        let mut controller = scenario.controller();
        scenario.run(&mut controller)
    }

    /// Pretty JSON rendering of the spec.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| SlaqError::spec("json", e.to_string()))
    }

    /// Parse a spec from JSON text (then validate separately / on
    /// materialization).
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| SlaqError::spec("json", e.to_string()))
    }

    /// Names of the built-in corpus, in canonical order.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "paper",
            "paper-small",
            "hetero-pool",
            "diurnal",
            "bursty-batch",
            "differentiation-mix",
        ]
    }

    /// Look up a built-in preset by name.
    pub fn preset(name: &str) -> Option<ScenarioSpec> {
        match name {
            "paper" => Some(crate::scenario::PaperParams::default().spec_named("paper")),
            "paper-small" => Some(crate::scenario::PaperParams::small().spec_named("paper-small")),
            "hetero-pool" => Some(hetero_pool()),
            "diurnal" => Some(diurnal()),
            "bursty-batch" => Some(bursty_batch()),
            "differentiation-mix" => Some(differentiation_mix()),
            _ => None,
        }
    }

    /// The full built-in corpus.
    pub fn corpus() -> Vec<ScenarioSpec> {
        Self::preset_names()
            .iter()
            .map(|n| Self::preset(n).expect("corpus names are exhaustive"))
            .collect()
    }
}

fn batch_template(prefix: &str, work_secs: f64, mem_mb: u64) -> JobTemplate {
    JobTemplate {
        name_prefix: prefix.into(),
        work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
        max_speed: CpuMhz::new(3000.0),
        mem: MemMb::new(mem_mb),
        goal_factor: 1.25,
        exhausted_factor: 3.0,
    }
}

fn small_app(name: &str, trace: IntensityTrace, max_instances: u32) -> AppSpec {
    AppSpec {
        name: name.into(),
        trace,
        service_mhz_s: 720.0,
        rt_goal_secs: 0.5,
        u_cap: 0.9,
        mem_mb: 1024,
        min_instances: 1,
        max_instances,
        estimator_alpha: 0.4,
    }
}

/// Heterogeneous fleet: fat high-memory nodes next to the paper's 4-way
/// boxes and a pair of fast 2-way machines, with one planned outage —
/// the regime DRAPS targets, where per-node headroom differs.
fn hetero_pool() -> ScenarioSpec {
    ScenarioSpec {
        name: "hetero-pool".into(),
        seed: 8,
        cluster: ClusterTopology {
            pools: vec![
                NodePoolSpec {
                    count: 4,
                    cpus_per_node: 4,
                    core_mhz: 3000.0,
                    node_mem_mb: 4096,
                },
                NodePoolSpec {
                    count: 2,
                    cpus_per_node: 8,
                    core_mhz: 2400.0,
                    node_mem_mb: 16_384,
                },
                NodePoolSpec {
                    count: 2,
                    cpus_per_node: 2,
                    core_mhz: 3600.0,
                    node_mem_mb: 2048,
                },
            ],
        },
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("webfront", IntensityTrace::constant(24.0), 8)],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(220.0).expect("positive mean"),
            max_jobs: 160,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![OutageSpec {
            node: 0,
            from_secs: 9000.0,
            to_secs: 13_000.0,
        }],
    }
}

/// Diurnal + flash-crowd transactional demand over a small cluster: the
/// composed trace peaks where placement must steal CPU back from jobs.
fn diurnal() -> ScenarioSpec {
    ScenarioSpec {
        name: "diurnal".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 24_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app(
            "storefront",
            IntensityTrace::Sum {
                parts: vec![
                    IntensityTrace::Diurnal {
                        base: 16.0,
                        amplitude: 12.0,
                        period_secs: 24_000.0,
                        phase_secs: 0.0,
                    },
                    IntensityTrace::Spiky {
                        base: 0.0,
                        surge: 18.0,
                        period_secs: 8000.0,
                        spike_secs: 900.0,
                        phase_secs: 2000.0,
                    },
                ],
            },
            6,
        )],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(300.0).expect("positive mean"),
            max_jobs: 70,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
    }
}

/// Bursty ON–OFF submissions riding over nightly batch drops — the
/// MORPHOSYS-style periodic/bursty colocation regime.
fn bursty_batch() -> ScenarioSpec {
    ScenarioSpec {
        name: "bursty-batch".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("portal", IntensityTrace::constant(10.0), 6)],
        job_streams: vec![
            JobStreamSpec {
                name: "bursts".into(),
                arrivals: ArrivalProcess::OnOff {
                    on_secs: 1200.0,
                    off_secs: 2400.0,
                    on_mean_interarrival_secs: 110.0,
                    off_mean_interarrival_secs: None,
                },
                max_jobs: 90,
                mix: JobMix::uniform(batch_template("burst", 2500.0, 1280)),
                seed_offset: 0,
            },
            JobStreamSpec {
                name: "nightly".into(),
                arrivals: ArrivalProcess::BatchDrops {
                    first_secs: 3000.0,
                    period_secs: 7000.0,
                    batch_size: 8,
                },
                max_jobs: 24,
                mix: JobMix::uniform(batch_template("nightly", 5000.0, 1280)),
                seed_offset: 1,
            },
        ],
        outages: vec![],
    }
}

/// Differentiated importance tiers over a short/long × small/large job
/// mixture: gold jobs may take only half the utility shortfall of
/// standard ones.
fn differentiation_mix() -> ScenarioSpec {
    ScenarioSpec {
        name: "differentiation-mix".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(4, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 18_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("checkout", IntensityTrace::constant(12.0), 4)],
        job_streams: vec![JobStreamSpec {
            name: "tiers".into(),
            arrivals: ArrivalProcess::poisson_constant(210.0).expect("positive mean"),
            max_jobs: 70,
            mix: JobMix {
                classes: vec![
                    slaq_workloads::TemplateClass {
                        template: batch_template("gold-short", 1800.0, 512),
                        weight: 2.0,
                        importance: 2.0,
                    },
                    slaq_workloads::TemplateClass {
                        template: batch_template("std-mid", 3600.0, 1280),
                        weight: 2.0,
                        importance: 1.0,
                    },
                    slaq_workloads::TemplateClass {
                        template: batch_template("std-long-big", 7200.0, 2048),
                        weight: 1.0,
                        importance: 1.0,
                    },
                ],
            },
            seed_offset: 0,
        }],
        outages: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_named_presets() {
        let corpus = ScenarioSpec::corpus();
        assert_eq!(corpus.len(), ScenarioSpec::preset_names().len());
        assert!(corpus.len() >= 6);
        for (spec, name) in corpus.iter().zip(ScenarioSpec::preset_names()) {
            assert_eq!(&spec.name, name);
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(ScenarioSpec::preset("no-such-scenario").is_none());
    }

    // JSON round-trip coverage lives in tests/scenario_corpus.rs (the CI
    // corpus gate), which also asserts the serialization fixed point.

    #[test]
    fn every_preset_materializes() {
        for spec in ScenarioSpec::corpus() {
            let scenario = spec
                .materialize()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(scenario.cluster.len() as u32, spec.cluster.node_count());
            assert!(!scenario.jobs.is_empty(), "{}: no jobs", spec.name);
            // Arrivals sorted and inside the horizon.
            assert!(scenario.jobs.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(scenario
                .jobs
                .iter()
                .all(|(t, _)| t.as_secs() <= spec.timing.horizon_secs));
        }
    }

    #[test]
    fn validation_pinpoints_the_offending_section() {
        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.apps[0].u_cap = 1.5;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("apps[0]"), "{e}");

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.cluster.pools[0].count = 0;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("cluster.pools[0]"), "{e}");

        let mut s = ScenarioSpec::preset("hetero-pool").unwrap();
        s.outages[0].node = 99;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("outages[0]"), "{e}");

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.job_streams[0].max_jobs = 0;
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.apps.clear();
        s.job_streams.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn hetero_pool_materializes_all_pools_and_outage() {
        let spec = ScenarioSpec::preset("hetero-pool").unwrap();
        let scenario = spec.materialize().unwrap();
        assert_eq!(scenario.cluster.len(), 8);
        // Pool boundaries: node 4 is a fat box, node 6 a fast 2-way.
        let n4 = scenario.cluster.node(NodeId::new(4)).unwrap();
        assert_eq!(n4.num_cpus, 8);
        assert_eq!(n4.mem, MemMb::new(16_384));
        let n6 = scenario.cluster.node(NodeId::new(6)).unwrap();
        assert_eq!(n6.cpu_per_core, CpuMhz::new(3600.0));
        assert_eq!(scenario.outages.len(), 1);
        assert_eq!(scenario.outages[0].node, NodeId::new(0));
    }

    #[test]
    fn differentiation_mix_wires_importance_into_controller_config() {
        let spec = ScenarioSpec::preset("differentiation-mix").unwrap();
        let scenario = spec.materialize().unwrap();
        assert!(
            !scenario.controller.importance.is_empty(),
            "gold tier must surface as importance weights"
        );
        // Every weighted entity is a job with weight 2.0 (the gold tier),
        // and the weighted ids correspond to gold-short jobs by name.
        let gold_jobs: Vec<usize> = scenario
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| s.name.starts_with("gold-short"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gold_jobs.len(), scenario.controller.importance.len());
        for i in &gold_jobs {
            let w = scenario
                .controller
                .importance
                .get(&EntityId::Job(JobId::new(*i as u32)))
                .copied();
            assert_eq!(w, Some(2.0), "job {i} should be gold-weighted");
        }
    }

    #[test]
    fn spec_horizon_is_data_not_code() {
        // Truncating the horizon is a field write — the property sweeps
        // and benches rely on.
        let mut spec = ScenarioSpec::preset("paper-small").unwrap();
        spec.timing.horizon_secs = 1200.0;
        let scenario = spec.materialize().unwrap();
        assert!(scenario.jobs.iter().all(|(t, _)| t.as_secs() <= 1200.0));
    }
}
