//! Runnable scenarios and the paper's experiment parameters.
//!
//! A [`Scenario`] is the *materialized* form of a declarative
//! [`crate::spec::ScenarioSpec`]: concrete cluster, simulator config,
//! application runtimes, a fully generated job stream, an outage plan,
//! and the controller configuration (including service-differentiation
//! importance derived from the job mix). [`Scenario::build`] validates
//! and assembles the simulator — it is fallible, returning
//! [`SlaqError`] rather than panicking on an inconsistent app spec.
//!
//! [`PaperParams`] keeps the HPDC'08 experiment's knobs as a plain
//! struct — a 25-node cluster of four-processor machines, a constant
//! transactional workload, and up to 800 identical jobs with mean
//! spacing 260 s over a ~72 000 s horizon — and lowers them onto the
//! spec API via [`PaperParams::spec_named`]; the `"paper"` and
//! `"paper-small"` corpus presets are exactly these parameters. Sweeps
//! mutate the struct, everything downstream goes through the spec.

use crate::baselines::{StaticPartitionController, TransactionalFirstController};
use crate::controller::{ControllerConfig, UtilityController};
use crate::pipeline::PipelinedController;
use crate::spec::{
    AppSpec, ClusterTopology, ControllerKind, ControllerSpec, JobStreamSpec, ObserveSpec,
    PipelineSpec, ScenarioSpec, TimingSpec,
};
use slaq_jobs::JobSpec;
use slaq_perfmodel::TransactionalSpec;
use slaq_sim::{Controller, NodeOutage, SimConfig, SimReport, Simulator, TransactionalRuntime};
use slaq_types::{
    AppId, ClusterSpec, CpuMhz, MemMb, Result, SimDuration, SimTime, SlaqError, Work,
};
use slaq_utility::ResponseTimeGoal;
use slaq_workloads::{ArrivalProcess, IntensityTrace, JobMix, JobTemplate, RateSchedule};

/// One transactional application in a scenario.
pub struct ScenarioApp {
    /// Static spec.
    pub spec: TransactionalSpec,
    /// Ground-truth intensity trace.
    pub trace: IntensityTrace,
    /// EWMA smoothing for the demand estimator.
    pub estimator_alpha: f64,
    /// Optional service-level objective; apps without one are tracked
    /// against [`slaq_obs::SloSpec::default`] when observability is on.
    pub slo: Option<slaq_obs::SloSpec>,
}

/// A complete simulation scenario: cluster + timing + workloads +
/// controller configuration.
pub struct Scenario {
    /// Label used in reports.
    pub name: String,
    /// The spec's master seed, carried through for the seeded runtime
    /// models (overbooking bites, elasticity resize draws).
    pub seed: u64,
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Simulator timing and overheads.
    pub sim: SimConfig,
    /// Transactional applications.
    pub apps: Vec<ScenarioApp>,
    /// Job arrival stream.
    pub jobs: Vec<(SimTime, JobSpec)>,
    /// Planned node outages.
    pub outages: Vec<NodeOutage>,
    /// Partial-capacity windows from the lowered chaos plan.
    pub dips: Vec<slaq_sim::CapacityDip>,
    /// Overbooking model to install on the simulator.
    pub overcommit: Option<slaq_sim::OvercommitSpec>,
    /// Vertical-elasticity model to install on the simulator.
    pub elasticity: Option<slaq_sim::ElasticitySpec>,
    /// Controller configuration (placement knobs, sharding plan, and
    /// importance tiers from the job mix).
    pub controller: ControllerConfig,
    /// Which controller runs this scenario (`utility` | `fcfs` |
    /// `static`), named in the spec.
    pub kind: ControllerKind,
    /// Control-plane scheduling: synchronous solves, or the pipelined
    /// snapshot → solve → actuate plane enacting each plan
    /// `latency_cycles` after its snapshot.
    pub pipeline: PipelineSpec,
    /// Request-level routing tier to install on the simulator, lowered
    /// from [`crate::RoutingSpec`] (`None` = no tier, bit-identical to
    /// pre-routing runs).
    pub routing: Option<slaq_routing::RouterConfig>,
    /// Observability plane: `On` installs an enabled
    /// [`slaq_obs::Recorder`] on the simulator at build time (spans,
    /// counters, histograms for post-run export); metric series stay
    /// bit-identical either way.
    pub observe: ObserveSpec,
}

impl Scenario {
    /// Materialize a simulator for this scenario. Fails with
    /// [`SlaqError::InvalidSpec`] if an application spec is inconsistent
    /// (spec-built scenarios are pre-validated; hand-built ones are
    /// checked here).
    pub fn build(&self) -> Result<Simulator> {
        let mut sim = Simulator::new(&self.cluster, self.sim);
        for (i, app) in self.apps.iter().enumerate() {
            let trace = app.trace.clone();
            let runtime = TransactionalRuntime::new(
                AppId::new(i as u32),
                app.spec.clone(),
                Box::new(move |t| trace.lambda(t)),
                app.estimator_alpha,
            )
            .ok_or_else(|| {
                SlaqError::InvalidSpec(format!(
                    "app {} ({}): invalid transactional spec or estimator alpha",
                    i, app.spec.name
                ))
            })?;
            sim.add_app(runtime);
        }
        sim.add_arrivals(self.jobs.clone());
        for o in &self.outages {
            sim.add_outage(*o);
        }
        for d in &self.dips {
            sim.add_capacity_dip(*d);
        }
        if let Some(oc) = self.overcommit {
            sim.set_overcommit(self.seed, oc);
        }
        if let Some(el) = self.elasticity {
            sim.set_elasticity(self.seed, el);
        }
        if let Some(cfg) = self.routing {
            sim.set_routing(slaq_routing::RoutingTier::new(cfg));
        }
        if self.observe.is_on() {
            sim.set_recorder(slaq_obs::Recorder::enabled());
            // Register every app on the SLO board (explicit spec or the
            // default objective) so compliance is tracked corpus-wide.
            for (i, app) in self.apps.iter().enumerate() {
                sim.register_slo(
                    AppId::new(i as u32),
                    &app.spec.name,
                    app.slo.unwrap_or_default(),
                );
            }
        }
        sim.set_change_budget(self.controller.placement.max_changes);
        Ok(sim)
    }

    /// The scenario's own controller: the spec-named kind (`utility` |
    /// `fcfs` | `static`), carrying the spec's placement knobs and — for
    /// the utility controller — its sharding plan and importance tiers.
    /// Under a `controller.pipeline = overlap` spec the kind-controller
    /// comes back wrapped in the pipelined control plane
    /// ([`PipelinedController`]), so its solves overlap the simulation
    /// and land `latency_cycles` after their snapshot.
    pub fn controller(&self) -> Box<dyn Controller> {
        let inner: Box<dyn Controller> = match self.kind {
            ControllerKind::Utility => Box::new(UtilityController::new(self.controller.clone())),
            ControllerKind::Fcfs => Box::new(TransactionalFirstController {
                placement: self.controller.placement,
            }),
            ControllerKind::Static { trans_fraction } => Box::new(StaticPartitionController {
                trans_fraction,
                placement: self.controller.placement,
            }),
        };
        match self.pipeline {
            PipelineSpec::Sync => inner,
            PipelineSpec::Overlap {
                latency_cycles,
                supersede,
            } => Box::new(
                PipelinedController::new(
                    inner,
                    latency_cycles,
                    self.controller.placement.max_changes,
                )
                .with_supersede(supersede),
            ),
        }
    }

    /// The scenario's configuration lowered onto the paper's utility
    /// controller, regardless of [`Scenario::kind`] — for callers that
    /// need the concrete type (warm-solver benchmarks, engine probes).
    pub fn utility_controller(&self) -> UtilityController {
        UtilityController::new(self.controller.clone())
    }

    /// Build and run under `controller`.
    pub fn run(&self, controller: &mut dyn Controller) -> Result<SimReport> {
        self.build()?.run(controller)
    }
}

/// Parameters of the paper's experiment, exposed for sweeps and the
/// scaled-down variants used in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperParams {
    /// Number of nodes (paper: 25).
    pub nodes: u32,
    /// Processors per node (paper: 4).
    pub cpus_per_node: u32,
    /// Power of one processor.
    pub core_mhz: f64,
    /// Node memory. 4096 MB with 1280 MB jobs gives the paper's
    /// three-jobs-per-node constraint.
    pub node_mem_mb: u64,
    /// Transactional arrival rate (req/s), constant through the run.
    pub lambda: f64,
    /// CPU work per request (MHz·s).
    pub service_mhz_s: f64,
    /// Response-time goal τ (seconds).
    pub rt_goal_secs: f64,
    /// Modeled maximum-utility level for demand purposes.
    pub u_cap: f64,
    /// Instance memory footprint.
    pub app_mem_mb: u64,
    /// Job runtime at full speed (seconds); work = core_mhz × this.
    pub job_work_secs: f64,
    /// Job VM memory footprint.
    pub job_mem_mb: u64,
    /// Completion goal at this multiple of the fastest runtime.
    pub goal_factor: f64,
    /// Utility floor at this multiple of the fastest runtime.
    pub exhausted_factor: f64,
    /// Maximum jobs submitted (paper: 800; the horizon truncates).
    pub total_jobs: usize,
    /// Mean inter-arrival time (paper: 260 s).
    pub mean_interarrival_secs: f64,
    /// Instant at which the submission rate drops ("at the end of the
    /// experiment the job submission rate is slightly decreased").
    pub tail_start_secs: f64,
    /// Mean inter-arrival time after the drop.
    pub tail_interarrival_secs: f64,
    /// Experiment horizon.
    pub horizon_secs: f64,
    /// Control cycle (paper: 600 s).
    pub control_period_secs: f64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            nodes: 25,
            cpus_per_node: 4,
            core_mhz: 3000.0,
            node_mem_mb: 4096,
            // λ·c = 78 000 MHz of raw offered load plus 60 000 MHz of
            // response-time headroom at u_cap: a max-utility demand of
            // ~138 000 MHz (46 % of the cluster), most of it squeezable —
            // the proportion Figure 2's transactional curves exhibit.
            lambda: 26.0,
            service_mhz_s: 3000.0,
            rt_goal_secs: 0.5,
            u_cap: 0.9,
            app_mem_mb: 1024,
            job_work_secs: 16_200.0, // 4.5 h at one processor
            job_mem_mb: 1280,
            goal_factor: 1.25,
            exhausted_factor: 3.0,
            total_jobs: 800,
            mean_interarrival_secs: 260.0,
            tail_start_secs: 50_000.0,
            tail_interarrival_secs: 520.0,
            horizon_secs: 72_000.0,
            control_period_secs: 600.0,
            // Arbitrary workload-stream seed, chosen so the scaled-down
            // scenario exhibits the paper's crossover→equalize→recover
            // shape with comfortable margins under the in-tree ChaCha12
            // stream (the offline stand-in's keystream differs from the
            // upstream rand_chacha crate's).
            seed: 8,
        }
    }
}

impl PaperParams {
    /// A ~4× smaller variant (nodes, traffic, job length, horizon) that
    /// preserves the experiment's *proportions* — job work-arrival rate ≈
    /// 62 % of cluster power and transactional max-utility demand ≈ 47 %,
    /// i.e. the same ~109 % aggregate pressure as the full setup — so the
    /// crossover→equalization→recovery shape survives the scaling. Used
    /// by tests and smoke benches where the full run would be wasteful.
    pub fn small() -> Self {
        PaperParams {
            nodes: 6,
            lambda: 27.0,
            service_mhz_s: 720.0,
            job_work_secs: 4000.0,
            total_jobs: 200,
            mean_interarrival_secs: 240.0,
            tail_start_secs: 11_000.0,
            tail_interarrival_secs: 800.0,
            horizon_secs: 22_000.0,
            ..Default::default()
        }
    }

    /// Total cluster CPU power.
    pub fn total_cpu(&self) -> CpuMhz {
        CpuMhz::new(self.nodes as f64 * self.cpus_per_node as f64 * self.core_mhz)
    }

    /// The transactional application spec.
    pub fn app_spec(&self) -> TransactionalSpec {
        TransactionalSpec {
            name: "transactional".into(),
            service_per_request: Work::new(self.service_mhz_s),
            rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(self.rt_goal_secs))
                .expect("positive goal"),
            mem_per_instance: MemMb::new(self.app_mem_mb),
            max_instances: self.nodes,
            min_instances: 1,
            u_cap: self.u_cap,
        }
    }

    /// The job template.
    pub fn job_template(&self) -> JobTemplate {
        JobTemplate {
            name_prefix: "batch".into(),
            work: Work::from_power_secs(CpuMhz::new(self.core_mhz), self.job_work_secs),
            max_speed: CpuMhz::new(self.core_mhz),
            mem: MemMb::new(self.job_mem_mb),
            goal_factor: self.goal_factor,
            exhausted_factor: self.exhausted_factor,
        }
    }

    /// Lower these parameters onto the declarative spec API. The
    /// resulting spec reproduces the PR-1 experiment bit-identically: a
    /// single-class mix over a two-segment Poisson schedule draws the
    /// exact same ChaCha12 stream as the original generator.
    pub fn spec_named(&self, name: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            seed: self.seed,
            cluster: ClusterTopology::homogeneous(
                self.nodes,
                self.cpus_per_node,
                self.core_mhz,
                self.node_mem_mb,
            ),
            timing: TimingSpec {
                control_period_secs: self.control_period_secs,
                horizon_secs: self.horizon_secs,
                // The authors' middleware enforces the computed
                // allocations; without limits, work-conserving spare
                // masks the squeeze that Figure 1 shows.
                cap_transactional: true,
                ..TimingSpec::default()
            },
            controller: ControllerSpec::default(),
            apps: vec![AppSpec {
                name: "transactional".into(),
                trace: IntensityTrace::constant(self.lambda),
                service_mhz_s: self.service_mhz_s,
                rt_goal_secs: self.rt_goal_secs,
                u_cap: self.u_cap,
                mem_mb: self.app_mem_mb,
                min_instances: 1,
                max_instances: self.nodes,
                estimator_alpha: 0.4,
                slo: None,
            }],
            job_streams: vec![JobStreamSpec {
                name: "batch".into(),
                arrivals: ArrivalProcess::Poisson {
                    schedule: RateSchedule::new(vec![
                        (SimTime::ZERO, self.mean_interarrival_secs),
                        (
                            SimTime::from_secs(self.tail_start_secs),
                            self.tail_interarrival_secs,
                        ),
                    ])
                    .expect("valid schedule"),
                },
                max_jobs: self.total_jobs,
                mix: JobMix::uniform(self.job_template()),
                seed_offset: 0,
            }],
            outages: vec![],
            chaos: None,
            overcommit: None,
            elasticity: None,
        }
    }

    /// The spec form under the canonical `"paper"` name.
    pub fn spec(&self) -> ScenarioSpec {
        self.spec_named("paper")
    }

    /// Assemble the full scenario (via the spec pipeline).
    pub fn scenario(&self) -> Scenario {
        self.spec()
            .materialize()
            .expect("paper parameters are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::UtilityController;
    use slaq_workloads::generate_job_stream;

    #[test]
    fn paper_params_match_the_paper() {
        let p = PaperParams::default();
        assert_eq!(p.nodes, 25);
        assert_eq!(p.cpus_per_node, 4);
        assert_eq!(p.total_jobs, 800);
        assert_eq!(p.mean_interarrival_secs, 260.0);
        assert_eq!(p.control_period_secs, 600.0);
        assert_eq!(p.total_cpu(), CpuMhz::new(300_000.0));
        // Three jobs per node by memory.
        assert_eq!(p.node_mem_mb / p.job_mem_mb, 3);
    }

    #[test]
    fn scenario_assembles_consistently() {
        let p = PaperParams::default();
        let s = p.scenario();
        assert_eq!(s.cluster.len(), 25);
        assert_eq!(s.apps.len(), 1);
        assert!(!s.jobs.is_empty());
        // Arrival stream fits the horizon and arrives sorted.
        assert!(s.jobs.iter().all(|(t, _)| t.as_secs() <= p.horizon_secs));
        assert!(s.jobs.windows(2).all(|w| w[0].0 <= w[1].0));
        // Identical jobs.
        let w0 = s.jobs[0].1.total_work;
        assert!(s.jobs.iter().all(|(_, j)| j.total_work == w0));
    }

    #[test]
    fn spec_pipeline_reproduces_the_legacy_stream_bit_identically() {
        // The PR-1 generator and the spec pipeline must agree on every
        // submission instant and every job name, or the Figure 1/2
        // regression corpus silently shifts.
        let p = PaperParams::small();
        let schedule = RateSchedule::new(vec![
            (SimTime::ZERO, p.mean_interarrival_secs),
            (
                SimTime::from_secs(p.tail_start_secs),
                p.tail_interarrival_secs,
            ),
        ])
        .unwrap();
        let legacy = generate_job_stream(
            &p.job_template(),
            schedule,
            p.total_jobs,
            SimTime::from_secs(p.horizon_secs),
            p.seed,
        );
        let via_spec = p.scenario().jobs;
        assert_eq!(legacy.len(), via_spec.len());
        for (a, b) in legacy.iter().zip(&via_spec) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.name, b.1.name);
            assert_eq!(a.1.goal, b.1.goal);
        }
    }

    #[test]
    fn hand_built_scenario_with_bad_app_fails_to_build() {
        let p = PaperParams::small();
        let mut s = p.scenario();
        s.apps[0].spec.u_cap = 2.0; // invalid: must be < 1
        let err = match s.build() {
            Err(e) => e,
            Ok(_) => panic!("invalid app spec must not build"),
        };
        assert!(
            matches!(err, SlaqError::InvalidSpec(_)),
            "expected InvalidSpec, got {err}"
        );
        // And `run` propagates instead of panicking.
        assert!(s.run(&mut UtilityController::default()).is_err());
    }

    #[test]
    fn small_scenario_runs_end_to_end_with_the_paper_controller() {
        let s = PaperParams::small().scenario();
        let report = s.run(&mut UtilityController::default()).unwrap();
        assert!(report.cycles >= 25, "cycles {}", report.cycles);
        assert!(report.job_stats.completed > 0);
        // The headline series all exist.
        for name in [
            "trans_utility",
            "jobs_hypo_utility",
            "trans_alloc",
            "jobs_alloc",
        ] {
            assert!(!report.metrics.series(name).is_empty(), "{name} missing");
        }
    }
}
