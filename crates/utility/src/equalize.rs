//! Utility-equalization solvers: divide a fluid CPU budget among entities
//! so that the *minimum* utility is maximized — which, for strictly
//! increasing curves, equalizes utility across all entities that are not
//! saturated at their demand cap.
//!
//! Two solvers are provided:
//!
//! * [`equalize_bisection`] — exact: bisection on the common utility level
//!   `u*`, exploiting that aggregate demand `Σᵢ cpuᵢ(u)` is monotone in `u`.
//! * [`equalize_steal`] — the paper's own description: *"the algorithm
//!   operates by continuously stealing resources \[from\] the more satisfied
//!   applications to later be given to the less satisfied applications"*.
//!   Implemented as repeated pairwise donor→receiver transfers, each sized
//!   by bisection so the pair's utilities meet.
//!
//! Both return the same allocation up to tolerance (asserted by tests and
//! benchmarked against each other in `bench_equalization`).

use crate::entity::UtilityOfCpu;
use serde::{Deserialize, Serialize};
use slaq_types::{fcmp, CpuMhz, EntityId};

/// One entity competing for CPU: an id plus its utility-of-CPU curve.
pub struct EqEntity<'a> {
    /// Stable identity used in the result.
    pub id: EntityId,
    /// The entity's utility curve.
    pub curve: &'a dyn UtilityOfCpu,
}

impl<'a> EqEntity<'a> {
    /// Convenience constructor.
    pub fn new(id: impl Into<EntityId>, curve: &'a dyn UtilityOfCpu) -> Self {
        EqEntity {
            id: id.into(),
            curve,
        }
    }
}

/// Per-entity outcome of an equalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityAllocation {
    /// The entity.
    pub id: EntityId,
    /// CPU power granted.
    pub cpu: CpuMhz,
    /// Utility at that allocation.
    pub utility: f64,
}

/// Result of an equalization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqualizedAllocation {
    /// Per-entity allocations, in input order.
    pub allocations: Vec<EntityAllocation>,
    /// The max–min water level `u*`: every entity either attains utility
    /// ≥ `u* − tol` or is saturated at its demand cap (its maximum utility
    /// being below `u*`).
    pub common_utility: f64,
    /// Σ of granted CPU.
    pub total_allocated: CpuMhz,
    /// Budget left after every entity saturated (zero while any entity can
    /// still improve).
    pub surplus: CpuMhz,
    /// Iterations used by the solver (bisection steps or steal rounds).
    pub iterations: usize,
}

impl EqualizedAllocation {
    /// Allocation for one entity, if present.
    pub fn cpu_of(&self, id: impl Into<EntityId>) -> Option<CpuMhz> {
        let id = id.into();
        self.allocations.iter().find(|a| a.id == id).map(|a| a.cpu)
    }

    /// Minimum utility across entities (`+∞` when empty).
    pub fn min_utility(&self) -> f64 {
        self.allocations
            .iter()
            .map(|a| a.utility)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Tuning knobs for the solvers. The defaults resolve a 300 000 MHz cluster
/// to well under 1 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EqualizeOptions {
    /// Utility-level resolution for bisection termination.
    pub tol_utility: f64,
    /// CPU resolution used when sizing pairwise transfers.
    pub tol_cpu: f64,
    /// Upper bound on solver iterations (bisection steps / steal rounds).
    pub max_iters: usize,
}

impl Default for EqualizeOptions {
    fn default() -> Self {
        EqualizeOptions {
            tol_utility: 1e-9,
            tol_cpu: 1e-6,
            max_iters: 200,
        }
    }
}

/// CPU the entity needs to reach utility level `u`, honouring saturation:
/// entities whose maximum utility is below `u` contribute their full demand
/// cap (they cannot do better), entities already at `u` with zero CPU
/// contribute zero.
fn demand_at_level(e: &dyn UtilityOfCpu, u: f64) -> CpuMhz {
    if u <= e.utility_at_zero() {
        return CpuMhz::ZERO;
    }
    if u >= e.max_utility() {
        return e.max_useful_cpu();
    }
    e.cpu_for_utility(u).unwrap_or_else(|| e.max_useful_cpu())
}

/// Exact max–min equalization by bisection on the common utility level.
///
/// Invariants of the result (covered by property tests):
/// * `Σ cpuᵢ ≤ total (+ε)` and `0 ≤ cpuᵢ ≤ max_useful_cpuᵢ`;
/// * every entity with `utility < common_utility − tol` is saturated;
/// * `surplus > 0` only when **all** entities are saturated.
pub fn equalize_bisection(
    entities: &[EqEntity<'_>],
    total: CpuMhz,
    opts: &EqualizeOptions,
) -> EqualizedAllocation {
    let total = total.max_zero();
    if entities.is_empty() {
        return EqualizedAllocation {
            allocations: Vec::new(),
            common_utility: 0.0,
            total_allocated: CpuMhz::ZERO,
            surplus: total,
            iterations: 0,
        };
    }

    // If the budget covers everyone's full demand, saturate and return.
    let full_demand: CpuMhz = entities.iter().map(|e| e.curve.max_useful_cpu()).sum();
    if full_demand.as_f64() <= total.as_f64() + opts.tol_cpu {
        let allocations: Vec<EntityAllocation> = entities
            .iter()
            .map(|e| EntityAllocation {
                id: e.id,
                cpu: e.curve.max_useful_cpu(),
                utility: e.curve.max_utility(),
            })
            .collect();
        let common = allocations
            .iter()
            .map(|a| a.utility)
            .fold(f64::INFINITY, f64::min);
        return EqualizedAllocation {
            common_utility: common,
            total_allocated: full_demand,
            surplus: total.saturating_sub(full_demand),
            allocations,
            iterations: 0,
        };
    }

    // Bisection bounds on the water level.
    let mut lo = entities
        .iter()
        .map(|e| e.curve.utility_at_zero())
        .fold(f64::INFINITY, f64::min);
    let mut hi = entities
        .iter()
        .map(|e| e.curve.max_utility())
        .fold(f64::NEG_INFINITY, f64::max);
    debug_assert!(lo <= hi + 1e-12);

    let mut iterations = 0;
    while hi - lo > opts.tol_utility && iterations < opts.max_iters {
        let mid = 0.5 * (lo + hi);
        let need: CpuMhz = entities.iter().map(|e| demand_at_level(e.curve, mid)).sum();
        if need.as_f64() <= total.as_f64() {
            lo = mid;
        } else {
            hi = mid;
        }
        iterations += 1;
    }
    let level = lo;

    let mut allocations: Vec<EntityAllocation> = entities
        .iter()
        .map(|e| {
            let cpu = demand_at_level(e.curve, level);
            EntityAllocation {
                id: e.id,
                cpu,
                utility: e.curve.utility(cpu),
            }
        })
        .collect();

    // Feasibility polish: the chosen level satisfies Σ ≤ total by
    // construction (we kept `lo` feasible), but fp noise can leave a hair
    // of excess; trim it pro-rata from the largest grants.
    let mut granted: CpuMhz = allocations.iter().map(|a| a.cpu).sum();
    if granted.as_f64() > total.as_f64() {
        let scale = total.as_f64() / granted.as_f64();
        for a in &mut allocations {
            a.cpu = a.cpu * scale;
        }
        granted = allocations.iter().map(|a| a.cpu).sum();
    }

    // Distribute any residual budget to unsaturated entities (raises the
    // minimum; keeps the result maximal, not just feasible). One pass in
    // utility order is enough at the bisection tolerance.
    //
    // Policy note: when the water level pins at a utility *floor* shared
    // by more entities than the budget can lift (a severely overloaded
    // pool), max–min is indifferent between them and this pass degenerates
    // into FIFO-greedy — the earliest entities in input order get
    // saturated first. Callers pass entities in submission order, so this
    // matches the natural "oldest jobs first" tie-break.
    let mut residual = total.saturating_sub(granted);
    if residual.as_f64() > opts.tol_cpu {
        let mut order: Vec<usize> = (0..allocations.len()).collect();
        order.sort_by(|&a, &b| fcmp(allocations[a].utility, allocations[b].utility));
        for idx in order {
            if residual.as_f64() <= opts.tol_cpu {
                break;
            }
            let cap = entities[idx].curve.max_useful_cpu();
            let room = cap.saturating_sub(allocations[idx].cpu);
            let grant = room.min(residual);
            if grant.as_f64() > 0.0 {
                allocations[idx].cpu += grant;
                residual -= grant;
            }
        }
        granted = allocations.iter().map(|a| a.cpu).sum();
    }

    for (a, e) in allocations.iter_mut().zip(entities) {
        a.utility = e.curve.utility(a.cpu);
    }

    // Surplus only counts when everyone is saturated.
    let all_saturated = allocations
        .iter()
        .zip(entities)
        .all(|(a, e)| a.cpu.as_f64() >= e.curve.max_useful_cpu().as_f64() - opts.tol_cpu);
    let surplus = if all_saturated {
        total.saturating_sub(granted)
    } else {
        CpuMhz::ZERO
    };

    EqualizedAllocation {
        common_utility: level,
        total_allocated: granted,
        surplus,
        allocations,
        iterations,
    }
}

/// Weighted (service-differentiated) equalization: minimize the maximum
/// **importance-scaled utility shortfall** `wᵢ · (u_maxᵢ − uᵢ)`.
///
/// At the common shortfall level `ℓ ≥ 0`, entity `i` targets utility
/// `u_maxᵢ − ℓ/wᵢ`: doubling an entity's weight halves how far below its
/// own optimum it is allowed to fall — "service differentiation based on
/// high-level performance goals" in the paper's words. With all weights
/// equal and equal `u_max`, this coincides with max–min equalization.
///
/// `weights` pairs each input entity (by index) with its importance
/// (> 0); missing/non-positive entries default to 1.0.
pub fn equalize_weighted(
    entities: &[EqEntity<'_>],
    weights: &[f64],
    total: CpuMhz,
    opts: &EqualizeOptions,
) -> EqualizedAllocation {
    let total = total.max_zero();
    if entities.is_empty() {
        return EqualizedAllocation {
            allocations: Vec::new(),
            common_utility: 0.0,
            total_allocated: CpuMhz::ZERO,
            surplus: total,
            iterations: 0,
        };
    }
    let weight = |i: usize| -> f64 {
        let w = weights.get(i).copied().unwrap_or(1.0);
        if w > 0.0 && w.is_finite() {
            w
        } else {
            1.0
        }
    };

    // Saturate-everyone fast path.
    let full_demand: CpuMhz = entities.iter().map(|e| e.curve.max_useful_cpu()).sum();
    if full_demand.as_f64() <= total.as_f64() + opts.tol_cpu {
        let allocations: Vec<EntityAllocation> = entities
            .iter()
            .map(|e| EntityAllocation {
                id: e.id,
                cpu: e.curve.max_useful_cpu(),
                utility: e.curve.max_utility(),
            })
            .collect();
        let common = allocations
            .iter()
            .map(|a| a.utility)
            .fold(f64::INFINITY, f64::min);
        return EqualizedAllocation {
            common_utility: common,
            total_allocated: full_demand,
            surplus: total.saturating_sub(full_demand),
            allocations,
            iterations: 0,
        };
    }

    // Bisection on the shortfall level ℓ: demand is non-increasing in ℓ.
    // ℓ_hi: large enough that every entity is at (or below) its zero-CPU
    // utility.
    let mut lo = 0.0f64;
    let mut hi = entities
        .iter()
        .enumerate()
        .map(|(i, e)| weight(i) * (e.curve.max_utility() - e.curve.utility_at_zero()))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let demand_at = |l: f64| -> CpuMhz {
        entities
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let target = e.curve.max_utility() - l / weight(i);
                demand_at_level(e.curve, target)
            })
            .sum()
    };
    let mut iterations = 0;
    while hi - lo > opts.tol_utility && iterations < opts.max_iters {
        let mid = 0.5 * (lo + hi);
        if demand_at(mid).as_f64() <= total.as_f64() {
            hi = mid; // feasible: try a smaller shortfall
        } else {
            lo = mid;
        }
        iterations += 1;
    }
    let level = hi;

    let mut allocations: Vec<EntityAllocation> = entities
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let target = e.curve.max_utility() - level / weight(i);
            let cpu = demand_at_level(e.curve, target);
            EntityAllocation {
                id: e.id,
                cpu,
                utility: e.curve.utility(cpu),
            }
        })
        .collect();
    let mut granted: CpuMhz = allocations.iter().map(|a| a.cpu).sum();
    if granted.as_f64() > total.as_f64() {
        let scale = total.as_f64() / granted.as_f64();
        for a in &mut allocations {
            a.cpu = a.cpu * scale;
        }
    }
    // Residual to the largest weighted shortfall first.
    let mut residual = total.saturating_sub(allocations.iter().map(|a| a.cpu).sum());
    if residual.as_f64() > opts.tol_cpu {
        let mut order: Vec<usize> = (0..allocations.len()).collect();
        order.sort_by(|&a, &b| {
            let sa = weight(a) * (entities[a].curve.max_utility() - allocations[a].utility);
            let sb = weight(b) * (entities[b].curve.max_utility() - allocations[b].utility);
            fcmp(sb, sa)
        });
        for idx in order {
            if residual.as_f64() <= opts.tol_cpu {
                break;
            }
            let cap = entities[idx].curve.max_useful_cpu();
            let room = cap.saturating_sub(allocations[idx].cpu);
            let grant = room.min(residual);
            if grant.as_f64() > 0.0 {
                allocations[idx].cpu += grant;
                residual -= grant;
            }
        }
    }
    for (a, e) in allocations.iter_mut().zip(entities) {
        a.utility = e.curve.utility(a.cpu);
    }
    granted = allocations.iter().map(|a| a.cpu).sum();
    let all_saturated = allocations
        .iter()
        .zip(entities)
        .all(|(a, e)| a.cpu.as_f64() >= e.curve.max_useful_cpu().as_f64() - opts.tol_cpu);
    let common = allocations
        .iter()
        .map(|a| a.utility)
        .fold(f64::INFINITY, f64::min);
    EqualizedAllocation {
        common_utility: common,
        total_allocated: granted,
        surplus: if all_saturated {
            total.saturating_sub(granted)
        } else {
            CpuMhz::ZERO
        },
        allocations,
        iterations,
    }
}

/// The paper's iterative scheme: repeatedly steal CPU from the most
/// satisfied entity and hand it to the least satisfied one, sizing each
/// transfer so the pair's utilities meet.
///
/// Slower than [`equalize_bisection`] but follows the published prose; kept
/// both as an ablation (bench `bench_equalization`) and as a cross-check
/// oracle in tests.
pub fn equalize_steal(
    entities: &[EqEntity<'_>],
    total: CpuMhz,
    opts: &EqualizeOptions,
) -> EqualizedAllocation {
    let total = total.max_zero();
    let n = entities.len();
    if n == 0 {
        return EqualizedAllocation {
            allocations: Vec::new(),
            common_utility: 0.0,
            total_allocated: CpuMhz::ZERO,
            surplus: total,
            iterations: 0,
        };
    }

    let caps: Vec<CpuMhz> = entities.iter().map(|e| e.curve.max_useful_cpu()).collect();
    let cap_sum: CpuMhz = caps.iter().sum();
    let budget = total.min(cap_sum);

    // Start proportional-to-cap: every entity gets a share of the budget
    // scaled by its demand cap (all-zero caps ⇒ all-zero start).
    let mut alloc: Vec<CpuMhz> = if cap_sum.is_zero() {
        vec![CpuMhz::ZERO; n]
    } else {
        caps.iter()
            .map(|c| *c * (budget.as_f64() / cap_sum.as_f64()))
            .collect()
    };

    let utility = |i: usize, a: &[CpuMhz]| entities[i].curve.utility(a[i]);

    let mut rounds = 0;
    while rounds < opts.max_iters {
        rounds += 1;

        // Most satisfied donor that actually holds CPU, least satisfied
        // receiver that can still absorb CPU.
        let mut donor: Option<usize> = None;
        let mut receiver: Option<usize> = None;
        for i in 0..n {
            let u = utility(i, &alloc);
            if alloc[i].as_f64() > opts.tol_cpu && donor.is_none_or(|d| u > utility(d, &alloc)) {
                donor = Some(i);
            }
            if caps[i].as_f64() - alloc[i].as_f64() > opts.tol_cpu
                && receiver.is_none_or(|r| u < utility(r, &alloc))
            {
                receiver = Some(i);
            }
        }
        let (Some(d), Some(r)) = (donor, receiver) else {
            break;
        };
        if d == r {
            break;
        }
        let (ud, ur) = (utility(d, &alloc), utility(r, &alloc));
        if ud - ur <= opts.tol_utility.max(1e-7) {
            break; // equalized
        }

        // Size the transfer by bisection so u_d(a_d−m) ≈ u_r(a_r+m).
        let m_max = alloc[d].min(caps[r].saturating_sub(alloc[r]));
        let mut m_lo = 0.0f64;
        let mut m_hi = m_max.as_f64();
        for _ in 0..50 {
            let m = 0.5 * (m_lo + m_hi);
            let u_d = entities[d].curve.utility(alloc[d] - CpuMhz::new(m));
            let u_r = entities[r].curve.utility(alloc[r] + CpuMhz::new(m));
            if u_d > u_r {
                m_lo = m;
            } else {
                m_hi = m;
            }
            if m_hi - m_lo < opts.tol_cpu {
                break;
            }
        }
        let m = CpuMhz::new(0.5 * (m_lo + m_hi));
        if m.as_f64() <= opts.tol_cpu {
            break; // transfer too small to matter: numerically equalized
        }
        alloc[d] -= m;
        alloc[r] += m;
    }

    let allocations: Vec<EntityAllocation> = entities
        .iter()
        .enumerate()
        .map(|(i, e)| EntityAllocation {
            id: e.id,
            cpu: alloc[i].max_zero(),
            utility: e.curve.utility(alloc[i]),
        })
        .collect();
    let granted: CpuMhz = allocations.iter().map(|a| a.cpu).sum();
    let all_saturated = allocations
        .iter()
        .zip(&caps)
        .all(|(a, c)| a.cpu.as_f64() >= c.as_f64() - opts.tol_cpu);
    let common = allocations
        .iter()
        .map(|a| a.utility)
        .fold(f64::INFINITY, f64::min);

    EqualizedAllocation {
        common_utility: common,
        total_allocated: granted,
        surplus: if all_saturated {
            total.saturating_sub(granted)
        } else {
            CpuMhz::ZERO
        },
        allocations,
        iterations: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::CappedLinearUtility;
    use proptest::prelude::*;
    use slaq_types::{AppId, JobId};

    fn ent(u0: f64, u1: f64, cap: f64) -> CappedLinearUtility {
        CappedLinearUtility::new(u0, u1, CpuMhz::new(cap)).unwrap()
    }

    fn ids(n: usize) -> Vec<EntityId> {
        (0..n)
            .map(|i| EntityId::Job(JobId::new(i as u32)))
            .collect()
    }

    #[test]
    fn empty_input_returns_all_surplus() {
        let r = equalize_bisection(&[], CpuMhz::new(100.0), &EqualizeOptions::default());
        assert_eq!(r.surplus, CpuMhz::new(100.0));
        assert!(r.allocations.is_empty());
        let r = equalize_steal(&[], CpuMhz::new(100.0), &EqualizeOptions::default());
        assert_eq!(r.surplus, CpuMhz::new(100.0));
    }

    #[test]
    fn two_identical_entities_split_evenly() {
        let c = ent(0.0, 1.0, 1000.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &c), EqEntity::new(id[1], &c)];
        let r = equalize_bisection(&es, CpuMhz::new(1000.0), &EqualizeOptions::default());
        assert!(r.allocations[0].cpu.approx_eq(CpuMhz::new(500.0), 1e-3));
        assert!(r.allocations[1].cpu.approx_eq(CpuMhz::new(500.0), 1e-3));
        assert!((r.allocations[0].utility - 0.5).abs() < 1e-6);
        assert!((r.common_utility - 0.5).abs() < 1e-6);
        assert_eq!(r.surplus, CpuMhz::ZERO);
    }

    #[test]
    fn abundant_budget_saturates_everyone_with_surplus() {
        let a = ent(0.0, 1.0, 300.0);
        let b = ent(0.2, 0.9, 700.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &a), EqEntity::new(id[1], &b)];
        let r = equalize_bisection(&es, CpuMhz::new(5000.0), &EqualizeOptions::default());
        assert!(r.allocations[0].cpu.approx_eq(CpuMhz::new(300.0), 1e-6));
        assert!(r.allocations[1].cpu.approx_eq(CpuMhz::new(700.0), 1e-6));
        assert!(r.surplus.approx_eq(CpuMhz::new(4000.0), 1e-6));
        // Common utility reported as the min of the saturated utilities.
        assert!((r.common_utility - 0.9).abs() < 1e-9);
    }

    #[test]
    fn unequal_curves_get_uneven_cpu_but_equal_utility() {
        // Entity A needs 4x the CPU of entity B for the same utility —
        // the Figure 2 vs Figure 1 phenomenon in miniature.
        let a = ent(0.0, 1.0, 4000.0);
        let b = ent(0.0, 1.0, 1000.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &a), EqEntity::new(id[1], &b)];
        let r = equalize_bisection(&es, CpuMhz::new(2500.0), &EqualizeOptions::default());
        let (ca, cb) = (r.allocations[0].cpu, r.allocations[1].cpu);
        assert!((r.allocations[0].utility - r.allocations[1].utility).abs() < 1e-6);
        assert!(ca.as_f64() / cb.as_f64() > 3.9 && ca.as_f64() / cb.as_f64() < 4.1);
        assert!((ca + cb).approx_eq(CpuMhz::new(2500.0), 1e-3));
    }

    #[test]
    fn saturated_entity_frees_cpu_for_the_rest() {
        // B saturates at u=0.4; A can keep climbing. Max-min should push A
        // beyond 0.4 once B is capped.
        let a = ent(0.0, 1.0, 1000.0);
        let b = ent(0.0, 0.4, 200.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &a), EqEntity::new(id[1], &b)];
        let r = equalize_bisection(&es, CpuMhz::new(800.0), &EqualizeOptions::default());
        assert!(r.allocations[1].cpu.approx_eq(CpuMhz::new(200.0), 1e-3));
        assert!(r.allocations[0].cpu.approx_eq(CpuMhz::new(600.0), 1e-3));
        assert!((r.allocations[0].utility - 0.6).abs() < 1e-6);
        assert_eq!(r.surplus, CpuMhz::ZERO);
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let a = ent(-0.5, 1.0, 1000.0);
        let id = ids(1);
        let es = vec![EqEntity::new(id[0], &a)];
        let r = equalize_bisection(&es, CpuMhz::ZERO, &EqualizeOptions::default());
        assert!(r.allocations[0].cpu.is_zero());
        assert!((r.allocations[0].utility + 0.5).abs() < 1e-9);
    }

    #[test]
    fn flat_entities_consume_nothing() {
        let flat = ent(0.7, 0.7, 0.0);
        let hungry = ent(0.0, 1.0, 1000.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &flat), EqEntity::new(id[1], &hungry)];
        let r = equalize_bisection(&es, CpuMhz::new(1000.0), &EqualizeOptions::default());
        assert!(r.allocations[0].cpu.is_zero());
        assert!(r.allocations[1].cpu.approx_eq(CpuMhz::new(1000.0), 1e-3));
        assert!(r.surplus.is_zero());
    }

    #[test]
    fn steal_matches_bisection_on_a_mixed_pool() {
        let curves = [
            ent(0.0, 1.0, 3000.0),
            ent(0.1, 0.9, 1000.0),
            ent(-0.3, 1.0, 6000.0),
            ent(0.0, 0.5, 500.0),
        ];
        let id = ids(curves.len());
        let es: Vec<EqEntity> = curves
            .iter()
            .enumerate()
            .map(|(i, c)| EqEntity::new(id[i], c))
            .collect();
        let opts = EqualizeOptions {
            max_iters: 10_000,
            ..Default::default()
        };
        let total = CpuMhz::new(4000.0);
        let rb = equalize_bisection(&es, total, &opts);
        let rs = equalize_steal(&es, total, &opts);
        for (b, s) in rb.allocations.iter().zip(&rs.allocations) {
            assert!(
                (b.utility - s.utility).abs() < 1e-3,
                "utility mismatch: bisection {} vs steal {}",
                b.utility,
                s.utility
            );
            assert!(
                b.cpu.approx_eq(s.cpu, total.as_f64() * 1e-3),
                "cpu mismatch: {} vs {}",
                b.cpu,
                s.cpu
            );
        }
    }

    #[test]
    fn weighted_equalization_differentiates() {
        // Two identical entities, one twice as important: the heavy one
        // must end up with a smaller shortfall from its optimum.
        let c = ent(0.0, 1.0, 1000.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &c), EqEntity::new(id[1], &c)];
        let r = equalize_weighted(
            &es,
            &[2.0, 1.0],
            CpuMhz::new(1000.0),
            &EqualizeOptions::default(),
        );
        let (u_gold, u_bronze) = (r.allocations[0].utility, r.allocations[1].utility);
        assert!(
            u_gold > u_bronze + 0.1,
            "gold {u_gold} vs bronze {u_bronze}"
        );
        // Weighted shortfalls are equal: 2·(1−u_g) = 1·(1−u_b).
        assert!(
            (2.0 * (1.0 - u_gold) - (1.0 - u_bronze)).abs() < 1e-3,
            "shortfalls: {} vs {}",
            2.0 * (1.0 - u_gold),
            1.0 - u_bronze
        );
        let total: f64 = r.allocations.iter().map(|a| a.cpu.as_f64()).sum();
        assert!((total - 1000.0).abs() < 1.0);
    }

    #[test]
    fn weighted_with_unit_weights_matches_unweighted_on_equal_maxima() {
        let curves = [ent(0.0, 1.0, 2000.0), ent(0.1, 1.0, 800.0)];
        let id = ids(2);
        let es: Vec<EqEntity> = curves
            .iter()
            .enumerate()
            .map(|(i, c)| EqEntity::new(id[i], c))
            .collect();
        let total = CpuMhz::new(1500.0);
        let opts = EqualizeOptions::default();
        let rw = equalize_weighted(&es, &[1.0, 1.0], total, &opts);
        let rb = equalize_bisection(&es, total, &opts);
        for (a, b) in rw.allocations.iter().zip(&rb.allocations) {
            assert!(
                (a.utility - b.utility).abs() < 1e-3,
                "weighted {} vs plain {}",
                a.utility,
                b.utility
            );
        }
    }

    #[test]
    fn weighted_abundant_budget_saturates_everyone() {
        let c = ent(0.0, 1.0, 500.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &c), EqEntity::new(id[1], &c)];
        let r = equalize_weighted(
            &es,
            &[5.0, 1.0],
            CpuMhz::new(5000.0),
            &EqualizeOptions::default(),
        );
        assert!(r.surplus.approx_eq(CpuMhz::new(4000.0), 1e-6));
        assert!((r.allocations[1].utility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_ignores_bogus_weights() {
        let c = ent(0.0, 1.0, 1000.0);
        let id = ids(2);
        let es = vec![EqEntity::new(id[0], &c), EqEntity::new(id[1], &c)];
        let r = equalize_weighted(
            &es,
            &[f64::NAN, -3.0],
            CpuMhz::new(1000.0),
            &EqualizeOptions::default(),
        );
        // Both default to weight 1: even split.
        assert!(r.allocations[0].cpu.approx_eq(r.allocations[1].cpu, 1.0));
    }

    #[test]
    fn cpu_of_looks_up_by_entity() {
        let a = ent(0.0, 1.0, 100.0);
        let es = vec![EqEntity::new(AppId::new(7), &a)];
        let r = equalize_bisection(&es, CpuMhz::new(50.0), &EqualizeOptions::default());
        assert!(r
            .cpu_of(AppId::new(7))
            .unwrap()
            .approx_eq(CpuMhz::new(50.0), 1e-6));
        assert!(r.cpu_of(AppId::new(8)).is_none());
        assert!(r.cpu_of(JobId::new(7)).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_bisection_respects_budget_and_caps(
            params in proptest::collection::vec(
                (0.0..0.5f64, 0.5..1.0f64, 10.0..5000.0f64), 1..12),
            total in 0.0..20_000.0f64,
        ) {
            let curves: Vec<CappedLinearUtility> = params
                .iter()
                .map(|&(u0, u1, cap)| ent(u0, u1, cap))
                .collect();
            let id = ids(curves.len());
            let es: Vec<EqEntity> = curves
                .iter()
                .enumerate()
                .map(|(i, c)| EqEntity::new(id[i], c))
                .collect();
            let r = equalize_bisection(&es, CpuMhz::new(total), &EqualizeOptions::default());
            let sum: f64 = r.allocations.iter().map(|a| a.cpu.as_f64()).sum();
            prop_assert!(sum <= total + 1e-3, "granted {sum} > budget {total}");
            for (a, c) in r.allocations.iter().zip(&curves) {
                prop_assert!(a.cpu.as_f64() >= -1e-9);
                prop_assert!(a.cpu.as_f64() <= c.cap.as_f64() + 1e-3);
            }
        }

        #[test]
        fn prop_bisection_is_max_min_fair(
            params in proptest::collection::vec(
                (0.0..0.5f64, 0.5..1.0f64, 10.0..5000.0f64), 2..10),
            total in 100.0..10_000.0f64,
        ) {
            let curves: Vec<CappedLinearUtility> = params
                .iter()
                .map(|&(u0, u1, cap)| ent(u0, u1, cap))
                .collect();
            let id = ids(curves.len());
            let es: Vec<EqEntity> = curves
                .iter()
                .enumerate()
                .map(|(i, c)| EqEntity::new(id[i], c))
                .collect();
            let r = equalize_bisection(&es, CpuMhz::new(total), &EqualizeOptions::default());
            // Max-min: any entity strictly below the water level must be
            // saturated at its cap.
            for (a, c) in r.allocations.iter().zip(&curves) {
                if a.utility < r.common_utility - 1e-6 {
                    prop_assert!(
                        a.cpu.as_f64() >= c.cap.as_f64() - 1e-3,
                        "entity below water level but not saturated"
                    );
                }
            }
        }

        #[test]
        fn prop_more_budget_never_hurts(
            params in proptest::collection::vec(
                (0.0..0.5f64, 0.5..1.0f64, 10.0..2000.0f64), 1..8),
            total in 0.0..5000.0f64,
            extra in 0.0..5000.0f64,
        ) {
            let curves: Vec<CappedLinearUtility> = params
                .iter()
                .map(|&(u0, u1, cap)| ent(u0, u1, cap))
                .collect();
            let id = ids(curves.len());
            let es: Vec<EqEntity> = curves
                .iter()
                .enumerate()
                .map(|(i, c)| EqEntity::new(id[i], c))
                .collect();
            let opts = EqualizeOptions::default();
            let r1 = equalize_bisection(&es, CpuMhz::new(total), &opts);
            let r2 = equalize_bisection(&es, CpuMhz::new(total + extra), &opts);
            prop_assert!(r2.min_utility() >= r1.min_utility() - 1e-6);
        }

        #[test]
        fn prop_steal_agrees_with_bisection(
            params in proptest::collection::vec(
                (0.0..0.3f64, 0.6..1.0f64, 100.0..3000.0f64), 2..6),
            frac in 0.1..0.9f64,
        ) {
            let curves: Vec<CappedLinearUtility> = params
                .iter()
                .map(|&(u0, u1, cap)| ent(u0, u1, cap))
                .collect();
            let cap_sum: f64 = curves.iter().map(|c| c.cap.as_f64()).sum();
            let total = CpuMhz::new(cap_sum * frac);
            let id = ids(curves.len());
            let es: Vec<EqEntity> = curves
                .iter()
                .enumerate()
                .map(|(i, c)| EqEntity::new(id[i], c))
                .collect();
            let opts = EqualizeOptions { max_iters: 20_000, ..Default::default() };
            let rb = equalize_bisection(&es, total, &opts);
            let rs = equalize_steal(&es, total, &opts);
            prop_assert!(
                (rb.min_utility() - rs.min_utility()).abs() < 5e-3,
                "min utility: bisection {} vs steal {}",
                rb.min_utility(), rs.min_utility()
            );
        }
    }
}
