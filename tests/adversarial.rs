//! The adversarial gate: the chaos corpus (zone-outage storms, flapping
//! nodes, capacity degradation, flash crowds, antagonist batch floods,
//! overbooking, vertical elasticity) must never shake the controller
//! loose from its safety invariants, and every differential oracle that
//! holds on the friendly corpus must keep holding under fire.
//!
//! 1. **Golden pins under the invariant checker.** Each adversarial
//!    preset runs its full horizon wrapped in [`InvariantChecker`] —
//!    zero violations, every cycle checked, and the headline run shape
//!    (cycles, changes, job counts) pinned exactly.
//! 2. **Overbooking provably bites.** The `flash-crowd` preset with its
//!    overcommit block yields strictly less satisfied CPU than the same
//!    spec with overbooking disabled, and the loss is attributed to the
//!    dedicated `overcommit` cause — not smeared into the capacity
//!    remainder.
//! 3. **The differential oracles survive chaos.** Delta ≡ batch bit
//!    identity and observe-on ≡ observe-off bit identity are replayed
//!    on every chaos preset.
//! 4. **Random fault plans.** A proptest drives seeded random chaos
//!    blocks (storm/flap/degradation/spike/flood interleavings, plus
//!    overbooking and elasticity) through Batch, Delta, Sharded(4), and
//!    Overlap(1) controllers — never panicking, never violating the
//!    checker.

use slaq::core::spec::{ObserveSpec, PipelineSpec, ScenarioSpec, ShardingSpec};
use slaq::placement::SolveMode;
use slaq::sim::{InvariantChecker, SimReport, Simulator};

const ADVERSARIAL: &[&str] = &["flash-crowd", "zone-storm", "node-flap", "antagonist-flood"];

/// Run a spec end to end with the controller wrapped in the invariant
/// checker, returning the report and the checker's verdict.
fn run_checked(spec: &ScenarioSpec) -> (SimReport, InvariantChecker) {
    let scenario = spec
        .materialize()
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let mut sim = scenario
        .build()
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let mut checker = InvariantChecker::new(scenario.controller(), spec.controller.max_changes);
    let report = sim
        .run(&mut checker)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    (report, checker)
}

/// Run a preset with SLO observation on, returning the simulator whose
/// recorder holds the per-app SLO board.
fn run_observed(spec: &ScenarioSpec) -> (SimReport, Simulator) {
    let mut spec = spec.clone();
    spec.controller.observe = ObserveSpec::On;
    let scenario = spec.materialize().unwrap_or_else(|e| panic!("{e}"));
    let mut controller = scenario.controller();
    let mut sim = scenario.build().unwrap_or_else(|e| panic!("{e}"));
    let report = sim
        .run(controller.as_mut())
        .unwrap_or_else(|e| panic!("{e}"));
    (report, sim)
}

/// Golden pins: full-horizon run shape per adversarial preset —
/// (name, cycles, total changes, jobs submitted, jobs completed).
/// Exact on purpose: chaos lowering is seeded, so any change to the
/// plan generator or the fault machinery shows up here.
const GOLDEN: &[(&str, usize, usize, usize, usize)] = &[
    ("flash-crowd", 37, 183, 70, 46),
    ("zone-storm", 41, 109, 80, 80),
    ("node-flap", 37, 176, 90, 47),
    ("antagonist-flood", 37, 463, 80, 66),
];

#[test]
fn adversarial_presets_hold_every_invariant_for_the_full_horizon() {
    for &(name, cycles, changes, submitted, completed) in GOLDEN {
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let (report, checker) = run_checked(&spec);
        assert_eq!(
            checker.violations(),
            &[] as &[String],
            "{name}: invariant violations"
        );
        assert_eq!(
            checker.cycles_checked(),
            report.cycles,
            "{name}: checker must see every control cycle"
        );
        assert_eq!(report.cycles, cycles, "{name}: cycle count drifted");
        assert_eq!(
            report.total_changes, changes,
            "{name}: change count drifted"
        );
        assert_eq!(
            report.job_stats.submitted, submitted,
            "{name}: submissions drifted"
        );
        assert_eq!(
            report.job_stats.completed, completed,
            "{name}: completions drifted"
        );
    }
}

#[test]
fn golden_table_covers_exactly_the_adversarial_presets() {
    let pinned: Vec<&str> = GOLDEN.iter().map(|&(n, ..)| n).collect();
    assert_eq!(pinned, ADVERSARIAL);
    // And they are all registered corpus presets (so the corpus gate's
    // round-trip and workload pins cover them too).
    for name in ADVERSARIAL {
        assert!(
            ScenarioSpec::preset_names().contains(name),
            "{name} missing from the preset registry"
        );
    }
}

/// The adversarial presets actually exercise the fault machinery they
/// advertise: lowered outages, capacity dips, overbooking, elasticity,
/// and flood-synthesized jobs all appear in the materialized scenarios.
#[test]
fn chaos_plans_lower_onto_the_fault_machinery() {
    let storm = ScenarioSpec::preset("zone-storm")
        .unwrap()
        .materialize()
        .unwrap();
    assert!(
        !storm.outages.is_empty(),
        "zone storms must lower to outages"
    );
    assert!(!storm.dips.is_empty(), "degradation must lower to dips");
    let flap = ScenarioSpec::preset("node-flap")
        .unwrap()
        .materialize()
        .unwrap();
    assert!(!flap.outages.is_empty(), "flaps must lower to outages");
    // Flap windows are disjoint per node (merged in the lowering).
    for w in flap.outages.windows(2) {
        if w[0].node == w[1].node {
            assert!(
                w[0].to <= w[1].from || w[1].to <= w[0].from,
                "overlapping flap windows on {:?}",
                w[0].node
            );
        }
    }
    let crowd = ScenarioSpec::preset("flash-crowd").unwrap();
    assert!(crowd.overcommit.is_some(), "flash-crowd must overbook");
    let flood = ScenarioSpec::preset("antagonist-flood")
        .unwrap()
        .materialize()
        .unwrap();
    assert!(flood.elasticity.is_some(), "flood preset must resize jobs");
    let flood_jobs = flood
        .jobs
        .iter()
        .filter(|(_, j)| j.name.starts_with("flood-"))
        .count();
    assert_eq!(flood_jobs, 40, "antagonist stream must synthesize its jobs");
}

/// Overbooking provably bites: with the overcommit block active the
/// storefront sees strictly more deficit and strictly less compliance
/// than the identical spec with overbooking off, and the entire extra
/// loss is carried by the dedicated `overcommit` attribution cause.
#[test]
fn overbooking_bites_and_is_attributed_to_the_overcommit_cause() {
    let overbooked = ScenarioSpec::preset("flash-crowd").expect("named preset");
    let mut honest = overbooked.clone();
    honest.overcommit = None;

    let (_, oc_sim) = run_observed(&overbooked);
    let (_, base_sim) = run_observed(&honest);
    let oc_board = oc_sim.recorder().slo_board();
    let base_board = base_sim.recorder().slo_board();
    assert_eq!(oc_board.len(), 1);
    assert_eq!(base_board.len(), 1);
    let (app, oc) = &oc_board[0];
    let (_, base) = &base_board[0];

    assert!(
        oc.total_deficit_mhz() > base.total_deficit_mhz(),
        "{app}: overbooking should cost satisfied CPU ({} vs {})",
        oc.total_deficit_mhz(),
        base.total_deficit_mhz()
    );
    assert!(
        oc.compliance() < base.compliance(),
        "{app}: overbooking should cost compliance ({} vs {})",
        oc.compliance(),
        base.compliance()
    );
    assert!(
        oc.attribution().overcommit_mhz > 0.0,
        "{app}: the loss must be attributed to the overcommit cause"
    );
    assert_eq!(
        base.attribution().overcommit_mhz,
        0.0,
        "{app}: no overcommit attribution without overbooking"
    );
    // The attribution identity holds under the new cause too.
    let parts = oc.attribution().total();
    let total = oc.total_deficit_mhz();
    assert!(
        (parts - total).abs() <= 1e-6 * total.max(1.0),
        "{app}: attribution {parts} != deficit {total}"
    );
}

/// Delta ≡ batch, replayed under every chaos preset: flipping the solve
/// mode must reproduce the adversarial runs bit for bit, exactly as it
/// does on the friendly corpus.
#[test]
fn delta_solve_stays_bit_identical_to_batch_under_chaos() {
    for name in ADVERSARIAL {
        let base = ScenarioSpec::preset(name).expect("named preset");
        let run = |solve: SolveMode| {
            let mut spec = base.clone();
            spec.controller.solve = solve;
            spec.timing.cap_to_cycles(6);
            spec.run()
                .unwrap_or_else(|e| panic!("{name} ({solve:?}): {e}"))
        };
        let batch = run(SolveMode::Batch);
        let delta = run(SolveMode::Delta);
        assert_eq!(batch.cycles, delta.cycles, "{name}: cycle count");
        assert_eq!(
            batch.total_changes, delta.total_changes,
            "{name}: total changes"
        );
        assert_eq!(batch.job_stats, delta.job_stats, "{name}: job stats");
        for series in batch.metrics.names() {
            if series == "pipeline_solve_micros" {
                continue; // wall-clock timings, legitimately different
            }
            assert_eq!(
                batch.metrics.series(series),
                delta.metrics.series(series),
                "{name}: series {series} diverged"
            );
        }
    }
}

/// Observation ≡ no observation, replayed under every chaos preset:
/// the recorder (SLO board, audit ring and all) must stay invisible to
/// the simulation even while chaos drives it through the fault paths.
#[test]
fn observation_stays_bit_identical_under_chaos() {
    for name in ADVERSARIAL {
        let base = ScenarioSpec::preset(name).expect("named preset");
        let run = |observe: ObserveSpec| {
            let mut spec = base.clone();
            spec.controller.observe = observe;
            spec.timing.cap_to_cycles(6);
            spec.run().unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let off = run(ObserveSpec::Off);
        let on = run(ObserveSpec::On);
        assert_eq!(
            off.metrics, on.metrics,
            "{name}: metric series diverged under observation"
        );
        assert_eq!(off.job_stats, on.job_stats, "{name}: job stats diverged");
        assert_eq!(off.cycles, on.cycles, "{name}: cycle count diverged");
        assert_eq!(
            off.total_changes, on.total_changes,
            "{name}: change count diverged"
        );
    }
}

mod random_fault_plans {
    //! Seeded random chaos blocks — arbitrary interleavings of storms,
    //! flaps, degradation windows, flash crowds, floods, overbooking,
    //! and elasticity — must never panic and never violate the
    //! invariant checker, under all four controller engines.

    use super::*;
    use proptest::prelude::*;
    use slaq::sim::{
        ChaosSpec, DegradationSpec, ElasticitySpec, FlapSpec, FlashCrowdSpec, FloodSpec,
        OvercommitSpec, ZoneStormSpec,
    };

    /// The four engine configurations the checker must hold under.
    fn engines() -> Vec<(&'static str, SolveMode, ShardingSpec, PipelineSpec)> {
        vec![
            (
                "batch",
                SolveMode::Batch,
                ShardingSpec::Global,
                PipelineSpec::Sync,
            ),
            (
                "delta",
                SolveMode::Delta,
                ShardingSpec::Global,
                PipelineSpec::Sync,
            ),
            (
                "sharded4",
                SolveMode::Batch,
                ShardingSpec::Count { count: 4 },
                PipelineSpec::Sync,
            ),
            (
                "overlap1",
                SolveMode::Batch,
                ShardingSpec::Global,
                PipelineSpec::overlap(1),
            ),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_random_chaos_never_violates_the_checker(
            seed in 0u64..10_000,
            storm in proptest::option::of(
                (0.0..3000.0f64, 2000.0..6000.0f64, 0.1..0.9f64, 1u32..3, 0.25..1.0f64)),
            flap in proptest::option::of(
                (1u32..3, 0.0..2000.0f64, 1500.0..5000.0f64, 0.1..0.9f64)),
            degrade in proptest::option::of(
                (1u32..3, 0.0..4000.0f64, 500.0..8000.0f64, 0.1..0.9f64)),
            spike in proptest::option::of(
                (1.0..40.0f64, 0.0..3000.0f64, 1000.0..5000.0f64, 0.1..0.9f64)),
            flood in proptest::option::of(
                (0.0..3000.0f64, 1000.0..5000.0f64, 1u32..8, 4u32..20, 500.0..4000.0f64)),
            overcommit in proptest::option::of(
                (1.0..1.6f64, 0.0..1.0f64, 0.05..0.95f64)),
            elastic in proptest::option::of(
                (100.0..2000.0f64, 500.0..3000.0f64, 1.05..2.0f64, 0.3..0.9f64, 1u32..5)),
        ) {
            let mut spec = ScenarioSpec::preset("paper-small").expect("named preset");
            spec.seed = seed;
            spec.timing.cap_to_cycles(3);
            spec.chaos = Some(ChaosSpec {
                zone_storms: storm.map(|(first, period, frac, zones, nf)| ZoneStormSpec {
                    first_secs: first,
                    period_secs: period,
                    duration_secs: period * frac,
                    zones_per_storm: zones,
                    node_fraction: nf,
                }),
                flaps: flap.map(|(nodes, first, period, frac)| FlapSpec {
                    nodes,
                    first_secs: first,
                    period_secs: period,
                    down_secs: period * frac,
                }),
                degradation: degrade.map(|(nodes, from, dur, factor)| DegradationSpec {
                    nodes,
                    from_secs: from,
                    to_secs: from + dur,
                    cpu_factor: factor,
                }),
                flash_crowds: spike.map(|(surge, first, period, frac)| FlashCrowdSpec {
                    surge,
                    first_secs: first,
                    period_secs: period,
                    spike_secs: period * frac,
                }),
                batch_floods: flood.map(|(first, period, batch, max, work)| FloodSpec {
                    first_secs: first,
                    period_secs: period,
                    batch_size: batch,
                    max_jobs: max,
                    work_secs: work,
                    mem_mb: 1024,
                }),
            });
            spec.overcommit = overcommit.map(|(ratio, prob, depth)| OvercommitSpec {
                cpu_ratio: ratio,
                mem_ratio: 1.0,
                bite_prob: prob,
                bite_depth: depth,
            });
            spec.elasticity = elastic.map(|(first, period, grow, shrink, events)| ElasticitySpec {
                first_secs: first,
                period_secs: period,
                grow_factor: grow,
                shrink_factor: shrink,
                max_events: events,
            });
            spec.validate().expect("generated chaos must be structurally valid");

            for (label, solve, shards, pipeline) in engines() {
                let mut variant = spec.clone();
                variant.controller.solve = solve;
                variant.controller.shards = shards;
                variant.controller.pipeline = pipeline;
                let (report, checker) = run_checked(&variant);
                prop_assert!(
                    checker.violations().is_empty(),
                    "{label}: {:?}",
                    checker.violations().first()
                );
                prop_assert_eq!(checker.cycles_checked(), report.cycles);
                prop_assert!(report.cycles >= 1, "{label}: no control cycle ran");
            }
        }
    }
}
