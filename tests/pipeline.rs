//! Pipeline consistency across crate boundaries: the demand the
//! performance model predicts is what the equalizer hands out, what the
//! placement realizes, and what the simulator's sharing delivers.

use slaq::prelude::*;
use slaq_placement::solve;
use std::collections::{BTreeMap, BTreeSet};

fn app_spec(tau: f64) -> TransactionalSpec {
    TransactionalSpec {
        name: "pipeline-app".into(),
        service_per_request: Work::new(2000.0),
        rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(tau)).unwrap(),
        mem_per_instance: MemMb::new(1024),
        max_instances: 4,
        min_instances: 1,
        u_cap: 0.9,
    }
}

#[test]
fn perfmodel_demand_flows_through_placement_to_allocation() {
    // λ=4 req/s, c=2000 ⇒ offered 8000; u_cap demand = 8000 + 40 000 =
    // 48 000 MHz on a 4-node × 12 000 cluster: exactly realizable.
    let model = TransactionalModel::new(app_spec(0.5), 4.0).unwrap();
    let demand = model.max_useful_cpu();
    assert!((demand.as_f64() - 48_000.0).abs() < 1e-6);

    let nodes: Vec<NodeCapacity> = (0..4)
        .map(|i| NodeCapacity {
            id: NodeId::new(i),
            cpu: CpuMhz::new(12_000.0),
            mem: MemMb::new(4096),
        })
        .collect();
    let problem = PlacementProblem {
        nodes,
        apps: vec![AppRequest {
            id: AppId::new(0),
            demand,
            mem_per_instance: MemMb::new(1024),
            min_instances: 1,
            max_instances: 4,
            affinity: Vec::new(),
        }],
        jobs: vec![],
        config: PlacementConfig::default(),
    };
    let outcome = solve(&problem, &Placement::empty());
    let satisfied = outcome.satisfied_apps[&AppId::new(0)];
    assert!(
        satisfied.approx_eq(demand, 2.0),
        "placement satisfied {satisfied} of {demand}"
    );

    // The simulator's sharing must deliver at least the guarantee.
    let caps = BTreeMap::new();
    let (_, app_speeds) = slaq_sim::effective_speeds(
        &problem.nodes,
        &outcome.placement,
        &caps,
        &BTreeSet::new(),
        false,
    );
    let delivered = app_speeds[&AppId::new(0)];
    assert!(
        delivered.as_f64() >= satisfied.as_f64() - 1e-6,
        "simulator delivered {delivered} < guaranteed {satisfied}"
    );

    // And at the delivered allocation the model's predicted utility is at
    // (or above, thanks to work-conserving spare) the cap.
    let u = model.utility(delivered);
    assert!((u - 0.9).abs() < 1e-9, "predicted utility {u}");
}

#[test]
fn job_utility_inverse_matches_equalizer_grant() {
    let now = SimTime::ZERO;
    let mut mgr = JobManager::new();
    for _ in 0..3 {
        mgr.submit(
            JobSpec {
                name: "grant".into(),
                total_work: Work::from_power_secs(CpuMhz::new(3000.0), 3000.0),
                max_speed: CpuMhz::new(3000.0),
                mem: MemMb::new(1280),
                goal: CompletionGoal::relative(now, SimDuration::from_secs(3000.0), 1.25, 2.0)
                    .unwrap(),
            },
            now,
        )
        .unwrap();
    }
    let budget = CpuMhz::new(6000.0);
    let hypo = mgr.hypothetical(now, budget, &EqualizeOptions::default());
    // Equal jobs ⇒ equal split; utility at the split must match the
    // JobUtility adapter evaluated directly.
    let per_job = budget / 3.0;
    let ju = JobUtility::of(mgr.job(JobId::new(0)).unwrap(), now);
    let direct = ju.utility(per_job);
    for a in &hypo.allocation.allocations {
        assert!(a.cpu.approx_eq(per_job, 1.0), "{}", a.cpu);
        assert!((a.utility - direct).abs() < 1e-6);
    }
}

#[test]
fn facade_prelude_covers_the_whole_stack() {
    // Compile-time check that the façade exposes what a user needs; a
    // smoke call through each layer.
    let cluster = ClusterSpec::homogeneous(2, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    assert_eq!(cluster.total_cpu(), CpuMhz::new(24_000.0));

    let goal = ResponseTimeGoal::new(SimDuration::from_secs(1.0)).unwrap();
    assert_eq!(goal.utility_of_rt(SimDuration::from_secs(0.5)), 0.5);

    let queue = PsQueue::new(10.0, Work::new(100.0)).unwrap();
    assert!(queue.is_stable(CpuMhz::new(2000.0)));

    let trace = IntensityTrace::constant(5.0);
    assert_eq!(trace.lambda(SimTime::ZERO), 5.0);

    let schedule = RateSchedule::constant(100.0).unwrap();
    let template = JobTemplate {
        name_prefix: "t".into(),
        work: Work::new(1000.0),
        max_speed: CpuMhz::new(1000.0),
        mem: MemMb::new(512),
        goal_factor: 1.5,
        exhausted_factor: 3.0,
    };
    let stream = generate_job_stream(&template, schedule, 5, SimTime::from_secs(1e6), 1);
    assert_eq!(stream.len(), 5);
}
