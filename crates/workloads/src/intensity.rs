//! Transactional request-intensity traces λ(t).
//!
//! The paper's experiment applies "a constant transactional workload …
//! throughout"; the stepped and diurnal shapes support the extension
//! experiments (E3/E4 in DESIGN.md).

use serde::{Deserialize, Serialize};
use slaq_types::SimTime;

/// A deterministic request-rate trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntensityTrace {
    /// λ(t) = `rate` for all t.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// Piecewise-constant steps: `(start, rate)` with increasing starts.
    Steps {
        /// Segments in force from their start instant onward.
        steps: Vec<(SimTime, f64)>,
    },
    /// `base + amplitude · sin(2π (t − phase)/period)`, clamped at 0 —
    /// the classic diurnal curve.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Cycle length in seconds.
        period_secs: f64,
        /// Horizontal offset in seconds.
        phase_secs: f64,
    },
}

impl IntensityTrace {
    /// Constant trace helper.
    pub fn constant(rate: f64) -> Self {
        IntensityTrace::Constant { rate }
    }

    /// Request rate at instant `t` (never negative).
    pub fn lambda(&self, t: SimTime) -> f64 {
        match self {
            IntensityTrace::Constant { rate } => rate.max(0.0),
            IntensityTrace::Steps { steps } => {
                let mut rate = steps.first().map(|&(_, r)| r).unwrap_or(0.0);
                for &(start, r) in steps {
                    if t >= start {
                        rate = r;
                    } else {
                        break;
                    }
                }
                rate.max(0.0)
            }
            IntensityTrace::Diurnal {
                base,
                amplitude,
                period_secs,
                phase_secs,
            } => {
                let x =
                    2.0 * std::f64::consts::PI * (t.as_secs() - phase_secs) / period_secs.max(1e-9);
                (base + amplitude * x.sin()).max(0.0)
            }
        }
    }

    /// Mean rate over `[from, to]` by midpoint sampling with `n` panels —
    /// what the simulator uses to integrate served requests over a cycle.
    pub fn mean_lambda(&self, from: SimTime, to: SimTime, n: usize) -> f64 {
        if to <= from || n == 0 {
            return self.lambda(from);
        }
        let span = (to - from).as_secs();
        let dt = span / n as f64;
        (0..n)
            .map(|i| {
                let mid = from.as_secs() + (i as f64 + 0.5) * dt;
                self.lambda(SimTime::from_secs(mid))
            })
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_constant() {
        let t = IntensityTrace::constant(50.0);
        assert_eq!(t.lambda(SimTime::ZERO), 50.0);
        assert_eq!(t.lambda(SimTime::from_secs(1e6)), 50.0);
        assert_eq!(
            t.mean_lambda(SimTime::ZERO, SimTime::from_secs(600.0), 8),
            50.0
        );
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let t = IntensityTrace::Steps {
            steps: vec![
                (SimTime::ZERO, 10.0),
                (SimTime::from_secs(100.0), 30.0),
                (SimTime::from_secs(200.0), 5.0),
            ],
        };
        assert_eq!(t.lambda(SimTime::from_secs(50.0)), 10.0);
        assert_eq!(t.lambda(SimTime::from_secs(100.0)), 30.0);
        assert_eq!(t.lambda(SimTime::from_secs(199.0)), 30.0);
        assert_eq!(t.lambda(SimTime::from_secs(10_000.0)), 5.0);
    }

    #[test]
    fn empty_steps_are_zero() {
        let t = IntensityTrace::Steps { steps: vec![] };
        assert_eq!(t.lambda(SimTime::ZERO), 0.0);
    }

    #[test]
    fn diurnal_oscillates_and_clamps() {
        let t = IntensityTrace::Diurnal {
            base: 10.0,
            amplitude: 20.0, // dips below zero: clamped
            period_secs: 86_400.0,
            phase_secs: 0.0,
        };
        // Peak at quarter period.
        assert!((t.lambda(SimTime::from_secs(21_600.0)) - 30.0).abs() < 1e-9);
        // Trough clamped at zero.
        assert_eq!(t.lambda(SimTime::from_secs(64_800.0)), 0.0);
        assert_eq!(t.lambda(SimTime::ZERO), 10.0);
    }

    #[test]
    fn mean_lambda_integrates_steps() {
        let t = IntensityTrace::Steps {
            steps: vec![(SimTime::ZERO, 0.0), (SimTime::from_secs(50.0), 100.0)],
        };
        let mean = t.mean_lambda(SimTime::ZERO, SimTime::from_secs(100.0), 1000);
        assert!((mean - 50.0).abs() < 1.0, "{mean}");
    }

    proptest! {
        #[test]
        fn prop_lambda_never_negative(
            base in -50.0..50.0f64,
            amplitude in 0.0..100.0f64,
            t in 0.0..1e6f64,
        ) {
            let trace = IntensityTrace::Diurnal {
                base,
                amplitude,
                period_secs: 3600.0,
                phase_secs: 0.0,
            };
            prop_assert!(trace.lambda(SimTime::from_secs(t)) >= 0.0);
        }

        #[test]
        fn prop_mean_within_range(
            rate in 0.0..100.0f64,
            span in 1.0..10_000.0f64,
        ) {
            let trace = IntensityTrace::constant(rate);
            let mean = trace.mean_lambda(SimTime::ZERO, SimTime::from_secs(span), 16);
            prop_assert!((mean - rate).abs() < 1e-9);
        }
    }
}
