//! # slaq-placement — the Application Placement Controller
//!
//! The optimizer at the heart of the paper's system (the "APC" of the
//! authors' middleware, algorithmically the NOMS'08 placement heuristic
//! extended with long-running jobs). Every control cycle it receives:
//!
//! * per-entity **CPU targets** from the utility equalizer — how much CPU
//!   each transactional application and each job *should* get;
//! * node capacities (CPU MHz, memory MB) and the **previous placement**.
//!
//! and produces a placement that realizes those targets as closely as the
//! discrete constraints allow:
//!
//! * transactional applications are **fluid but clustered** — they may
//!   have at most one instance per node, each instance carries a memory
//!   footprint, and the cluster-wide allocation is the sum of per-node
//!   slices;
//! * jobs are **indivisible** — exactly one node, a memory footprint
//!   (three jobs per node in the paper's testbed), and an allocation
//!   capped by the job's maximum speed;
//! * **churn is bounded** — placements are sticky, and the number of
//!   disruptive actions per cycle (job starts/resumes/migrations/
//!   suspensions, instance starts/stops) can be capped.
//!
//! The allocation subproblem for a *fixed* placement is solved exactly as
//! a max-flow (`allocation` module, on top of `slaq-flow`); the discrete
//! placement search is the greedy-with-improvement heuristic in `solver`.
//!
//! ## Sharded solves (`shard` module)
//!
//! For large fleets the crate also offers a **zone-partitioned engine**:
//! [`ShardedSolver`] implements the same `solve(problem, prev)` interface
//! as [`Solver`] but partitions the nodes into shards (per zone label or
//! a fixed count, via [`ShardMap`]/[`ShardPlan`]), solves the shards with
//! independent warm `Solver`s — in parallel under real `rayon` — and then
//! runs a budgeted **cross-shard rebalance pass** that migrates the most
//! unsatisfied jobs from over-subscribed shards onto foreign-shard nodes
//! with residual capacity.
//!
//! Fidelity guarantees, in decreasing strength:
//!
//! * **1 shard ≡ global.** A single-shard plan routes through the exact
//!   global solve, bit for bit (differential tests pin this on the whole
//!   scenario corpus and on random problems).
//! * **k shards: feasible, near-global.** Every capacity/instance-count
//!   constraint of the merged placement still holds (`Placement::
//!   validate`); placement *quality* may trail the global solve because
//!   app demand is split across shards proportionally to capacity and a
//!   job confined to a crowded shard is only rescued by the budgeted
//!   rebalance pass. Corpus tests pin the utility gap; the scaling bench
//!   (`bench_placement_scale`) records the ~k× cut in per-shard scan
//!   width that buys.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod allocation;
pub mod placement;
pub mod problem;
#[doc(hidden)]
pub mod reference;
pub mod shard;
pub mod solver;

pub use allocation::{allocate, Allocator};
pub use placement::{Placement, PlacementChange};
pub use problem::{AppRequest, JobRequest, NodeCapacity, PlacementConfig, PlacementProblem};
pub use shard::{ShardMap, ShardPlan, ShardedSolver};
pub use solver::{solve, PlacementOutcome, Solver};
