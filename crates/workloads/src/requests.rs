//! Request-stream model: per-cycle **aggregated** request load.
//!
//! The routing tier (`slaq-routing`) apportions each control cycle's
//! requests across an application's live instances. At realistic scale
//! that is millions of requests per cycle, so requests are never evented
//! individually: a [`RequestBatch`] carries the cycle's load as a count,
//! a mean/peak rate, and a coarse sub-window histogram derived from the
//! same [`IntensityTrace`] that drives the simulator's arrival intensity.
//! [`CycleLoad`] is the fleet-wide aggregation of one cycle's batches,
//! keyed by application.

use crate::intensity::IntensityTrace;
use serde::{Deserialize, Serialize};
use slaq_types::{AppId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Aggregated request load of one application over one control cycle.
///
/// `count == buckets.iter().sum()`: the histogram partitions the window
/// into equal sub-windows and the batch total is exactly the sum of the
/// per-sub-window counts (each rounded from the trace's midpoint rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestBatch {
    /// Total requests in the window.
    pub count: u64,
    /// Mean arrival rate over the window (requests/s).
    pub mean_rate: f64,
    /// Highest sub-window arrival rate sampled (requests/s).
    pub peak_rate: f64,
    /// Requests per equal sub-window, in time order.
    pub buckets: Vec<u64>,
}

impl RequestBatch {
    /// An empty batch (zero-length window or zero rate).
    pub fn empty() -> Self {
        RequestBatch {
            count: 0,
            mean_rate: 0.0,
            peak_rate: 0.0,
            buckets: Vec::new(),
        }
    }

    /// Batch for a constant arrival rate over `window` — the single-bucket
    /// fast path the simulator uses when only the instantaneous rate is
    /// known.
    pub fn from_rate(rate: f64, window: SimDuration) -> Self {
        let secs = window.as_secs();
        if secs <= 0.0 || rate <= 0.0 {
            return RequestBatch::empty();
        }
        let count = (rate * secs).round() as u64;
        RequestBatch {
            count,
            mean_rate: count as f64 / secs,
            peak_rate: count as f64 / secs,
            buckets: vec![count],
        }
    }

    /// Batch derived from an intensity trace over `[from, from + window]`,
    /// histogrammed into `buckets` equal sub-windows (midpoint-sampled,
    /// mirroring [`IntensityTrace::mean_lambda`]).
    pub fn from_trace(
        trace: &IntensityTrace,
        from: SimTime,
        window: SimDuration,
        buckets: usize,
    ) -> Self {
        let secs = window.as_secs();
        if secs <= 0.0 || buckets == 0 {
            return RequestBatch::empty();
        }
        let sub = secs / buckets as f64;
        let mut counts = Vec::with_capacity(buckets);
        let mut peak = 0.0f64;
        for b in 0..buckets {
            let mid = SimTime::from_secs(from.as_secs() + (b as f64 + 0.5) * sub);
            let rate = trace.lambda(mid).max(0.0);
            peak = peak.max(rate);
            counts.push((rate * sub).round() as u64);
        }
        let count: u64 = counts.iter().sum();
        RequestBatch {
            count,
            mean_rate: count as f64 / secs,
            peak_rate: peak,
            buckets: counts,
        }
    }

    /// `true` when the batch carries no requests.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One control cycle's request load across the whole fleet: per-app
/// batches plus the running total, aggregated — never per-request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleLoad {
    per_app: BTreeMap<AppId, RequestBatch>,
}

impl CycleLoad {
    /// An empty cycle.
    pub fn new() -> Self {
        CycleLoad::default()
    }

    /// Record (or replace) one application's batch for this cycle.
    pub fn push(&mut self, app: AppId, batch: RequestBatch) {
        self.per_app.insert(app, batch);
    }

    /// The batch recorded for `app`, if any.
    pub fn batch(&self, app: AppId) -> Option<&RequestBatch> {
        self.per_app.get(&app)
    }

    /// Total requests across all applications this cycle.
    pub fn total_requests(&self) -> u64 {
        self.per_app.values().map(|b| b.count).sum()
    }

    /// Iterate `(app, batch)` in app-id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &RequestBatch)> {
        self.per_app.iter().map(|(&a, b)| (a, b))
    }

    /// Number of applications with a recorded batch.
    pub fn len(&self) -> usize {
        self.per_app.len()
    }

    /// `true` when no application recorded a batch.
    pub fn is_empty(&self) -> bool {
        self.per_app.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rate_rounds_to_a_single_bucket() {
        let b = RequestBatch::from_rate(26.0, SimDuration::from_secs(600.0));
        assert_eq!(b.count, 15_600);
        assert_eq!(b.buckets, vec![15_600]);
        assert!((b.mean_rate - 26.0).abs() < 1e-9);
        assert!(!b.is_empty());
    }

    #[test]
    fn degenerate_windows_yield_empty_batches() {
        assert!(RequestBatch::from_rate(26.0, SimDuration::ZERO).is_empty());
        assert!(RequestBatch::from_rate(0.0, SimDuration::from_secs(600.0)).is_empty());
        let trace = IntensityTrace::constant(5.0);
        assert!(RequestBatch::from_trace(&trace, SimTime::ZERO, SimDuration::ZERO, 4).is_empty());
        assert!(
            RequestBatch::from_trace(&trace, SimTime::ZERO, SimDuration::from_secs(10.0), 0)
                .is_empty()
        );
    }

    #[test]
    fn trace_histogram_sums_to_the_count() {
        let trace = IntensityTrace::Steps {
            steps: vec![(SimTime::ZERO, 10.0), (SimTime::from_secs(300.0), 30.0)],
        };
        let b = RequestBatch::from_trace(&trace, SimTime::ZERO, SimDuration::from_secs(600.0), 4);
        assert_eq!(b.buckets.len(), 4);
        assert_eq!(b.count, b.buckets.iter().sum::<u64>());
        // First half at 10/s, second half stepped to 30/s.
        assert_eq!(b.buckets, vec![1500, 1500, 4500, 4500]);
        assert!((b.peak_rate - 30.0).abs() < 1e-9);
        assert!((b.mean_rate - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_load_aggregates_per_app() {
        let mut load = CycleLoad::new();
        assert!(load.is_empty());
        load.push(
            AppId::new(1),
            RequestBatch::from_rate(10.0, SimDuration::from_secs(100.0)),
        );
        load.push(
            AppId::new(0),
            RequestBatch::from_rate(5.0, SimDuration::from_secs(100.0)),
        );
        assert_eq!(load.len(), 2);
        assert_eq!(load.total_requests(), 1500);
        assert_eq!(load.batch(AppId::new(0)).unwrap().count, 500);
        let order: Vec<AppId> = load.iter().map(|(a, _)| a).collect();
        assert_eq!(order, vec![AppId::new(0), AppId::new(1)]);
        // Re-pushing replaces.
        load.push(AppId::new(0), RequestBatch::empty());
        assert_eq!(load.total_requests(), 1000);
    }

    #[test]
    fn serde_round_trip() {
        let trace = IntensityTrace::constant(7.0);
        let b = RequestBatch::from_trace(&trace, SimTime::ZERO, SimDuration::from_secs(60.0), 3);
        let json = serde_json::to_string(&b).unwrap();
        let back: RequestBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
