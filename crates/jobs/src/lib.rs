//! # slaq-jobs — the long-running workload manager
//!
//! Long-running jobs are the second workload class of the paper: batch
//! computations executed inside VMs, each with a *completion-time* SLA.
//! The controller's levers are placement, suspension/resumption and
//! migration; its challenge is that the control cycle (minutes) is far
//! shorter than job runtimes (hours), so job utility must be *predicted*
//! every cycle rather than observed.
//!
//! This crate provides:
//!
//! * [`JobSpec`] / [`Job`] — the job model: total work (MHz·s), maximum
//!   useful speed (one processor in the paper's testbed), memory
//!   footprint, and a [`CompletionGoal`](slaq_utility::CompletionGoal) utility function (`job` module);
//! * [`JobUtility`] — the utility-of-CPU adapter built on projected
//!   completion time, the quantity the equalizer consumes
//!   (`utility` module);
//! * [`JobManager`] — lifecycle bookkeeping (pending → running ⇄ suspended
//!   → completed), progress integration, and the **hypothetical utility**
//!   computation: assume every outstanding job is placed simultaneously
//!   and the jobs' CPU share is arbitrarily finely divisible, then
//!   equalize expected utility among them (`manager` module).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod job;
pub mod manager;
pub mod utility;

pub use job::{Job, JobSpec, JobState};
pub use manager::{HypotheticalOutcome, JobManager, JobStats};
pub use utility::JobUtility;
