//! The **snapshot** stage of the control pipeline: an owned, `Send`
//! capture of everything a controller may observe at a control cycle.
//!
//! [`ControlInputs`] is a bundle of borrows into the
//! live simulator — perfect for the synchronous path, where the solve
//! happens inline and the world cannot move underneath it, but useless for
//! an overlapped solve that must outlive the control cycle it was sensed
//! in. [`SensingSnapshot`] is the owned counterpart: node capacities, the
//! placement in force, the whole job manager (states, remaining work,
//! SLAs) and the per-application observations, cloned once at sensing
//! time. It is `Send`, so a solve task built from it can cross a worker
//! boundary (today's worker runs inline under the sequential `rayon`
//! stand-in; real threads get the same contract for free), and
//! [`SensingSnapshot::inputs`] lends it back out as `ControlInputs` so
//! any [`Controller`](crate::Controller) can solve against the frozen
//! world without knowing it is stale.
//!
//! Staleness is the point: a plan computed from a snapshot taken at cycle
//! *k* describes the world as it *was*; whoever enacts it at cycle
//! *k + latency* must reconcile it against the world as it *is* (jobs
//! completed meanwhile, nodes failed, arrivals the plan never saw). The
//! reconciliation lives with the pipeline driver in `slaq-core`; this
//! module only guarantees the capture is complete and detached.

use crate::apps::AppObservation;
use crate::simulator::ControlInputs;
use slaq_jobs::{JobManager, JobState};
use slaq_placement::problem::NodeCapacity;
use slaq_placement::{Placement, SolveDelta};
use slaq_types::{AppId, JobId, NodeId, SimTime};
use std::collections::BTreeMap;

/// An owned, detached capture of one control cycle's observations — the
/// snapshot stage of the snapshot → solve → actuate pipeline.
#[derive(Debug, Clone)]
pub struct SensingSnapshot {
    /// Instant the snapshot was taken (the sensing cycle's `now`).
    pub now: SimTime,
    /// Node capacities as sensed (outage-affected nodes read zero).
    pub nodes: Vec<NodeCapacity>,
    /// Placement in force at sensing time.
    pub current: Placement,
    /// The job population, frozen: states, remaining work, SLAs.
    pub jobs: JobManager,
    /// Per-application observations (spec + estimated intensity).
    pub apps: Vec<AppObservation>,
}

impl SensingSnapshot {
    /// Capture the live inputs into an owned snapshot.
    pub fn capture(inputs: &ControlInputs<'_>) -> Self {
        SensingSnapshot {
            now: inputs.now,
            nodes: inputs.nodes.to_vec(),
            current: inputs.current.clone(),
            jobs: inputs.jobs.clone(),
            apps: inputs.apps.to_vec(),
        }
    }

    /// Lend the snapshot back out as controller inputs: any
    /// [`Controller`](crate::Controller) can solve against the frozen
    /// world exactly as it would against the live one.
    pub fn inputs(&self) -> ControlInputs<'_> {
        ControlInputs {
            now: self.now,
            nodes: &self.nodes,
            current: &self.current,
            jobs: &self.jobs,
            apps: &self.apps,
        }
    }
}

// A snapshot must be able to cross a solve-worker boundary.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SensingSnapshot>();
};

/// Compact placement-relevant fingerprint of one active job: where its VM
/// sits, a lifecycle tag, and how much work is left.
#[derive(Debug, Clone, Copy, PartialEq)]
struct JobPrint {
    node: Option<NodeId>,
    /// 0 = pending, 1 = running, 2 = suspended (completed jobs are not
    /// fingerprinted — they leave the placement problem entirely).
    tag: u8,
    remaining: f64,
}

/// Diffs consecutive control cycles' sensed inputs into a [`SolveDelta`]
/// — the dirty set the simulator threads through
/// [`Controller::control_delta`](crate::Controller::control_delta) into
/// the solver's churn-proportional fast path.
///
/// The tracker keeps **capture-by-diff fingerprints**, not clones of the
/// sensed world: per node `(id, cpu, mem)`, per app `(id, λ)`, per active
/// job a `(node, lifecycle, remaining)` triple — a few machine words per
/// entity instead of a second [`JobManager`]. The resulting delta is *advisory*: the
/// solver re-verifies every reuse precondition itself, so an imprecise
/// tolerance costs a wasted audit, never a wrong placement.
#[derive(Debug, Clone, Default)]
pub struct DeltaTracker {
    primed: bool,
    /// Relative drift below this fraction is ignored for app intensities
    /// and job work remainders (`0.0` = any change counts).
    tolerance: f64,
    nodes: BTreeMap<NodeId, (f64, u64)>,
    apps: BTreeMap<AppId, f64>,
    jobs: BTreeMap<JobId, JobPrint>,
}

impl DeltaTracker {
    /// A tracker flagging any relative drift beyond `tolerance` (use
    /// `0.0` to flag every change; apps and job work remainders only —
    /// lifecycle and topology changes always count).
    pub fn new(tolerance: f64) -> Self {
        DeltaTracker {
            tolerance: tolerance.max(0.0),
            ..DeltaTracker::default()
        }
    }

    /// Diff the sensed inputs against the previous cycle's fingerprints,
    /// then adopt the new fingerprints. The first observation (nothing to
    /// diff against) reports every job as arrived — a structural delta,
    /// so the solver takes the full path and primes its warm state.
    pub fn observe(&mut self, inputs: &ControlInputs<'_>) -> SolveDelta {
        let mut delta = SolveDelta::default();
        let drifted = |old: f64, new: f64, tol: f64| (new - old).abs() > tol * old.abs().max(1.0);

        // --- nodes: outages read as zero capacity, so "dead" means the
        // sensed CPU collapsed to zero (or the id vanished). ---
        let mut cur_nodes = BTreeMap::new();
        for n in inputs.nodes {
            cur_nodes.insert(n.id, (n.cpu.as_f64(), n.mem.as_u64()));
        }
        if self.primed {
            for (&id, &(cpu, mem)) in &cur_nodes {
                match self.nodes.get(&id) {
                    None => delta.recovered_nodes.push(id),
                    Some(&(old_cpu, old_mem)) => {
                        if old_cpu == 0.0 && cpu > 0.0 {
                            delta.recovered_nodes.push(id);
                        } else if old_cpu > 0.0 && cpu == 0.0 {
                            delta.dead_nodes.push(id);
                        } else if (old_cpu, old_mem) != (cpu, mem) {
                            delta.capacity_changed_nodes.push(id);
                        }
                    }
                }
            }
            for &id in self.nodes.keys() {
                if !cur_nodes.contains_key(&id) {
                    delta.dead_nodes.push(id);
                }
            }
        }

        // --- apps: intensity drift beyond the tolerance. ---
        let mut cur_apps = BTreeMap::new();
        for a in inputs.apps {
            cur_apps.insert(a.id, a.lambda);
        }
        if self.primed {
            for (&id, &lambda) in &cur_apps {
                match self.apps.get(&id) {
                    None => delta.drifted_apps.push(id),
                    Some(&old) if drifted(old, lambda, self.tolerance) => {
                        delta.drifted_apps.push(id)
                    }
                    Some(_) => {}
                }
            }
            for &id in self.apps.keys() {
                if !cur_apps.contains_key(&id) {
                    delta.drifted_apps.push(id);
                }
            }
        }

        // --- jobs: arrivals, completions, lifecycle/node moves, work
        // drift. Completed jobs leave the problem, so completion shows up
        // as a fingerprint disappearing. ---
        let mut cur_jobs = BTreeMap::new();
        for job in inputs.jobs.jobs() {
            let tag = match job.state {
                JobState::Pending => 0u8,
                JobState::Running { .. } => 1,
                JobState::Suspended { .. } => 2,
                JobState::Completed { .. } => continue,
            };
            cur_jobs.insert(
                job.id,
                JobPrint {
                    node: job.state.node(),
                    tag,
                    remaining: job.remaining.as_f64(),
                },
            );
        }
        for (&id, print) in &cur_jobs {
            match self.jobs.get(&id) {
                None => delta.arrived_jobs.push(id),
                Some(old) => {
                    if old.tag != print.tag
                        || old.node != print.node
                        || drifted(old.remaining, print.remaining, self.tolerance)
                    {
                        delta.resized_jobs.push(id);
                    }
                }
            }
        }
        if self.primed {
            for &id in self.jobs.keys() {
                if !cur_jobs.contains_key(&id) {
                    delta.completed_jobs.push(id);
                }
            }
        }

        self.primed = true;
        self.nodes = cur_nodes;
        self.apps = cur_apps;
        self.jobs = cur_jobs;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_jobs::JobSpec;
    use slaq_types::{CpuMhz, JobId, MemMb, NodeId, SimDuration, Work};
    use slaq_utility::CompletionGoal;

    fn job_spec(work_secs: f64) -> JobSpec {
        JobSpec {
            name: "snap".into(),
            total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::ZERO,
                SimDuration::from_secs(work_secs),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    #[test]
    fn capture_is_detached_from_the_live_world() {
        let nodes = vec![NodeCapacity {
            id: NodeId::new(0),
            cpu: CpuMhz::new(12_000.0),
            mem: MemMb::new(4096),
        }];
        let mut jobs = JobManager::new();
        jobs.submit(job_spec(1000.0), SimTime::ZERO).unwrap();
        let mut placement = Placement::empty();
        placement
            .jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(3000.0)));
        let inputs = ControlInputs {
            now: SimTime::from_secs(600.0),
            nodes: &nodes,
            current: &placement,
            jobs: &jobs,
            apps: &[],
        };
        let snap = SensingSnapshot::capture(&inputs);

        // The live world moves on; the snapshot does not.
        jobs.job_mut(JobId::new(0))
            .unwrap()
            .start(NodeId::new(0), SimTime::from_secs(600.0))
            .unwrap();
        placement.jobs.clear();

        assert_eq!(snap.now, SimTime::from_secs(600.0));
        assert_eq!(snap.jobs.len(), 1);
        assert!(matches!(
            snap.jobs.job(JobId::new(0)).unwrap().state,
            slaq_jobs::JobState::Pending
        ));
        assert_eq!(snap.current.jobs.len(), 1);

        // And it lends itself back out as equivalent inputs.
        let lent = snap.inputs();
        assert_eq!(lent.now, snap.now);
        assert_eq!(lent.current.job_node(JobId::new(0)), Some(NodeId::new(0)));
        assert_eq!(lent.nodes.len(), 1);
    }

    #[test]
    fn delta_tracker_diffs_consecutive_cycles() {
        let node = |cpu: f64| NodeCapacity {
            id: NodeId::new(0),
            cpu: CpuMhz::new(cpu),
            mem: MemMb::new(4096),
        };
        let placement = Placement::empty();
        let mut jobs = JobManager::new();
        jobs.submit(job_spec(1000.0), SimTime::ZERO).unwrap();
        let mut tracker = DeltaTracker::new(0.0);

        // First observation: unprimed — everything reads as arrived, so
        // the hint is structural and the solver takes the full path.
        let nodes = vec![node(12_000.0)];
        let first = tracker.observe(&ControlInputs {
            now: SimTime::ZERO,
            nodes: &nodes,
            current: &placement,
            jobs: &jobs,
            apps: &[],
        });
        assert_eq!(first.arrived_jobs, vec![JobId::new(0)]);
        assert!(first.is_structural());

        // Quiet cycle: nothing changed, nothing reported.
        let quiet = tracker.observe(&ControlInputs {
            now: SimTime::from_secs(600.0),
            nodes: &nodes,
            current: &placement,
            jobs: &jobs,
            apps: &[],
        });
        assert!(quiet.is_empty(), "{quiet:?}");

        // A job starts (lifecycle + node change), another arrives, and
        // the node's sensed capacity collapses to zero (outage).
        jobs.job_mut(JobId::new(0))
            .unwrap()
            .start(NodeId::new(0), SimTime::from_secs(600.0))
            .unwrap();
        jobs.submit(job_spec(500.0), SimTime::from_secs(900.0))
            .unwrap();
        let dead = vec![node(0.0)];
        let churn = tracker.observe(&ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &dead,
            current: &placement,
            jobs: &jobs,
            apps: &[],
        });
        assert_eq!(churn.resized_jobs, vec![JobId::new(0)]);
        assert_eq!(churn.arrived_jobs, vec![JobId::new(1)]);
        assert_eq!(churn.dead_nodes, vec![NodeId::new(0)]);
        assert!(churn.is_structural());

        // Recovery is reported symmetrically.
        let back = tracker.observe(&ControlInputs {
            now: SimTime::from_secs(1800.0),
            nodes: &nodes,
            current: &placement,
            jobs: &jobs,
            apps: &[],
        });
        assert_eq!(back.recovered_nodes, vec![NodeId::new(0)]);
        assert!(back.resized_jobs.is_empty());
    }
}
