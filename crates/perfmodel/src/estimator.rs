//! Online demand estimation — the stand-in for the authors' "work
//! profiler". Exponentially weighted moving averages over per-cycle
//! observations of arrival rate and per-request service demand.

use serde::{Deserialize, Serialize};
use slaq_types::{SimDuration, Work};

/// EWMA estimator for a transactional application's demand parameters.
///
/// Each control cycle the simulator reports the number of completed
/// requests and the CPU work they consumed; the estimator maintains
/// smoothed arrival-rate and service-demand estimates that feed
/// [`crate::TransactionalModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandEstimator {
    /// Smoothing factor in (0, 1]; 1 = no smoothing (trust the last cycle).
    alpha: f64,
    lambda: Option<f64>,
    service: Option<Work>,
}

impl DemandEstimator {
    /// Create with smoothing factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Option<Self> {
        (alpha > 0.0 && alpha <= 1.0).then_some(DemandEstimator {
            alpha,
            lambda: None,
            service: None,
        })
    }

    /// Record one observation window: `requests` completed over `window`
    /// consuming `total_work` CPU work. Windows of zero length are ignored.
    pub fn observe(&mut self, requests: u64, total_work: Work, window: SimDuration) {
        let secs = window.as_secs();
        if secs <= 0.0 {
            return;
        }
        let lam_obs = requests as f64 / secs;
        self.lambda = Some(match self.lambda {
            None => lam_obs,
            Some(prev) => prev + self.alpha * (lam_obs - prev),
        });
        if requests > 0 {
            let svc_obs = total_work / (requests as f64);
            self.service = Some(match self.service {
                None => svc_obs,
                Some(prev) => {
                    Work::new(prev.as_f64() + self.alpha * (svc_obs.as_f64() - prev.as_f64()))
                }
            });
        }
    }

    /// Smoothed arrival rate (req/s); `None` before the first observation.
    pub fn lambda(&self) -> Option<f64> {
        self.lambda
    }

    /// Smoothed per-request service demand; `None` until a request has
    /// been observed.
    pub fn service(&self) -> Option<Work> {
        self.service
    }

    /// Smoothed arrival rate with a fallback for the cold-start cycle.
    pub fn lambda_or(&self, default: f64) -> f64 {
        self.lambda.unwrap_or(default)
    }

    /// Smoothed service demand with a fallback for the cold-start cycle.
    pub fn service_or(&self, default: Work) -> Work {
        self.service.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_alpha() {
        assert!(DemandEstimator::new(0.0).is_none());
        assert!(DemandEstimator::new(1.5).is_none());
        assert!(DemandEstimator::new(1.0).is_some());
    }

    #[test]
    fn first_observation_seeds_the_estimate() {
        let mut e = DemandEstimator::new(0.3).unwrap();
        assert_eq!(e.lambda(), None);
        e.observe(600, Work::new(1_200_000.0), SimDuration::from_secs(600.0));
        assert_eq!(e.lambda(), Some(1.0));
        assert_eq!(e.service(), Some(Work::new(2000.0)));
    }

    #[test]
    fn ewma_converges_to_a_steady_signal() {
        let mut e = DemandEstimator::new(0.3).unwrap();
        // Start biased, then feed constant truth.
        e.observe(100, Work::new(50_000.0), SimDuration::from_secs(100.0));
        for _ in 0..40 {
            e.observe(
                5000,
                Work::new(10_000_000.0),
                SimDuration::from_secs(1000.0),
            );
        }
        assert!((e.lambda().unwrap() - 5.0).abs() < 1e-3);
        assert!((e.service().unwrap().as_f64() - 2000.0).abs() < 1.0);
    }

    #[test]
    fn zero_request_windows_keep_service_estimate() {
        let mut e = DemandEstimator::new(0.5).unwrap();
        e.observe(10, Work::new(1000.0), SimDuration::from_secs(10.0));
        let svc = e.service().unwrap();
        e.observe(0, Work::ZERO, SimDuration::from_secs(10.0));
        assert_eq!(e.service(), Some(svc)); // unchanged
        assert!((e.lambda().unwrap() - 0.5).abs() < 1e-12); // decays toward 0
    }

    #[test]
    fn zero_length_windows_are_ignored() {
        let mut e = DemandEstimator::new(0.5).unwrap();
        e.observe(10, Work::new(1000.0), SimDuration::ZERO);
        assert_eq!(e.lambda(), None);
    }

    #[test]
    fn fallbacks_cover_cold_start() {
        let e = DemandEstimator::new(0.5).unwrap();
        assert_eq!(e.lambda_or(7.0), 7.0);
        assert_eq!(e.service_or(Work::new(3.0)), Work::new(3.0));
    }

    proptest! {
        #[test]
        fn prop_estimate_stays_within_observed_range(
            alpha in 0.01..1.0f64,
            rates in proptest::collection::vec(0.1..100.0f64, 1..30),
        ) {
            let mut e = DemandEstimator::new(alpha).unwrap();
            for &r in &rates {
                let requests = (r * 100.0).round() as u64;
                e.observe(requests, Work::new(requests as f64), SimDuration::from_secs(100.0));
            }
            let observed: Vec<f64> = rates.iter().map(|r| (r * 100.0).round() / 100.0).collect();
            let lo = observed.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = observed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let est = e.lambda().unwrap();
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }
}
