//! The pipelined control plane: **snapshot → solve → actuate** with
//! overlapped placement solves.
//!
//! The paper's controller is synchronous: sense demand, solve placement,
//! enact — all inside one 600 s cycle, with the whole world waiting on
//! the solve. Real SLA-driven placers decouple the stages: observation is
//! cheap and frequent, solving is expensive and runs *beside* the system,
//! and enactment applies a plan that is necessarily a little stale. This
//! module models that decoupling on top of the simulator's control
//! interface:
//!
//! 1. **Snapshot** — at cycle *k* the live
//!    [`ControlInputs`] are captured into an
//!    owned, `Send` [`SensingSnapshot`] (the `slaq-sim` sensing layer)
//!    and wrapped in a [`SolveTask`].
//! 2. **Solve** — the task goes to a [`SolveWorker`]. The in-tree
//!    [`InlineSolveWorker`] executes the wrapped controller immediately
//!    (the offline `rayon` stand-in is sequential, so there is no thread
//!    to hand it to), records the wall-clock solve latency, and buffers
//!    the controller's model-side metric series; a threaded worker would
//!    implement the same two-method contract (`dispatch`/`drain`) over
//!    `rayon::spawn` and a channel — the snapshot, the task and the
//!    completed solve are all `Send` already.
//! 3. **Actuate** — at cycle *k + latency* the plan is **reconciled**
//!    against the *current* world ([`reconcile`]): assignments of jobs
//!    that completed meanwhile are dropped, assignments on nodes that
//!    died are dropped, running jobs the stale plan never knew about are
//!    kept where they are instead of being suspended or migrated by
//!    omission, allocations are clamped to live node capacities, and the
//!    per-cycle change budget is re-enforced against the live placement.
//!
//! ### Staleness semantics
//!
//! [`PipelinedController`] wraps any [`Controller`] and implements
//! [`Controller`] itself, so `Simulator::run` needs no special mode: with
//! `latency_cycles = L`, the placement returned at cycle *k* is the
//! reconciled plan solved from cycle *k − L*'s snapshot (the first *L*
//! cycles keep the placement unchanged while the pipeline fills). Jobs
//! that arrive inside the staleness window wait one extra plan for their
//! first placement; demand shifts are acted on *L* cycles late; the
//! reconciliation guarantees the stale plan can never violate liveness
//! (completed jobs, dead nodes) or capacity feasibility, and re-enforces
//! the change budget best-effort (see [`reconcile`] for the two corners
//! where forced repairs can exceed it).
//! With `L = 0` the pipeline degenerates to the synchronous path — same
//! snapshot, same solve, a no-op reconciliation — and is pinned
//! bit-identical to it by the corpus differential gate.
//!
//! Every enacted plan records pipeline series into the run's
//! [`MetricsSink`]: `pipeline_solve_micros` (wall-clock solve latency),
//! `pipeline_staleness_secs` / `pipeline_staleness_cycles` (age of the
//! enacted plan), and `pipeline_reconciled` (how many assignments the
//! reconciliation had to touch).

use slaq_obs::Recorder;
use slaq_placement::{Placement, PlacementChange};
use slaq_sim::{ControlInputs, Controller, MetricsSink, SensingSnapshot};
use slaq_types::{AppId, CpuMhz, JobId, MemMb, NodeId, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// One dispatched solve: a sequence number and the frozen world to solve
/// against.
#[derive(Debug, Clone)]
pub struct SolveTask {
    /// Control-cycle index the snapshot was taken at.
    pub seq: u64,
    /// The frozen world.
    pub snapshot: SensingSnapshot,
}

/// A finished solve, ready for (possibly deferred) actuation.
#[derive(Debug, Clone)]
pub struct CompletedSolve {
    /// Control-cycle index of the originating snapshot.
    pub seq: u64,
    /// Instant the snapshot was taken.
    pub snapshot_time: SimTime,
    /// Placement that was in force at snapshot time — the reconciler uses
    /// it to tell deliberate plan decisions from mere ignorance of events
    /// inside the staleness window.
    pub snapshot_placement: Placement,
    /// The plan the controller produced from the snapshot.
    pub plan: Placement,
    /// Model-side series the controller recorded during the solve,
    /// buffered for merging into the run's sink when the solve lands in
    /// the pipeline's completion queue.
    pub metrics: MetricsSink,
    /// Wall-clock latency of the solve stage, microseconds.
    pub solve_micros: f64,
}

/// The solve stage's worker abstraction: accepts [`SolveTask`]s and hands
/// back [`CompletedSolve`]s in dispatch order.
///
/// The contract is deliberately asynchronous-shaped (`dispatch` may
/// return before the solve ran; `drain` returns whatever finished) even
/// though the in-tree implementation solves inline — the offline `rayon`
/// stand-in has no threads to offer. Swapping in the real crate makes a
/// spawning worker a drop-in: every type crossing this boundary is `Send`.
pub trait SolveWorker {
    /// Accept a task. May solve it inline or hand it to a worker thread.
    fn dispatch(&mut self, task: SolveTask);
    /// Solves finished since the last call, in dispatch order.
    fn drain(&mut self) -> Vec<CompletedSolve>;
    /// Install an observability [`Recorder`] on the worker (and the
    /// controller it wraps, if any). Workers that don't record ignore
    /// it; the recorder observes only and never steers a solve.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }
}

/// A [`SolveWorker`] that executes the wrapped controller synchronously
/// at dispatch time (the sequential stand-in path), measuring the
/// wall-clock solve latency the pipeline reports.
pub struct InlineSolveWorker {
    controller: Box<dyn Controller>,
    done: Vec<CompletedSolve>,
    recorder: Recorder,
    k_solve: slaq_obs::Key,
}

impl InlineSolveWorker {
    /// Worker around the controller whose solves are being pipelined.
    pub fn new(controller: Box<dyn Controller>) -> Self {
        InlineSolveWorker {
            controller,
            done: Vec::new(),
            recorder: Recorder::off(),
            k_solve: slaq_obs::Key::default(),
        }
    }
}

impl SolveWorker for InlineSolveWorker {
    fn dispatch(&mut self, task: SolveTask) {
        let started = Instant::now();
        let mut sink = MetricsSink::new();
        let span = self.recorder.span(self.k_solve);
        let plan = self.controller.control(&task.snapshot.inputs(), &mut sink);
        drop(span);
        let solve_micros = started.elapsed().as_secs_f64() * 1e6;
        let snapshot = task.snapshot;
        self.done.push(CompletedSolve {
            seq: task.seq,
            snapshot_time: snapshot.now,
            snapshot_placement: snapshot.current,
            plan,
            metrics: sink,
            solve_micros,
        });
    }

    fn drain(&mut self) -> Vec<CompletedSolve> {
        std::mem::take(&mut self.done)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.k_solve = recorder.key("pipeline.solve");
        self.controller.set_recorder(recorder.clone());
        self.recorder = recorder;
    }
}

/// What the reconciliation had to do to make a stale plan safe against
/// the live world.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileOutcome {
    /// Assignments dropped because their job completed (or is unknown).
    pub dropped_inactive: usize,
    /// Assignments (job or instance) dropped because their node is down.
    pub dropped_dead: usize,
    /// Live running jobs the plan never knew about, re-grafted onto their
    /// current node.
    pub grafted: usize,
    /// Live running jobs the plan would have moved out of ignorance, kept
    /// in place instead.
    pub kept_in_place: usize,
    /// Node-level allocation clamps applied (overcommitted CPU scaled
    /// down, overcommitted memory relieved).
    pub clamped: usize,
    /// Placement starts cancelled to stay inside the change budget.
    pub cancelled: usize,
}

impl ReconcileOutcome {
    /// Total number of plan edits the reconciliation made.
    pub fn total(&self) -> usize {
        self.dropped_inactive
            + self.dropped_dead
            + self.grafted
            + self.kept_in_place
            + self.clamped
            + self.cancelled
    }
}

/// Reconcile a possibly stale `plan` against the **current** world so it
/// can be enacted safely: see the module docs for the rule set. A fresh
/// plan (solved from the very inputs it is enacted against) passes
/// through untouched — that is what makes the zero-latency pipeline
/// bit-identical to the synchronous path.
///
/// `snapshot_placement` is the placement that was in force when the plan
/// was solved: a running job absent from it is one the plan could not
/// have deliberately suspended or migrated, so its live assignment wins.
/// `max_changes` re-enforces the per-cycle change budget against the
/// live placement: drift-induced changes are cancelled cheapest-first —
/// migrations revert to the job's live node, then placement starts,
/// newest entities first. Suspensions and stops are never cancelled, so
/// the cap can still be exceeded in two corners, both involving a job
/// whose live node no longer fits it under this plan: a drift migration
/// that cannot revert, and a drift suspend of a running job the plan
/// never saw and could not keep (its eviction is forced either way).
/// The `pipeline_reconciled` series counts every such repair, so budget
/// overshoot is observable.
pub fn reconcile(
    plan: &mut Placement,
    snapshot_placement: &Placement,
    inputs: &ControlInputs<'_>,
    max_changes: Option<usize>,
) -> ReconcileOutcome {
    let mut out = ReconcileOutcome::default();
    let live: BTreeMap<NodeId, (CpuMhz, MemMb)> = inputs
        .nodes
        .iter()
        .map(|n| (n.id, (n.cpu, n.mem)))
        .collect();
    let dead = |id: NodeId| live.get(&id).is_none_or(|&(cpu, _)| cpu.is_zero());

    // 1. Jobs that completed (or are unknown) hold no assignment.
    plan.jobs.retain(|&j, _| {
        let active = inputs
            .jobs
            .job(j)
            .map(|job| job.is_active())
            .unwrap_or(false);
        if !active {
            out.dropped_inactive += 1;
        }
        active
    });

    // 2. Nothing lands on a dead node.
    plan.jobs.retain(|_, &mut (node, _)| {
        if dead(node) {
            out.dropped_dead += 1;
            false
        } else {
            true
        }
    });
    for slices in plan.apps.values_mut() {
        slices.retain(|&node, _| {
            if dead(node) {
                out.dropped_dead += 1;
                false
            } else {
                true
            }
        });
    }

    // Residual capacities of the live nodes under the plan.
    let mut cpu_free: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut mem_free: BTreeMap<NodeId, MemMb> = BTreeMap::new();
    for (&id, &(cpu, mem)) in &live {
        if !dead(id) {
            cpu_free.insert(id, cpu.as_f64());
            mem_free.insert(id, mem);
        }
    }
    let app_mem = |app: AppId| -> MemMb {
        inputs
            .apps
            .iter()
            .find(|a| a.id == app)
            .map(|a| a.spec.mem_per_instance)
            .unwrap_or(MemMb::ZERO)
    };
    let job_mem = |job: JobId| -> MemMb {
        inputs
            .jobs
            .job(job)
            .map(|j| j.spec.mem)
            .unwrap_or(MemMb::ZERO)
    };
    for (&app, slices) in &plan.apps {
        let mem = app_mem(app);
        for (&node, &cpu) in slices {
            if let Some(f) = cpu_free.get_mut(&node) {
                *f -= cpu.as_f64();
            }
            if let Some(f) = mem_free.get_mut(&node) {
                *f = f.saturating_sub(mem);
            }
        }
    }
    for (&job, &(node, cpu)) in &plan.jobs {
        if let Some(f) = cpu_free.get_mut(&node) {
            *f -= cpu.as_f64();
        }
        if let Some(f) = mem_free.get_mut(&node) {
            *f = f.saturating_sub(job_mem(job));
        }
    }

    // 3. Continuity: a job running *now* that the plan's snapshot did not
    // know as placed was placed by an interim plan — the stale plan's
    // omission (or relocation) of it is ignorance, not a decision. Keep
    // it where it runs whenever the capacity still allows.
    for (&job, &(node, live_alloc)) in &inputs.current.jobs {
        if snapshot_placement.jobs.contains_key(&job) || dead(node) {
            continue;
        }
        let mem = job_mem(job);
        match plan.jobs.get(&job).copied() {
            // The plan moved a job it never saw running: keep it put.
            // Memory is the hard gate; the CPU grant clamps to whatever
            // residual remains (possibly zero — a running job at a zero
            // guarantee still draws work-conserving spare and dodges a
            // suspend/resume round trip).
            Some((planned, alloc)) if planned != node => {
                if mem_free.get(&node).is_some_and(|f| f.fits(mem)) {
                    if let Some(f) = cpu_free.get_mut(&planned) {
                        *f += alloc.as_f64();
                    }
                    if let Some(f) = mem_free.get_mut(&planned) {
                        *f += mem;
                    }
                    let grant = alloc.as_f64().min(cpu_free[&node]).max(0.0);
                    *cpu_free.get_mut(&node).expect("alive node") -= grant;
                    let mf = mem_free.get_mut(&node).expect("alive node");
                    *mf = mf.saturating_sub(mem);
                    plan.jobs.insert(job, (node, CpuMhz::new(grant)));
                    out.kept_in_place += 1;
                }
            }
            // The plan omitted a job it never saw running: graft it back.
            None => {
                if mem_free.get(&node).is_some_and(|f| f.fits(mem)) {
                    let grant = live_alloc.as_f64().min(cpu_free[&node]).max(0.0);
                    *cpu_free.get_mut(&node).expect("alive node") -= grant;
                    let mf = mem_free.get_mut(&node).expect("alive node");
                    *mf = mf.saturating_sub(mem);
                    plan.jobs.insert(job, (node, CpuMhz::new(grant)));
                    out.grafted += 1;
                }
            }
            Some(_) => {}
        }
    }

    // 4. Clamp guard: a plan that still overcommits a live node (it
    // should not, after the steps above) gets its CPU scaled down
    // proportionally and its newest jobs shed until memory fits.
    let mut nodes_over: Vec<NodeId> = Vec::new();
    for (&node, &(cap, mem_cap)) in &live {
        if dead(node) {
            continue;
        }
        let mut cpu_used = 0.0;
        let mut mem_used = MemMb::ZERO;
        for slices in plan.apps.values() {
            if let Some(c) = slices.get(&node) {
                cpu_used += c.as_f64();
            }
        }
        for (&app, slices) in &plan.apps {
            if slices.contains_key(&node) {
                mem_used += app_mem(app);
            }
        }
        for (&job, &(n, c)) in &plan.jobs {
            if n == node {
                cpu_used += c.as_f64();
                mem_used += job_mem(job);
            }
        }
        if cpu_used > cap.as_f64() + 1e-6 || !mem_cap.fits(mem_used) {
            nodes_over.push(node);
        }
    }
    for node in nodes_over {
        let (cap, mem_cap) = live[&node];
        // Shed newest jobs until memory fits.
        loop {
            let mem_used: MemMb = plan
                .apps
                .iter()
                .filter(|(_, s)| s.contains_key(&node))
                .map(|(&a, _)| app_mem(a))
                .sum::<MemMb>()
                + plan
                    .jobs
                    .iter()
                    .filter(|&(_, &(n, _))| n == node)
                    .map(|(&j, _)| job_mem(j))
                    .sum::<MemMb>();
            if mem_cap.fits(mem_used) {
                break;
            }
            let Some(&victim) = plan
                .jobs
                .iter()
                .filter(|&(_, &(n, _))| n == node)
                .map(|(j, _)| j)
                .next_back()
            else {
                break;
            };
            plan.jobs.remove(&victim);
            out.clamped += 1;
        }
        // Scale CPU down proportionally.
        let total: f64 = plan
            .apps
            .values()
            .filter_map(|s| s.get(&node))
            .map(|c| c.as_f64())
            .sum::<f64>()
            + plan
                .jobs
                .values()
                .filter(|&&(n, _)| n == node)
                .map(|&(_, c)| c.as_f64())
                .sum::<f64>();
        if total > cap.as_f64() + 1e-6 {
            let scale = cap.as_f64() / total;
            for slices in plan.apps.values_mut() {
                if let Some(c) = slices.get_mut(&node) {
                    *c = *c * scale;
                }
            }
            for (n, c) in plan.jobs.values_mut() {
                if *n == node {
                    *c = *c * scale;
                }
            }
            out.clamped += 1;
        }
    }

    // 5. Re-enforce the change budget against the live placement. Drift
    // inside the staleness window adds changes the solver never
    // budgeted: placement starts of entities the world dropped,
    // migrations of jobs an interim plan relocated, and suspends of
    // running jobs the plan never saw and step 3 could not keep. Cancel
    // the cheapest first — migrations revert to the job's live node (it
    // keeps running, zero disruption), then job starts newest-id first,
    // then instance starts. Suspensions and stops are never cancelled
    // (re-placing the job is exactly what failed in step 3), so the cap
    // can still be exceeded by unrevertable migrations and forced
    // suspends — see the function docs.
    if let Some(cap) = max_changes {
        let diff = plan.diff(inputs.current);
        if diff.len() > cap {
            let mut excess = diff.len() - cap;
            // Migrations first: keep the job at its live node when the
            // residual capacity there (conservatively tracked — clamps
            // and cancellations only free more) still fits it.
            let mut migrations: Vec<(JobId, NodeId, NodeId)> = diff
                .iter()
                .filter_map(|c| match c {
                    PlacementChange::MigrateJob { job, from, to } => Some((*job, *from, *to)),
                    _ => None,
                })
                .collect();
            migrations.sort_unstable_by_key(|m| std::cmp::Reverse(m.0));
            for (job, from, to) in migrations {
                if excess == 0 {
                    break;
                }
                let mem = job_mem(job);
                if dead(from) || !mem_free.get(&from).is_some_and(|f| f.fits(mem)) {
                    continue;
                }
                let alloc = plan.job_alloc(job);
                if let Some(f) = cpu_free.get_mut(&to) {
                    *f += alloc.as_f64();
                }
                if let Some(f) = mem_free.get_mut(&to) {
                    *f += mem;
                }
                let grant = alloc.as_f64().min(cpu_free[&from]).max(0.0);
                *cpu_free.get_mut(&from).expect("alive node") -= grant;
                let mf = mem_free.get_mut(&from).expect("alive node");
                *mf = mf.saturating_sub(mem);
                plan.jobs.insert(job, (from, CpuMhz::new(grant)));
                out.cancelled += 1;
                excess -= 1;
            }
            let mut job_starts: Vec<JobId> = diff
                .iter()
                .filter_map(|c| match c {
                    PlacementChange::StartJob { job, .. } => Some(*job),
                    _ => None,
                })
                .collect();
            job_starts.sort_unstable_by(|a, b| b.cmp(a));
            for job in job_starts {
                if excess == 0 {
                    break;
                }
                plan.jobs.remove(&job);
                out.cancelled += 1;
                excess -= 1;
            }
            let mut inst_starts: Vec<(AppId, NodeId)> = diff
                .iter()
                .filter_map(|c| match c {
                    PlacementChange::StartInstance { app, node } => Some((*app, *node)),
                    _ => None,
                })
                .collect();
            inst_starts.sort_unstable_by(|a, b| b.cmp(a));
            for (app, node) in inst_starts {
                if excess == 0 {
                    break;
                }
                if let Some(slices) = plan.apps.get_mut(&app) {
                    slices.remove(&node);
                    out.cancelled += 1;
                    excess -= 1;
                }
            }
        }
    }

    out
}

/// A [`Controller`] adapter that pipelines another controller's solves:
/// the plan solved from cycle *k*'s snapshot is enacted at cycle
/// *k + latency_cycles*, reconciled against the live world (see the
/// module docs for the staleness semantics).
pub struct PipelinedController {
    worker: Box<dyn SolveWorker>,
    latency_cycles: u64,
    max_changes: Option<usize>,
    /// When several matured plans are due in the same cycle, enact only
    /// the freshest (`true`, default) or strictly one per cycle in FIFO
    /// order (`false`), draining the backlog across later cycles.
    supersede: bool,
    cycle: u64,
    pending: VecDeque<CompletedSolve>,
    /// Observability handle: the pipeline times reconciliation
    /// (`pipeline.reconcile`) and counts superseded plans and reconcile
    /// drops. Observes only — enactment decisions never read it.
    recorder: Recorder,
    k_reconcile: slaq_obs::Key,
    k_superseded: slaq_obs::Key,
    k_drops: slaq_obs::Key,
}

impl PipelinedController {
    /// Pipeline `inner` behind an [`InlineSolveWorker`] with the given
    /// enactment latency. `max_changes` is the per-cycle change budget
    /// the reconciliation re-enforces against the live placement (pass
    /// the same value the inner controller's placement config uses).
    pub fn new(
        inner: Box<dyn Controller>,
        latency_cycles: u32,
        max_changes: Option<usize>,
    ) -> Self {
        Self::with_worker(
            Box::new(InlineSolveWorker::new(inner)),
            latency_cycles,
            max_changes,
        )
    }

    /// Pipeline over a custom [`SolveWorker`] (e.g. a threaded one once
    /// the real `rayon` is available).
    pub fn with_worker(
        worker: Box<dyn SolveWorker>,
        latency_cycles: u32,
        max_changes: Option<usize>,
    ) -> Self {
        PipelinedController {
            worker,
            latency_cycles: latency_cycles as u64,
            max_changes,
            supersede: true,
            cycle: 0,
            pending: VecDeque::new(),
            recorder: Recorder::off(),
            k_reconcile: slaq_obs::Key::default(),
            k_superseded: slaq_obs::Key::default(),
            k_drops: slaq_obs::Key::default(),
        }
    }

    /// Set the supersede policy (builder form): `true` (default) enacts
    /// only the freshest of several same-cycle matured plans; `false`
    /// enacts strictly one plan per cycle in FIFO order. With a worker
    /// that completes every solve by its enactment cycle (e.g. the
    /// inline worker) at most one plan matures per cycle, so both
    /// policies coincide — they only diverge when the worker falls
    /// behind.
    pub fn with_supersede(mut self, supersede: bool) -> Self {
        self.supersede = supersede;
        self
    }

    /// The configured enactment latency, in control cycles.
    pub fn latency_cycles(&self) -> u32 {
        self.latency_cycles as u32
    }

    /// The supersede policy in force.
    pub fn supersede(&self) -> bool {
        self.supersede
    }
}

impl Controller for PipelinedController {
    fn control(&mut self, inputs: &ControlInputs<'_>, metrics: &mut MetricsSink) -> Placement {
        let k = self.cycle;
        self.cycle += 1;

        // Snapshot + dispatch this cycle's solve. A solve's buffered
        // model-side series merges into the run's sink as soon as it
        // completes (drain order = dispatch order, so each series stays
        // time-sorted) — not when its plan lands — so no series samples
        // are lost even for plans still in flight at the horizon.
        let snapshot = SensingSnapshot::capture(inputs);
        self.worker.dispatch(SolveTask { seq: k, snapshot });
        for mut done in self.worker.drain() {
            metrics.merge(std::mem::take(&mut done.metrics));
            self.pending.push_back(done);
        }

        // Pop matured plans: under the supersede policy every due plan is
        // consumed and later plans replace earlier ones; under FIFO
        // exactly one due plan is enacted and the rest stay queued for
        // the following cycles.
        let mut chosen: Option<CompletedSolve> = None;
        let mut superseded = 0usize;
        while self
            .pending
            .front()
            .is_some_and(|c| c.seq + self.latency_cycles <= k)
        {
            let done = self.pending.pop_front().expect("checked non-empty");
            if chosen.replace(done).is_some() {
                superseded += 1;
            }
            if !self.supersede {
                break;
            }
        }
        let Some(done) = chosen else {
            // Pipeline still filling: keep the current placement.
            return inputs.current.clone();
        };

        metrics.record("pipeline_solve_micros", inputs.now, done.solve_micros);
        metrics.record(
            "pipeline_staleness_secs",
            inputs.now,
            (inputs.now - done.snapshot_time).as_secs(),
        );
        metrics.record(
            "pipeline_staleness_cycles",
            inputs.now,
            (k - done.seq) as f64,
        );
        if superseded > 0 {
            metrics.record("pipeline_superseded", inputs.now, superseded as f64);
            self.recorder.count(self.k_superseded, superseded as u64);
        }

        let mut plan = done.plan;
        // Audit what reconciliation does to the stale plan: snapshot it
        // first (only when recording), diff after, tag every repair.
        let audit_before = self.recorder.is_enabled().then(|| plan.clone());
        let span = self.recorder.span(self.k_reconcile);
        let outcome = reconcile(
            &mut plan,
            &done.snapshot_placement,
            inputs,
            self.max_changes,
        );
        drop(span);
        if let Some(before) = audit_before {
            for change in plan.diff(&before) {
                let (subject, from, to) = change.audit_parts();
                self.recorder
                    .audit(subject, from, to, "pipeline.reconcile", "stale-plan-repair");
            }
        }
        metrics.record("pipeline_reconciled", inputs.now, outcome.total() as f64);
        if self.recorder.is_enabled() {
            self.recorder.count(
                self.k_drops,
                (outcome.dropped_inactive + outcome.dropped_dead) as u64,
            );
        }
        plan
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.k_reconcile = recorder.key("pipeline.reconcile");
        self.k_superseded = recorder.key("pipeline.superseded");
        self.k_drops = recorder.key("pipeline.reconcile.drops");
        self.worker.set_recorder(recorder.clone());
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slaq_jobs::{JobManager, JobSpec};
    use slaq_placement::problem::NodeCapacity;
    use slaq_types::{SimDuration, Work};
    use slaq_utility::CompletionGoal;

    fn node(id: u32, cpu: f64, mem: u64) -> NodeCapacity {
        NodeCapacity {
            id: NodeId::new(id),
            cpu: CpuMhz::new(cpu),
            mem: MemMb::new(mem),
        }
    }

    fn job_spec(work_secs: f64) -> JobSpec {
        JobSpec {
            name: "recon".into(),
            total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::ZERO,
                SimDuration::from_secs(work_secs),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    /// A manager with `n` jobs; indices in `completed` are run to
    /// completion, indices in `running` (node per entry) are running.
    fn world(n: u32, completed: &[u32], running: &[(u32, u32)]) -> JobManager {
        let mut mgr = JobManager::new();
        for _ in 0..n {
            mgr.submit(job_spec(1000.0), SimTime::ZERO).unwrap();
        }
        for &i in completed {
            let j = mgr.job_mut(JobId::new(i)).unwrap();
            j.start(NodeId::new(0), SimTime::ZERO).unwrap();
            j.advance(
                CpuMhz::new(3000.0),
                SimTime::ZERO,
                SimDuration::from_secs(2000.0),
            );
        }
        for &(i, node) in running {
            mgr.job_mut(JobId::new(i))
                .unwrap()
                .start(NodeId::new(node), SimTime::ZERO)
                .unwrap();
        }
        mgr
    }

    fn place_jobs(entries: &[(u32, u32, f64)]) -> Placement {
        let mut p = Placement::empty();
        for &(j, n, c) in entries {
            p.jobs
                .insert(JobId::new(j), (NodeId::new(n), CpuMhz::new(c)));
        }
        p
    }

    /// A worker that withholds every completed solve until `release_after`
    /// dispatches have happened, then releases the whole backlog at once —
    /// the "worker fell behind" shape that makes the supersede policy
    /// observable. Each plan allocates job 0 `1000 + 100·seq` MHz so the
    /// enacted plan's provenance is readable off the placement.
    struct StallingWorker {
        held: Vec<CompletedSolve>,
        release_after: usize,
        calls: usize,
    }

    impl SolveWorker for StallingWorker {
        fn dispatch(&mut self, task: SolveTask) {
            let plan = place_jobs(&[(0, 0, 1000.0 + 100.0 * task.seq as f64)]);
            self.held.push(CompletedSolve {
                seq: task.seq,
                snapshot_time: task.snapshot.now,
                snapshot_placement: task.snapshot.current.clone(),
                plan,
                metrics: MetricsSink::new(),
                solve_micros: 0.0,
            });
            self.calls += 1;
        }

        fn drain(&mut self) -> Vec<CompletedSolve> {
            if self.calls >= self.release_after {
                std::mem::take(&mut self.held)
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn supersede_enacts_freshest_fifo_drains_backlog_in_order() {
        let jobs = world(1, &[], &[(0, 0)]);
        let nodes = vec![node(0, 12_000.0, 4096)];
        let current = place_jobs(&[(0, 0, 500.0)]);
        let run = |supersede: bool| -> Vec<f64> {
            let mut ctl = PipelinedController::with_worker(
                Box::new(StallingWorker {
                    held: Vec::new(),
                    release_after: 3,
                    calls: 0,
                }),
                0,
                None,
            )
            .with_supersede(supersede);
            assert_eq!(ctl.supersede(), supersede);
            let mut metrics = MetricsSink::new();
            (0..5)
                .map(|i| {
                    let inputs = ControlInputs {
                        now: SimTime::from_secs(600.0 * (i + 1) as f64),
                        nodes: &nodes,
                        current: &current,
                        jobs: &jobs,
                        apps: &[],
                    };
                    let p = ctl.control(&inputs, &mut metrics);
                    p.jobs
                        .get(&JobId::new(0))
                        .map(|&(_, c)| c.as_f64())
                        .unwrap_or(0.0)
                })
                .collect()
        };
        // Supersede: the first two cycles stall (placement held), then the
        // three-plan backlog collapses into the freshest (seq 2 → 1200);
        // afterwards each cycle's plan lands on time.
        assert_eq!(run(true), vec![500.0, 500.0, 1200.0, 1300.0, 1400.0]);
        // FIFO: same stall, then the backlog drains strictly in dispatch
        // order, one plan per cycle (seq 0, 1, 2 → 1000, 1100, 1200).
        assert_eq!(run(false), vec![500.0, 500.0, 1000.0, 1100.0, 1200.0]);
    }

    #[test]
    fn reconcile_drops_completed_jobs_and_dead_nodes() {
        // Job 0 completed; node 1 died (zero capacity). The plan still
        // references both.
        let jobs = world(3, &[0], &[(1, 0)]);
        let nodes = vec![node(0, 12_000.0, 4096), node(1, 0.0, 0)];
        let current = place_jobs(&[(1, 0, 3000.0)]);
        let mut plan = place_jobs(&[(0, 0, 3000.0), (1, 0, 3000.0), (2, 1, 3000.0)]);
        plan.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(1), CpuMhz::new(1000.0));
        let inputs = ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        let out = reconcile(&mut plan, &current, &inputs, None);
        assert_eq!(out.dropped_inactive, 1);
        assert_eq!(out.dropped_dead, 2); // job 2 and the app slice
        assert!(!plan.jobs.contains_key(&JobId::new(0)));
        assert!(!plan.jobs.contains_key(&JobId::new(2)));
        assert!(plan.apps[&AppId::new(0)].is_empty());
        assert_eq!(
            plan.jobs[&JobId::new(1)],
            (NodeId::new(0), CpuMhz::new(3000.0))
        );
    }

    #[test]
    fn reconcile_grafts_unknown_running_jobs_back() {
        // Snapshot saw job 1 pending and left it unplaced; an interim
        // plan started it on node 1. The stale plan must not suspend it.
        let jobs = world(2, &[], &[(0, 0), (1, 1)]);
        let nodes = vec![node(0, 12_000.0, 4096), node(1, 12_000.0, 4096)];
        let snapshot_placement = place_jobs(&[(0, 0, 3000.0)]);
        let current = place_jobs(&[(0, 0, 3000.0), (1, 1, 2000.0)]);
        let mut plan = place_jobs(&[(0, 0, 3000.0)]);
        let inputs = ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        let out = reconcile(&mut plan, &snapshot_placement, &inputs, None);
        assert_eq!(out.grafted, 1);
        assert_eq!(
            plan.jobs[&JobId::new(1)],
            (NodeId::new(1), CpuMhz::new(2000.0))
        );
    }

    #[test]
    fn reconcile_keeps_unknown_running_jobs_in_place() {
        // Snapshot saw job 1 pending; the plan placed it on node 0, but
        // meanwhile it started on node 1. Keep it put — no migration out
        // of ignorance.
        let jobs = world(2, &[], &[(0, 0), (1, 1)]);
        let nodes = vec![node(0, 12_000.0, 4096), node(1, 12_000.0, 4096)];
        let snapshot_placement = place_jobs(&[(0, 0, 3000.0)]);
        let current = place_jobs(&[(0, 0, 3000.0), (1, 1, 2000.0)]);
        let mut plan = place_jobs(&[(0, 0, 3000.0), (1, 0, 2500.0)]);
        let inputs = ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        let out = reconcile(&mut plan, &snapshot_placement, &inputs, None);
        assert_eq!(out.kept_in_place, 1);
        assert_eq!(
            plan.jobs[&JobId::new(1)],
            (NodeId::new(1), CpuMhz::new(2500.0))
        );
    }

    #[test]
    fn reconcile_respects_deliberate_suspensions() {
        // The snapshot had job 0 placed and the plan dropped it — a
        // deliberate suspension, which reconciliation must keep.
        let jobs = world(1, &[], &[(0, 0)]);
        let nodes = vec![node(0, 12_000.0, 4096)];
        let current = place_jobs(&[(0, 0, 3000.0)]);
        let mut plan = Placement::empty();
        let inputs = ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        let out = reconcile(&mut plan, &current, &inputs, None);
        assert_eq!(out.grafted, 0);
        assert!(plan.jobs.is_empty());
    }

    #[test]
    fn reconcile_cancels_newest_starts_beyond_the_budget() {
        let jobs = world(4, &[], &[]);
        let nodes = vec![node(0, 12_000.0, 8192)];
        let current = Placement::empty();
        let mut plan = place_jobs(&[
            (0, 0, 2000.0),
            (1, 0, 2000.0),
            (2, 0, 2000.0),
            (3, 0, 2000.0),
        ]);
        let inputs = ControlInputs {
            now: SimTime::from_secs(600.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        let out = reconcile(&mut plan, &Placement::empty(), &inputs, Some(2));
        assert_eq!(out.cancelled, 2);
        assert_eq!(plan.diff(&current).len(), 2);
        // Oldest submissions keep their start.
        assert!(plan.jobs.contains_key(&JobId::new(0)));
        assert!(plan.jobs.contains_key(&JobId::new(1)));
    }

    #[test]
    fn reconcile_cancels_drift_migrations_before_starts() {
        // Snapshot saw job 0 running on node 0 and the plan keeps it
        // there (no intended change); an interim plan moved it to node 1
        // meanwhile, so vs. the live world the plan now implies a
        // migration the solver never budgeted. With the cap at 2, the
        // drift migration must be cancelled first — job 0 stays at its
        // live node — so both budgeted starts survive.
        let jobs = world(3, &[], &[(0, 1)]);
        let nodes = vec![node(0, 12_000.0, 4096), node(1, 12_000.0, 4096)];
        let snapshot_placement = place_jobs(&[(0, 0, 3000.0)]);
        let current = place_jobs(&[(0, 1, 3000.0)]);
        let mut plan = place_jobs(&[(0, 0, 3000.0), (1, 0, 3000.0), (2, 0, 3000.0)]);
        let inputs = ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        let out = reconcile(&mut plan, &snapshot_placement, &inputs, Some(2));
        assert_eq!(out.cancelled, 1);
        assert_eq!(
            plan.jobs[&JobId::new(0)],
            (NodeId::new(1), CpuMhz::new(3000.0)),
            "drift migration must revert to the live node"
        );
        assert!(plan.jobs.contains_key(&JobId::new(1)));
        assert!(plan.jobs.contains_key(&JobId::new(2)));
        assert_eq!(plan.diff(&current).len(), 2);
    }

    #[test]
    fn reconcile_is_a_no_op_for_fresh_plans() {
        let jobs = world(2, &[], &[(0, 0)]);
        let nodes = vec![node(0, 12_000.0, 4096), node(1, 12_000.0, 4096)];
        let current = place_jobs(&[(0, 0, 3000.0)]);
        let mut plan = place_jobs(&[(0, 0, 3000.0), (1, 1, 2500.0)]);
        let expect = plan.clone();
        let inputs = ControlInputs {
            now: SimTime::from_secs(600.0),
            nodes: &nodes,
            current: &current,
            jobs: &jobs,
            apps: &[],
        };
        // Fresh = snapshot placement is the live placement.
        let out = reconcile(&mut plan, &current, &inputs, Some(8));
        assert_eq!(out, ReconcileOutcome::default());
        assert_eq!(plan, expect);
    }

    /// Scripted inner controller: returns the next placement of a fixed
    /// sequence, recording one model-side sample per solve.
    struct Scripted {
        plans: Vec<Placement>,
        at: usize,
    }

    impl Controller for Scripted {
        fn control(&mut self, inputs: &ControlInputs<'_>, m: &mut MetricsSink) -> Placement {
            m.record("scripted_solves", inputs.now, self.at as f64);
            let p = self
                .plans
                .get(self.at)
                .cloned()
                .unwrap_or_else(|| inputs.current.clone());
            self.at += 1;
            p
        }
    }

    #[test]
    fn pipelined_controller_enacts_plans_one_latency_late() {
        let jobs = world(2, &[], &[]);
        let nodes = vec![node(0, 12_000.0, 4096)];
        let p0 = place_jobs(&[(0, 0, 3000.0)]);
        let p1 = place_jobs(&[(0, 0, 3000.0), (1, 0, 3000.0)]);
        let inner = Scripted {
            plans: vec![p0.clone(), p1.clone()],
            at: 0,
        };
        let mut piped = PipelinedController::new(Box::new(inner), 1, None);
        let mut metrics = MetricsSink::new();
        let empty = Placement::empty();

        // Cycle 0: pipeline filling — placement unchanged.
        let inputs = ControlInputs {
            now: SimTime::ZERO,
            nodes: &nodes,
            current: &empty,
            jobs: &jobs,
            apps: &[],
        };
        let got = piped.control(&inputs, &mut metrics);
        assert_eq!(got, empty);
        assert!(metrics.series("pipeline_staleness_cycles").is_empty());

        // Cycle 1: cycle 0's plan lands, one cycle stale.
        let inputs = ControlInputs {
            now: SimTime::from_secs(600.0),
            nodes: &nodes,
            current: &empty,
            jobs: &jobs,
            apps: &[],
        };
        let got = piped.control(&inputs, &mut metrics);
        assert_eq!(got, p0);
        assert_eq!(metrics.last("pipeline_staleness_cycles"), Some(1.0));
        assert_eq!(metrics.last("pipeline_staleness_secs"), Some(600.0));
        assert!(metrics.last("pipeline_solve_micros").is_some());
        // Model-side series merge at solve completion, not enactment:
        // both cycles' solves have surfaced even though only cycle 0's
        // plan has landed.
        assert_eq!(metrics.series("scripted_solves").len(), 2);

        // Cycle 2: cycle 1's plan lands.
        let inputs = ControlInputs {
            now: SimTime::from_secs(1200.0),
            nodes: &nodes,
            current: &p0,
            jobs: &jobs,
            apps: &[],
        };
        let got = piped.control(&inputs, &mut metrics);
        assert_eq!(got, p1);
        assert_eq!(metrics.series("scripted_solves").len(), 3);
        assert_eq!(piped.latency_cycles(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Under random completion/outage interleavings, a reconciled
        /// solver plan never assigns a completed job or touches a dead
        /// node, and a change budget is re-enforced against the live
        /// placement.
        #[test]
        fn prop_reconcile_never_assigns_dead_or_completed(
            n_nodes in 2u32..6,
            node_cpu in 6000.0..16_000.0f64,
            job_demands in proptest::collection::vec(200.0..3000.0f64, 1..14),
            completed_bits in proptest::collection::vec(0u32..2, 14..15),
            dead_bits in proptest::collection::vec(0u32..2, 6..7),
            cap in proptest::option::of(0usize..6),
        ) {
            use slaq_placement::problem::{JobRequest, PlacementConfig, PlacementProblem};
            let completed_mask: Vec<bool> = completed_bits.iter().map(|&b| b == 1).collect();
            let dead_mask: Vec<bool> = dead_bits.iter().map(|&b| b == 1).collect();
            // Solve a problem against the snapshot-time world (all nodes
            // up, all jobs pending).
            let nodes_up: Vec<NodeCapacity> =
                (0..n_nodes).map(|i| node(i, node_cpu, 4096)).collect();
            let problem = PlacementProblem {
                nodes: nodes_up.clone(),
                apps: vec![],
                jobs: job_demands
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| JobRequest {
                        id: JobId::new(i as u32),
                        demand: CpuMhz::new(d),
                        mem: MemMb::new(1280),
                        running_on: None,
                        affinity: None,
                        priority: d,
                    })
                    .collect(),
                config: PlacementConfig::default(),
            };
            let mut plan =
                slaq_placement::solve(&problem, &Placement::empty()).placement;

            // The world moves: some jobs complete, some nodes die.
            let completed: Vec<u32> = (0..job_demands.len() as u32)
                .filter(|&i| completed_mask[i as usize])
                .collect();
            let jobs = world(job_demands.len() as u32, &completed, &[]);
            let live_nodes: Vec<NodeCapacity> = (0..n_nodes)
                .map(|i| {
                    if dead_mask[i as usize] {
                        node(i, 0.0, 0)
                    } else {
                        node(i, node_cpu, 4096)
                    }
                })
                .collect();
            let current = Placement::empty();
            let inputs = ControlInputs {
                now: SimTime::from_secs(1200.0),
                nodes: &live_nodes,
                current: &current,
                jobs: &jobs,
                apps: &[],
            };
            let out = reconcile(&mut plan, &Placement::empty(), &inputs, cap);
            // Liveness: no completed job, nothing on a dead node.
            for (&j, &(n, _)) in &plan.jobs {
                prop_assert!(jobs.job(j).unwrap().is_active(), "{j} completed but placed");
                prop_assert!(!dead_mask[n.index()], "{j} placed on dead {n}");
            }
            for slices in plan.apps.values() {
                for &n in slices.keys() {
                    prop_assert!(!dead_mask[n.index()], "instance on dead {n}");
                }
            }
            // Budget: every change here is a start, so the cap holds
            // exactly.
            if let Some(cap) = cap {
                prop_assert!(plan.diff(&current).len() <= cap, "budget exceeded");
            }
            prop_assert!(out.grafted == 0 && out.kept_in_place == 0);
        }
    }
}
