//! Exact CPU allocation for a *fixed* placement, via network flow.
//!
//! Once the discrete decisions are made (which instances exist, which jobs
//! run where), distributing CPU is a transportation problem:
//!
//! ```text
//! source ──demand──▶ entity ──placed-edge──▶ node ──capacity──▶ sink
//! ```
//!
//! Max-flow maximizes total satisfied demand; when even the maximum flow
//! cannot satisfy every target (discreteness made some commitment
//! unrealizable), the shortfall must land on the **jobs**: an
//! application's utility collapses catastrophically once its allocation
//! nears its offered load (response times diverge), while a shortchanged
//! job still makes progress on work-conserving spare capacity and merely
//! finishes later.
//!
//! The seed implementation expressed that bias as a 0/1-cost min-cost
//! flow (one Dijkstra per augmenting path — the dominant solver cost at
//! scale). With only two cost classes the same optimum falls out of a
//! **two-phase Dinic**: flow the applications first with the job source
//! edges gated shut, then open the gates and continue to the global
//! maximum. Phase 2 augmenting paths can reroute application slices
//! between nodes but can never reduce the application total (a reverse
//! source edge would revisit the source), so the application tier keeps
//! its phase-1 maximum — exactly the min-cost solution, with no
//! Bellman–Ford and no Dijkstra on the path at all.
//!
//! [`Allocator`] additionally keeps the transportation network **alive
//! across control cycles**: when the topology (who is placed where) is
//! unchanged from the previous call — the common warm re-solve — it only
//! rewrites edge capacities in place and re-flows, allocating nothing.
//!
//! ## Incremental re-flow (the delta path)
//!
//! With tracking enabled ([`Allocator::set_track_delta`]) the allocator
//! audits each full solve for **canonicity**: every app gate saturated,
//! no app slice moved by phase 2 (final app-edge flows equal the
//! phase-1 snapshot), and every placed job's gate saturated. In a
//! canonical state each placed job's flow is exactly its demand routed
//! down its direct `source → job → node → sink` path, so when a later
//! cycle changes *only job demands* — topology, node capacities, app
//! demands and the quantization unit all bit-equal — and no node becomes
//! contended under the new demands, the fresh solve's end state is
//! forced: phase 1 reproduces the stored app flows (identical inputs,
//! deterministic Dinic) and phase 2 saturates every job gate on direct
//! level-3 paths without touching an app edge. [`Allocator::
//! try_allocate_delta`] therefore *constructs* that end state — cancel
//! the dirty jobs' flows, re-push their new demands, patch the stored
//! placement — in O(dirty) instead of re-running Dinic over the whole
//! network. Any condition it cannot verify, or a dirty set above
//! [`DELTA_FALLBACK_FRACTION`], returns `None` and the caller falls back
//! to the full path; the differential oracle in `tests/delta_solve.rs`
//! pins bit-identity against the batch path.

use crate::placement::Placement;
use crate::problem::{AppRequest, JobRequest, NodeCapacity};
use slaq_flow::{EdgeId, FlowNetwork, MaxFlowScratch};
use slaq_types::{AppId, CpuMhz, Interner, JobId, NodeId};
use std::collections::BTreeMap;

/// Sentinel separating per-app host runs in the flattened topology
/// signature.
const HOST_SEP: u32 = u32::MAX;

/// Largest fraction of the job set that may be dirty before the
/// incremental re-flow gives up and the full warm path runs instead. Past
/// this point the O(dirty) surgery plus its O(problem) audit stops being
/// cheaper than a straight capacity-rewrite re-solve.
pub const DELTA_FALLBACK_FRACTION: f64 = 0.25;

/// Reusable allocation engine: owns the transportation network, its
/// scratch memory, and the previous topology signature for warm reuse.
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    net: FlowNetwork,
    scratch: MaxFlowScratch,
    // --- topology signature of the network currently built ---
    /// `false` until the first build: a fresh allocator must never take
    /// the warm path, even when the incoming signature is empty too.
    built: bool,
    sig_nodes: usize,
    sig_apps: usize,
    /// Per job: dense node index + 1, or 0 when unplaced.
    sig_job_place: Vec<u32>,
    /// Per app: its dense host indices, runs separated by [`HOST_SEP`].
    sig_hosts: Vec<u32>,
    // --- edge handles, valid for the current topology ---
    /// Source→job edge per job (the phase gate), for **all** jobs.
    job_gate: Vec<EdgeId>,
    /// Job→node edge per placed job.
    job_edge: Vec<Option<EdgeId>>,
    /// Source→app edge per app.
    app_gate: Vec<EdgeId>,
    /// App→node edges, flattened in `sig_hosts` order (separators skipped).
    app_edge: Vec<EdgeId>,
    /// Node→sink edge per node.
    node_edge: Vec<EdgeId>,
    // --- per-call builders (kept for allocation reuse) ---
    new_job_place: Vec<u32>,
    new_hosts: Vec<u32>,
    // --- delta-reflow state (captured only when `track_delta` is on) ---
    /// Whether full solves audit + capture the canonical state below.
    track_delta: bool,
    /// `true` when the network's current flow state is canonical (see the
    /// module docs) and the fingerprints below describe it.
    canonical: bool,
    /// Quantization unit of the canonical solve.
    unit_mhz: f64,
    /// Per job / app / node: demand or capacity in flow units.
    unit_job: Vec<i64>,
    unit_app: Vec<i64>,
    unit_node: Vec<i64>,
    /// Entity identities of the canonical solve — dense indices alone are
    /// not enough: a patched placement keys by id, so a same-shape problem
    /// over different entities must fall back.
    job_ids: Vec<JobId>,
    app_ids: Vec<AppId>,
    node_ids: Vec<NodeId>,
    /// Per node: application / job inflow units in the canonical state.
    node_app_in: Vec<i64>,
    node_job_in: Vec<i64>,
    /// Phase-1 app-edge flows (scratch for the canonicity audit).
    phase1_app_flow: Vec<i64>,
    /// The placement returned by the canonical solve, patched in place by
    /// each successful delta re-flow.
    last_placement: Placement,
    /// Scratch: dirty job indices / touched node indices of one delta call.
    dirty: Vec<usize>,
    touched_nodes: Vec<usize>,
    /// Observability plane: flow-phase spans. Off by default.
    recorder: slaq_obs::Recorder,
    k_flow_apps: slaq_obs::Key,
    k_flow_jobs: slaq_obs::Key,
    k_delta: slaq_obs::Key,
}

impl Allocator {
    /// A fresh allocator with no cached network.
    pub fn new() -> Self {
        Allocator::default()
    }

    /// Install an observability [`Recorder`](slaq_obs::Recorder): spans
    /// around the two max-flow phases (`alloc.flow.apps` /
    /// `alloc.flow.jobs`) and the incremental re-flow (`alloc.delta`).
    pub fn set_recorder(&mut self, recorder: slaq_obs::Recorder) {
        self.k_flow_apps = recorder.key("alloc.flow.apps");
        self.k_flow_jobs = recorder.key("alloc.flow.jobs");
        self.k_delta = recorder.key("alloc.delta");
        self.recorder = recorder;
    }

    /// Compute allocations for a placement expressed in **dense node
    /// indices** (see [`slaq_types::Interner`]): `app_hosts[ai]` lists the
    /// dense node indices hosting app `ai`, `job_nodes[ji]` the dense node
    /// index running job `ji`. This is the solver's hot entry point.
    ///
    /// Returns a [`Placement`] with CPU slices filled in. Entities receive
    /// at most their demand; nodes are never overcommitted; total
    /// satisfied demand is maximal for this placement with the shortfall
    /// biased onto jobs (the flow optimum).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate_dense(
        &mut self,
        nodes: &[NodeCapacity],
        apps: &[AppRequest],
        app_hosts: &[Vec<usize>],
        jobs: &[JobRequest],
        job_nodes: &[Option<usize>],
        mhz_unit: f64,
    ) -> Placement {
        assert_eq!(apps.len(), app_hosts.len(), "one host list per app");
        assert_eq!(jobs.len(), job_nodes.len(), "one node slot per job");
        let unit = if mhz_unit > 0.0 { mhz_unit } else { 1.0 };
        // Demands round down too: granting an entity a fraction of a unit
        // less than its target is harmless, while rounding *capacities* up
        // would overcommit nodes by up to one unit.
        let to_units = |c: CpuMhz| -> i64 { (c.as_f64() / unit).floor().max(0.0) as i64 };
        let to_mhz = |u: i64| -> CpuMhz { CpuMhz::new(u as f64 * unit) };

        // ------------------------------------------------------------------
        // Topology signature: rebuild only when the shape changed.
        // ------------------------------------------------------------------
        self.new_job_place.clear();
        self.new_job_place.extend(job_nodes.iter().map(|n| match n {
            Some(ni) => *ni as u32 + 1,
            None => 0,
        }));
        self.new_hosts.clear();
        for hosts in app_hosts {
            self.new_hosts.extend(hosts.iter().map(|&ni| ni as u32));
            self.new_hosts.push(HOST_SEP);
        }
        let warm = self.built
            && self.sig_nodes == nodes.len()
            && self.sig_apps == apps.len()
            && self.sig_job_place == self.new_job_place
            && self.sig_hosts == self.new_hosts;

        // Graph layout: 0 = source; 1..=A apps; A+1..=A+J jobs;
        // A+J+1..=A+J+N nodes; last = sink.
        let n_apps = apps.len();
        let n_jobs = jobs.len();
        let source = 0usize;
        let app_vx = |i: usize| 1 + i;
        let job_vx = |i: usize| 1 + n_apps + i;
        let node_vx = |i: usize| 1 + n_apps + n_jobs + i;
        let sink = 1 + n_apps + n_jobs + nodes.len();

        if warm {
            // Same topology: rewrite every capacity in place (which also
            // discards last cycle's flow) — no graph construction at all.
            for (ji, job) in jobs.iter().enumerate() {
                let cap = to_units(job.demand);
                self.net.set_cap(self.job_gate[ji], cap);
                if let Some(e) = self.job_edge[ji] {
                    self.net.set_cap(e, cap);
                }
            }
            let mut flat = 0usize;
            for (ai, app) in apps.iter().enumerate() {
                let cap = to_units(app.demand);
                self.net.set_cap(self.app_gate[ai], cap);
                for _ in &app_hosts[ai] {
                    self.net.set_cap(self.app_edge[flat], cap);
                    flat += 1;
                }
            }
            for (ni, node) in nodes.iter().enumerate() {
                self.net.set_cap(self.node_edge[ni], to_units(node.cpu));
            }
        } else {
            self.net.clear(sink + 1);
            self.job_gate.clear();
            self.job_edge.clear();
            self.app_gate.clear();
            self.app_edge.clear();
            self.node_edge.clear();
            for (ji, job) in jobs.iter().enumerate() {
                let cap = to_units(job.demand);
                self.job_gate
                    .push(self.net.add_edge(source, job_vx(ji), cap));
                self.job_edge
                    .push(job_nodes[ji].map(|ni| self.net.add_edge(job_vx(ji), node_vx(ni), cap)));
            }
            for (ai, app) in apps.iter().enumerate() {
                let cap = to_units(app.demand);
                self.app_gate
                    .push(self.net.add_edge(source, app_vx(ai), cap));
                for &ni in &app_hosts[ai] {
                    self.app_edge
                        .push(self.net.add_edge(app_vx(ai), node_vx(ni), cap));
                }
            }
            for (ni, node) in nodes.iter().enumerate() {
                self.node_edge
                    .push(self.net.add_edge(node_vx(ni), sink, to_units(node.cpu)));
            }
            std::mem::swap(&mut self.sig_job_place, &mut self.new_job_place);
            std::mem::swap(&mut self.sig_hosts, &mut self.new_hosts);
            self.sig_nodes = nodes.len();
            self.sig_apps = apps.len();
            self.built = true;
        }

        // ------------------------------------------------------------------
        // Two-phase max-flow: apps first (gates shut), then jobs.
        // ------------------------------------------------------------------
        {
            let _span = self.recorder.span(self.k_flow_apps);
            for gate in &self.job_gate {
                self.net.set_cap(*gate, 0);
            }
            self.net.max_flow_with(source, sink, &mut self.scratch);
        }
        if self.track_delta {
            // Snapshot the app tier before the job phase: the canonicity
            // audit below needs to know whether phase 2 moved any slice.
            self.phase1_app_flow.clear();
            self.phase1_app_flow
                .extend(self.app_edge.iter().map(|&e| self.net.flow_on(e)));
        }
        {
            let _span = self.recorder.span(self.k_flow_jobs);
            for (ji, job) in jobs.iter().enumerate() {
                self.net.set_cap(self.job_gate[ji], to_units(job.demand));
            }
            self.net.max_flow_with(source, sink, &mut self.scratch);
        }

        // ------------------------------------------------------------------
        // Read back the allocation.
        // ------------------------------------------------------------------
        let mut placement = Placement::empty();
        let mut flat = 0usize;
        for (ai, app) in apps.iter().enumerate() {
            let slices = placement.apps.entry(app.id).or_default();
            // Every host keeps its instance even at zero flow (warm
            // instance).
            for &ni in &app_hosts[ai] {
                slices.insert(nodes[ni].id, CpuMhz::ZERO);
            }
            for &ni in &app_hosts[ai] {
                let f = self.net.flow_on(self.app_edge[flat]);
                flat += 1;
                if f > 0 {
                    slices.insert(nodes[ni].id, to_mhz(f));
                }
            }
        }
        for (ji, job) in jobs.iter().enumerate() {
            if let (Some(ni), Some(e)) = (job_nodes[ji], self.job_edge[ji]) {
                placement
                    .jobs
                    .insert(job.id, (nodes[ni].id, to_mhz(self.net.flow_on(e))));
            }
        }

        if self.track_delta {
            self.capture_canonical(nodes, apps, app_hosts, jobs, job_nodes, unit, &placement);
        }
        placement
    }

    /// Turn delta-reflow tracking on or off. Tracking adds an O(problem)
    /// audit to every full solve; disabling it also drops the canonical
    /// state so a later re-enable cannot reuse stale fingerprints.
    pub fn set_track_delta(&mut self, on: bool) {
        self.track_delta = on;
        if !on {
            self.canonical = false;
        }
    }

    /// Audit the just-finished full solve for canonicity and, when it
    /// qualifies, fingerprint it as the base state for incremental
    /// re-flows. Unplaced jobs have no out-edge — their gates carry zero
    /// flow structurally — so gate saturation is only required of placed
    /// jobs.
    #[allow(clippy::too_many_arguments)]
    fn capture_canonical(
        &mut self,
        nodes: &[NodeCapacity],
        apps: &[AppRequest],
        app_hosts: &[Vec<usize>],
        jobs: &[JobRequest],
        job_nodes: &[Option<usize>],
        unit: f64,
        placement: &Placement,
    ) {
        let to_units = |c: CpuMhz| -> i64 { (c.as_f64() / unit).floor().max(0.0) as i64 };
        let apps_pinned = apps
            .iter()
            .enumerate()
            .all(|(ai, a)| self.net.flow_on(self.app_gate[ai]) == to_units(a.demand))
            && self
                .app_edge
                .iter()
                .zip(&self.phase1_app_flow)
                .all(|(&e, &f)| self.net.flow_on(e) == f);
        let jobs_pinned = apps_pinned
            && jobs.iter().enumerate().all(|(ji, j)| {
                job_nodes[ji].is_none() || self.net.flow_on(self.job_gate[ji]) == to_units(j.demand)
            });
        self.canonical = apps_pinned && jobs_pinned;
        if !self.canonical {
            return;
        }
        self.unit_mhz = unit;
        self.unit_job.clear();
        self.unit_job
            .extend(jobs.iter().map(|j| to_units(j.demand)));
        self.unit_app.clear();
        self.unit_app
            .extend(apps.iter().map(|a| to_units(a.demand)));
        self.unit_node.clear();
        self.unit_node.extend(nodes.iter().map(|n| to_units(n.cpu)));
        self.job_ids.clear();
        self.job_ids.extend(jobs.iter().map(|j| j.id));
        self.app_ids.clear();
        self.app_ids.extend(apps.iter().map(|a| a.id));
        self.node_ids.clear();
        self.node_ids.extend(nodes.iter().map(|n| n.id));
        self.node_app_in.clear();
        self.node_app_in.resize(nodes.len(), 0);
        let mut flat = 0usize;
        for hosts in app_hosts {
            for &ni in hosts {
                self.node_app_in[ni] += self.net.flow_on(self.app_edge[flat]);
                flat += 1;
            }
        }
        self.node_job_in.clear();
        self.node_job_in.resize(nodes.len(), 0);
        for (ji, &jn) in job_nodes.iter().enumerate() {
            if let Some(ni) = jn {
                self.node_job_in[ni] += self.unit_job[ji];
            }
        }
        self.last_placement = placement.clone();
    }

    /// Incremental re-flow: when only **job demands** moved since the
    /// canonical solve — same topology, same entities, same node
    /// capacities, app demands and quantization unit (all at flow-unit
    /// granularity) — and no node is contended under the new demands,
    /// withdraw the dirty jobs' flows, push their new demands down their
    /// forced direct paths, and patch the stored placement. The result is
    /// bit-identical to a full warm re-solve (see the module docs for the
    /// forcing argument). Returns `None` — leaving the network and the
    /// canonical state untouched — when any precondition fails or the
    /// dirty set exceeds [`DELTA_FALLBACK_FRACTION`]; the caller then
    /// runs [`Allocator::allocate_dense`] as usual.
    #[allow(clippy::too_many_arguments)]
    pub fn try_allocate_delta(
        &mut self,
        nodes: &[NodeCapacity],
        apps: &[AppRequest],
        app_hosts: &[Vec<usize>],
        jobs: &[JobRequest],
        job_nodes: &[Option<usize>],
        mhz_unit: f64,
    ) -> Option<Placement> {
        if !self.track_delta || !self.built || !self.canonical {
            return None;
        }
        let _span = self.recorder.span(self.k_delta);
        let unit = if mhz_unit > 0.0 { mhz_unit } else { 1.0 };
        if unit != self.unit_mhz {
            return None;
        }
        let to_units = |c: CpuMhz| -> i64 { (c.as_f64() / unit).floor().max(0.0) as i64 };
        let to_mhz = |u: i64| -> CpuMhz { CpuMhz::new(u as f64 * unit) };

        // Same entities, same shape, same placement, same frozen tiers.
        if nodes.len() != self.sig_nodes
            || apps.len() != self.sig_apps
            || jobs.len() != self.unit_job.len()
        {
            return None;
        }
        if self.sig_job_place.len() != jobs.len()
            || !self.node_ids.iter().zip(nodes).all(|(a, n)| *a == n.id)
            || !self.app_ids.iter().zip(apps).all(|(a, x)| *a == x.id)
        {
            return None;
        }
        // Fused per-job audit: identity, placement signature, and the
        // dirty scan in one pass — three O(J) walks folded into one on
        // the hot path. A mid-loop refusal leaves `dirty` partially
        // filled; it is cleared on entry so that never leaks forward.
        self.dirty.clear();
        for (ji, job) in jobs.iter().enumerate() {
            if self.job_ids[ji] != job.id {
                return None;
            }
            let place = match job_nodes[ji] {
                Some(ni) => ni as u32 + 1,
                None => 0,
            };
            if self.sig_job_place[ji] != place {
                return None;
            }
            if to_units(job.demand) != self.unit_job[ji] {
                self.dirty.push(ji);
            }
        }
        self.new_hosts.clear();
        for hosts in app_hosts {
            self.new_hosts.extend(hosts.iter().map(|&ni| ni as u32));
            self.new_hosts.push(HOST_SEP);
        }
        if self.sig_hosts != self.new_hosts {
            return None;
        }
        if !nodes
            .iter()
            .enumerate()
            .all(|(ni, n)| to_units(n.cpu) == self.unit_node[ni])
            || !apps
                .iter()
                .enumerate()
                .all(|(ai, a)| to_units(a.demand) == self.unit_app[ai])
        {
            return None;
        }

        if self.dirty.is_empty() {
            // Nothing moved: the canonical state *is* the answer.
            return Some(self.last_placement.clone());
        }
        // A single dirty job is always worth the surgery, however small
        // the problem; beyond that the fraction threshold governs.
        let dirty_cap = ((jobs.len() as f64 * DELTA_FALLBACK_FRACTION) as usize).max(1);
        if self.dirty.len() > dirty_cap {
            return None;
        }

        // Non-contention audit under the NEW demands, on touched nodes
        // only (untouched nodes were feasible in the canonical state and
        // nothing on them changed). Tentatively apply the inflow deltas;
        // roll them back if any node would overflow.
        self.touched_nodes.clear();
        for &ji in &self.dirty {
            if let Some(ni) = job_nodes[ji] {
                self.node_job_in[ni] += to_units(jobs[ji].demand) - self.unit_job[ji];
                self.touched_nodes.push(ni);
            }
        }
        let contended = self
            .touched_nodes
            .iter()
            .any(|&ni| self.node_app_in[ni] + self.node_job_in[ni] > self.unit_node[ni]);
        if contended {
            for &ji in &self.dirty {
                if let Some(ni) = job_nodes[ji] {
                    self.node_job_in[ni] -= to_units(jobs[ji].demand) - self.unit_job[ji];
                }
            }
            return None;
        }

        // Surgery, two passes so same-node dirty jobs never transiently
        // overflow a node edge: withdraw every dirty flow first, then
        // push every new one.
        for &ji in &self.dirty {
            let new = to_units(jobs[ji].demand);
            self.net.set_cap(self.job_gate[ji], new);
            if let Some(e) = self.job_edge[ji] {
                let ni = job_nodes[ji].expect("job edge implies placement");
                self.net.set_cap(e, new);
                self.net.cancel_flow(self.node_edge[ni], self.unit_job[ji]);
            }
        }
        for &ji in &self.dirty {
            let new = to_units(jobs[ji].demand);
            if let Some(e) = self.job_edge[ji] {
                let ni = job_nodes[ji].expect("job edge implies placement");
                self.net.push_flow(self.job_gate[ji], new);
                self.net.push_flow(e, new);
                self.net.push_flow(self.node_edge[ni], new);
            }
            self.unit_job[ji] = new;
        }

        // Patch the stored placement — it stays the canonical placement
        // for the next delta call.
        for &ji in &self.dirty {
            if let Some(ni) = job_nodes[ji] {
                self.last_placement
                    .jobs
                    .insert(jobs[ji].id, (nodes[ni].id, to_mhz(self.unit_job[ji])));
            }
        }
        Some(self.last_placement.clone())
    }
}

/// Compute allocations for the given instance/job placement (id-keyed
/// convenience API; builds a fresh [`Allocator`] per call).
///
/// * `app_instances[a]` — nodes hosting an instance of `a`;
/// * `job_nodes[j]` — node hosting running job `j`.
pub fn allocate(
    nodes: &[NodeCapacity],
    apps: &[AppRequest],
    app_instances: &BTreeMap<AppId, Vec<NodeId>>,
    jobs: &[JobRequest],
    job_nodes: &BTreeMap<JobId, NodeId>,
    mhz_unit: f64,
) -> Placement {
    let node_ix = Interner::new(nodes.iter().map(|n| n.id));
    let app_hosts: Vec<Vec<usize>> = apps
        .iter()
        .map(|a| {
            app_instances
                .get(&a.id)
                .map(|hosts| hosts.iter().filter_map(|h| node_ix.dense(*h)).collect())
                .unwrap_or_default()
        })
        .collect();
    let job_dense: Vec<Option<usize>> = jobs
        .iter()
        .map(|j| job_nodes.get(&j.id).and_then(|n| node_ix.dense(*n)))
        .collect();
    Allocator::new().allocate_dense(nodes, apps, &app_hosts, jobs, &job_dense, mhz_unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::MemMb;

    fn node(id: u32, cpu: f64) -> NodeCapacity {
        NodeCapacity {
            id: NodeId::new(id),
            cpu: CpuMhz::new(cpu),
            mem: MemMb::new(4096),
        }
    }

    fn app(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 0,
            max_instances: 32,
            affinity: Vec::new(),
        }
    }

    fn jobr(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    #[test]
    fn single_app_single_node_gets_its_demand() {
        let nodes = [node(0, 12_000.0)];
        let apps = [app(0, 5000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(5000.0));
    }

    #[test]
    fn app_spreads_across_nodes() {
        let nodes = [node(0, 4000.0), node(1, 4000.0), node(2, 4000.0)];
        let apps = [app(0, 10_000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(
            AppId::new(0),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        );
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(10_000.0));
        for n in 0..3 {
            assert!(p.node_cpu_used(NodeId::new(n)).as_f64() <= 4000.0 + 1e-6);
        }
    }

    #[test]
    fn jobs_win_contended_nodes_apps_recover_elsewhere() {
        // Node0: 3000 MHz, hosts a 3000-demand job AND an app instance.
        // Node1: 3000 MHz, app-only. App demand 3000.
        // The job must be satisfied on node0; the app shifts to node1.
        let nodes = [node(0, 3000.0), node(1, 3000.0)];
        let apps = [app(0, 3000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0), NodeId::new(1)]);
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        let p = allocate(&nodes, &apps, &inst, &jobs, &jn, 1.0);
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.apps[&AppId::new(0)][&NodeId::new(1)], CpuMhz::new(3000.0));
    }

    #[test]
    fn shortfall_lands_on_the_job() {
        let nodes = [node(0, 4000.0)];
        let apps = [app(0, 3000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        let p = allocate(&nodes, &apps, &inst, &jobs, &jn, 1.0);
        // App saturates first (phase bias: its utility cliffs at its
        // offered load); the job absorbs the shortfall and will catch up
        // on work-conserving spare in the simulator.
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::new(1000.0));
    }

    #[test]
    fn unplaced_jobs_get_nothing() {
        let nodes = [node(0, 4000.0)];
        let jobs = [jobr(0, 3000.0)];
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &BTreeMap::new(), 1.0);
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::ZERO);
        assert!(p.job_node(JobId::new(0)).is_none());
    }

    #[test]
    fn warm_instances_survive_with_zero_flow() {
        let nodes = [node(0, 4000.0)];
        let apps = [app(0, 0.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_instances(AppId::new(0)), 1);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::ZERO);
    }

    #[test]
    fn multiple_jobs_on_one_node_share_capacity() {
        let nodes = [node(0, 5000.0)];
        let jobs = [jobr(0, 3000.0), jobr(1, 3000.0)];
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        jn.insert(JobId::new(1), NodeId::new(0));
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &jn, 1.0);
        let total = p.job_alloc(JobId::new(0)) + p.job_alloc(JobId::new(1));
        assert_eq!(total, CpuMhz::new(5000.0));
        assert!(p.job_alloc(JobId::new(0)).as_f64() <= 3000.0 + 1e-9);
        assert!(p.job_alloc(JobId::new(1)).as_f64() <= 3000.0 + 1e-9);
    }

    #[test]
    fn coarse_mhz_unit_still_respects_capacity() {
        let nodes = [node(0, 5000.0)];
        let jobs = [jobr(0, 3333.0), jobr(1, 3333.0)];
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        jn.insert(JobId::new(1), NodeId::new(0));
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &jn, 100.0);
        let total = p.job_alloc(JobId::new(0)) + p.job_alloc(JobId::new(1));
        assert!(total.as_f64() <= 5000.0 + 1e-6);
        assert!(total.as_f64() >= 4900.0);
    }

    #[test]
    fn empty_problem_on_fresh_allocator_yields_empty_placement() {
        // Regression: an empty problem's topology signature matches a
        // fresh allocator's default (empty) signature; the warm path must
        // still be refused, since no network exists yet.
        let mut alloc = Allocator::new();
        let p = alloc.allocate_dense(&[], &[], &[], &[], &[], 1.0);
        assert!(p.apps.is_empty());
        assert!(p.jobs.is_empty());
        // And again, now genuinely warm.
        let p = alloc.allocate_dense(&[], &[], &[], &[], &[], 1.0);
        assert!(p.jobs.is_empty());
    }

    #[test]
    fn warm_reuse_matches_fresh_allocation() {
        // Same topology, changing demands: the warm path (capacity
        // rewrite) must produce exactly what a cold build produces.
        let nodes = [node(0, 6000.0), node(1, 4000.0), node(2, 9000.0)];
        let app_hosts = vec![vec![0usize, 2], vec![1usize, 2]];
        let job_nodes = vec![Some(0usize), Some(1), None, Some(2)];
        let mut warm = Allocator::new();
        for scale in [1.0f64, 0.4, 1.7, 0.0, 1.0] {
            let jobs = [
                jobr(0, 3000.0 * scale),
                jobr(1, 2000.0 * scale),
                jobr(2, 1000.0),
                jobr(3, 4000.0 * scale),
            ];
            let apps_scaled = [app(0, 5000.0 * scale), app(1, 2500.0)];
            let got = warm.allocate_dense(&nodes, &apps_scaled, &app_hosts, &jobs, &job_nodes, 1.0);
            let fresh = Allocator::new().allocate_dense(
                &nodes,
                &apps_scaled,
                &app_hosts,
                &jobs,
                &job_nodes,
                1.0,
            );
            assert_eq!(got, fresh, "scale {scale}");
        }
    }

    #[test]
    fn delta_reflow_matches_full_rebuild() {
        // Jobs-only fleet, uncontended: every full solve is canonical, so
        // each demand drift must take the delta path and reproduce a
        // fresh allocator bit for bit — across chained delta calls.
        let nodes = [node(0, 6000.0), node(1, 6000.0), node(2, 6000.0)];
        let job_nodes = vec![Some(0usize), Some(1), None, Some(2), Some(0)];
        let mut tracked = Allocator::new();
        tracked.set_track_delta(true);
        let mut demands = [2000.0, 1500.0, 1000.0, 2500.0, 1800.0];
        // Prime with a full solve.
        let jobs: Vec<JobRequest> = (0..5).map(|i| jobr(i, demands[i as usize])).collect();
        tracked.allocate_dense(&nodes, &[], &[], &jobs, &job_nodes, 1.0);
        assert!(tracked.canonical, "uncontended solve must be canonical");
        // One drifting job per round (index 2 is the unplaced one).
        for (round, drift) in [(1usize, 400.0), (2, -700.0), (3, 250.0)] {
            demands[round] += drift;
            let jobs: Vec<JobRequest> = (0..5).map(|i| jobr(i, demands[i as usize])).collect();
            let got = tracked
                .try_allocate_delta(&nodes, &[], &[], &jobs, &job_nodes, 1.0)
                .expect("uncontended single-job drift must take the delta path");
            let fresh = Allocator::new().allocate_dense(&nodes, &[], &[], &jobs, &job_nodes, 1.0);
            assert_eq!(got, fresh, "round {round}");
        }
    }

    #[test]
    fn delta_reflow_composes_with_later_full_solves() {
        // After delta surgery, a topology change must still rebuild and
        // solve correctly (set_cap discards all hand-routed flow).
        let nodes = [node(0, 5000.0), node(1, 5000.0)];
        let mut alloc = Allocator::new();
        alloc.set_track_delta(true);
        let jobs = [jobr(0, 2000.0), jobr(1, 1000.0)];
        alloc.allocate_dense(&nodes, &[], &[], &jobs, &[Some(0), Some(1)], 1.0);
        let jobs2 = [jobr(0, 2400.0), jobr(1, 1000.0)];
        alloc
            .try_allocate_delta(&nodes, &[], &[], &jobs2, &[Some(0), Some(1)], 1.0)
            .expect("delta path");
        // Job 1 migrates: topology signature changes, full path runs.
        let moved = alloc.allocate_dense(&nodes, &[], &[], &jobs2, &[Some(0), Some(0)], 1.0);
        let fresh =
            Allocator::new().allocate_dense(&nodes, &[], &[], &jobs2, &[Some(0), Some(0)], 1.0);
        assert_eq!(moved, fresh);
    }

    #[test]
    fn delta_reflow_refuses_when_preconditions_fail() {
        let nodes = [node(0, 4000.0), node(1, 4000.0)];
        let apps = [app(0, 2000.0)];
        let hosts = vec![vec![1usize]];
        let jobs = [jobr(0, 2000.0), jobr(1, 1000.0)];
        let places = [Some(0usize), Some(0)];
        let mut alloc = Allocator::new();
        alloc.set_track_delta(true);
        alloc.allocate_dense(&nodes, &apps, &hosts, &jobs, &places, 1.0);
        assert!(alloc.canonical);
        // Contention: both jobs grow past node 0's capacity together.
        let hot = [jobr(0, 3000.0), jobr(1, 2000.0)];
        assert!(
            alloc
                .try_allocate_delta(&nodes, &apps, &hosts, &hot, &places, 1.0)
                .is_none(),
            "contended node must force the full path"
        );
        // App demand drift: the frozen tier moved.
        let apps2 = [app(0, 2500.0)];
        assert!(alloc
            .try_allocate_delta(&nodes, &apps2, &hosts, &jobs, &places, 1.0)
            .is_none());
        // Entity identity swap at identical shape.
        let renamed = [jobr(7, 2000.0), jobr(1, 1000.0)];
        assert!(alloc
            .try_allocate_delta(&nodes, &apps, &hosts, &renamed, &places, 1.0)
            .is_none());
        // Dirty fraction above threshold (2 of 2 jobs moved).
        let all_moved = [jobr(0, 1900.0), jobr(1, 900.0)];
        assert!(alloc
            .try_allocate_delta(&nodes, &apps, &hosts, &all_moved, &places, 1.0)
            .is_none());
        // And after all those refusals, the canonical state is intact: a
        // clean single-job drift still takes the delta path.
        let one = [jobr(0, 1900.0), jobr(1, 1000.0)];
        let got = alloc
            .try_allocate_delta(&nodes, &apps, &hosts, &one, &places, 1.0)
            .expect("canonical state survived the refusals");
        let fresh = Allocator::new().allocate_dense(&nodes, &apps, &hosts, &one, &places, 1.0);
        assert_eq!(got, fresh);
    }

    #[test]
    fn phase2_reroute_disqualifies_canonicity() {
        // Node 0 hosts both the app slice and a job that outgrows the
        // shared capacity: phase 2 shifts app flow to node 1, so the end
        // state is not directly constructible and tracking must say so.
        let nodes = [node(0, 3000.0), node(1, 3000.0)];
        let apps = [app(0, 3000.0)];
        let hosts = vec![vec![0usize, 1]];
        let jobs = [jobr(0, 3000.0)];
        let mut alloc = Allocator::new();
        alloc.set_track_delta(true);
        alloc.allocate_dense(&nodes, &apps, &hosts, &jobs, &[Some(0)], 1.0);
        assert!(!alloc.canonical, "rerouted solve must not be canonical");
        assert!(alloc
            .try_allocate_delta(&nodes, &apps, &hosts, &jobs, &[Some(0)], 1.0)
            .is_none());
    }

    #[test]
    fn topology_change_rebuilds_correctly() {
        let nodes = [node(0, 6000.0), node(1, 6000.0)];
        let apps = [app(0, 4000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut alloc = Allocator::new();
        // Cycle 1: app on node0 only, job on node0 — the app saturates
        // first (shortfall bias), the job absorbs the remainder.
        let p1 = alloc.allocate_dense(&nodes, &apps, &[vec![0]], &jobs, &[Some(0)], 1.0);
        assert_eq!(p1.app_alloc(AppId::new(0)), CpuMhz::new(4000.0));
        assert_eq!(p1.job_alloc(JobId::new(0)), CpuMhz::new(2000.0));
        // Cycle 2: app grows to node1; job migrates to node1.
        let p2 = alloc.allocate_dense(&nodes, &apps, &[vec![0, 1]], &jobs, &[Some(1)], 1.0);
        assert_eq!(p2.app_alloc(AppId::new(0)), CpuMhz::new(4000.0));
        assert_eq!(p2.job_alloc(JobId::new(0)), CpuMhz::new(3000.0));
        // Cycle 3: job unplaced (topology shrinks).
        let p3 = alloc.allocate_dense(&nodes, &apps, &[vec![0, 1]], &jobs, &[None], 1.0);
        assert_eq!(p3.app_alloc(AppId::new(0)), CpuMhz::new(4000.0));
        assert!(p3.job_node(JobId::new(0)).is_none());
    }
}
