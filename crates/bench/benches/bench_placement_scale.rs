//! E4 — placement-solver scalability: one `solve` call on synthetic
//! problems shaped like the paper's (12 000 MHz nodes, ≤3000 MHz jobs,
//! three jobs per node by memory), at cluster sizes up to 500 nodes /
//! 3000 jobs.
//!
//! Four series per shape:
//! * `cold`  — empty previous placement, fresh [`Solver`] per call;
//! * `warm`  — steady-state re-solve (previous placement = the cold
//!   solution with jobs marked running), fresh `Solver` per call;
//! * `warm_reused` — same re-solve through one long-lived [`Solver`],
//!   the controller's real steady-state path (dense scratch + allocation
//!   network reuse);
//! * `warm_sharded{k}` (large shapes) — same re-solve through a
//!   long-lived [`ShardedSolver`] with `k` shards: per-shard scan width
//!   drops ~`k×`, which beats the global warm solve at 500 nodes even
//!   under the *sequential* rayon stand-in, and by more with real
//!   parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slaq_experiments::sweeps::synthetic_problem;
use slaq_placement::{solve, Placement, ShardPlan, ShardedSolver, Solver};
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_scale");
    group.sample_size(30);
    for &(nodes, jobs) in &[
        (10u32, 30u32),
        (25, 120),
        (50, 300),
        (100, 600),
        (250, 1500),
        (500, 3000),
        (1000, 6000),
    ] {
        let problem = synthetic_problem(nodes, jobs, 1);
        group.bench_with_input(
            BenchmarkId::new("cold", format!("{nodes}n_{jobs}j")),
            &problem,
            |b, p| b.iter(|| black_box(solve(black_box(p), &Placement::empty()).changes.len())),
        );
        // Warm re-solve: previous placement = the cold solution with jobs
        // marked running (the steady-state cycle cost).
        let cold = solve(&problem, &Placement::empty());
        let mut warm_problem = problem.clone();
        for j in &mut warm_problem.jobs {
            j.running_on = cold.placement.job_node(j.id);
        }
        group.bench_with_input(
            BenchmarkId::new("warm", format!("{nodes}n_{jobs}j")),
            &(warm_problem.clone(), cold.placement.clone()),
            |b, (p, prev)| b.iter(|| black_box(solve(black_box(p), prev).changes.len())),
        );
        // Warm re-solve through one long-lived Solver: scratch and the
        // allocation flow network persist across iterations, so the
        // capacity-only rebuild path is what gets measured.
        let mut solver = Solver::new();
        solver.solve(&warm_problem, &cold.placement); // prime the caches
        group.bench_with_input(
            BenchmarkId::new("warm_reused", format!("{nodes}n_{jobs}j")),
            &(warm_problem.clone(), cold.placement.clone()),
            |b, (p, prev)| b.iter(|| black_box(solver.solve(black_box(p), prev).changes.len())),
        );
        // Sharded-vs-global scaling: the same warm re-solve through the
        // zone-partitioned engine (running jobs pin to their node's
        // shard, so the per-shard problems stay stable and warm).
        if nodes >= 500 {
            for k in [4u32, 8] {
                let mut sharded = ShardedSolver::new(ShardPlan::Fixed(k), 16);
                sharded.solve(&warm_problem, &cold.placement); // prime the lanes
                group.bench_with_input(
                    BenchmarkId::new(format!("warm_sharded{k}"), format!("{nodes}n_{jobs}j")),
                    &(warm_problem.clone(), cold.placement.clone()),
                    |b, (p, prev)| {
                        b.iter(|| black_box(sharded.solve(black_box(p), prev).changes.len()))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
