//! Request routing across application instances — the flow-controller
//! fragment of the authors' middleware.
//!
//! A clustered transactional application runs instances on several nodes,
//! each with its own CPU allocation. The router splits incoming traffic
//! proportionally to the per-instance allocations, which equalizes
//! per-instance utilization and hence (under processor sharing) makes
//! every instance exhibit the same response time — the cluster behaves
//! like one pooled server of the aggregate capacity.

use slaq_types::{CpuMhz, SimDuration, Work};

/// Traffic weights proportional to per-instance allocations.
///
/// Returns an empty vector when no instance has positive allocation
/// (nothing can serve traffic).
pub fn split_load(allocs: &[CpuMhz]) -> Vec<f64> {
    let total: f64 = allocs.iter().map(|a| a.as_f64().max(0.0)).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    allocs.iter().map(|a| a.as_f64().max(0.0) / total).collect()
}

/// Mean response time of a clustered application under proportional
/// routing: arrival rate `lambda` split across instances with allocations
/// `allocs`, with per-request demand `service`.
///
/// We adopt the **app-level pooled-capacity abstraction** the authors'
/// flow controller uses: proportional splitting keeps per-instance
/// utilization equal, request concurrency spans the whole cluster, and the
/// controller reasons about the application's *aggregate* allocation — so
/// the cluster is modelled as one PS server of capacity `Σ allocs`. (A
/// strictly per-instance PS mixture would add an instance-count factor to
/// the latency term; the controller's demand estimates and the simulator's
/// measurements must simply agree on one model, and the pooled form is the
/// one the paper's demand figures correspond to.)
pub fn aggregate_response_time(lambda: f64, service: Work, allocs: &[CpuMhz]) -> SimDuration {
    let total: CpuMhz = allocs.iter().map(|a| a.max_zero()).sum();
    if total.is_zero() {
        return if lambda > 0.0 {
            SimDuration::INFINITE
        } else {
            SimDuration::ZERO
        };
    }
    if lambda <= 0.0 {
        // No traffic: a lone request runs on the pooled capacity.
        return SimDuration::from_secs(service.secs_at(total));
    }
    let offered = CpuMhz::new(lambda * service.as_f64());
    let headroom = total - offered;
    if headroom.as_f64() <= 0.0 {
        return SimDuration::INFINITE;
    }
    SimDuration::from_secs(service.secs_at(headroom))
}

/// Effective-work multiplier of warmth-aware routing.
///
/// When a share-weighted fraction `warm_hit ∈ [0, 1]` of an application's
/// requests lands on instances whose caches/data are warm, and a warm hit
/// saves a fraction `warm_gain ∈ [0, 1)` of the per-request service
/// demand, the cycle's aggregate work shrinks by `warm_gain · warm_hit`:
///
/// ```text
/// W_eff = λ · service · (1 − warm_gain · warm_hit)
/// ```
///
/// The returned multiplier is the routed-load **SLA signal**: the
/// simulator scales the offered load it feeds the processor-sharing
/// queue (and the work the demand estimator observes) by it, so the
/// controller optimizes against what the routing tier actually
/// delivered. Both inputs are clamped into their domains; the result is
/// always in `(0, 1]`, and exactly `1.0` when either input is zero —
/// the routing-off path multiplies by a bit-exact identity.
pub fn warm_work_discount(warm_gain: f64, warm_hit: f64) -> f64 {
    let gain = warm_gain.clamp(0.0, 0.99);
    let hit = warm_hit.clamp(0.0, 1.0);
    1.0 - gain * hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queueing::PsQueue;
    use proptest::prelude::*;

    #[test]
    fn split_is_proportional_and_normalized() {
        let w = split_load(&[CpuMhz::new(100.0), CpuMhz::new(300.0)]);
        assert_eq!(w, vec![0.25, 0.75]);
        let w = split_load(&[CpuMhz::ZERO, CpuMhz::ZERO]);
        assert!(w.is_empty());
    }

    #[test]
    fn split_ignores_negative_noise() {
        let w = split_load(&[CpuMhz::new(-1e-9), CpuMhz::new(100.0)]);
        assert_eq!(w[0], 0.0);
        assert_eq!(w[1], 1.0);
    }

    #[test]
    fn cluster_equals_pooled_server_under_proportional_routing() {
        let lambda = 50.0;
        let service = Work::new(2000.0);
        let allocs = [
            CpuMhz::new(40_000.0),
            CpuMhz::new(60_000.0),
            CpuMhz::new(20_000.0),
        ];
        let total: CpuMhz = allocs.iter().sum();
        let pooled = PsQueue::new(lambda, service).unwrap().response_time(total);
        let clustered = aggregate_response_time(lambda, service, &allocs);
        assert!(
            (clustered.as_secs() - pooled.as_secs()).abs() < 1e-9,
            "clustered {clustered} vs pooled {pooled}"
        );
    }

    #[test]
    fn saturated_cluster_reports_infinite_rt() {
        // Offered load 100 000 > total capacity 90 000.
        let rt = aggregate_response_time(
            50.0,
            Work::new(2000.0),
            &[CpuMhz::new(45_000.0), CpuMhz::new(45_000.0)],
        );
        assert!(rt.is_infinite());
    }

    #[test]
    fn no_instances_with_traffic_is_infinite() {
        assert!(aggregate_response_time(10.0, Work::new(1.0), &[]).is_infinite());
        assert_eq!(
            aggregate_response_time(0.0, Work::new(1.0), &[]),
            SimDuration::ZERO
        );
    }

    #[test]
    fn idle_cluster_reports_pooled_latency() {
        let rt = aggregate_response_time(
            0.0,
            Work::new(3000.0),
            &[CpuMhz::new(1000.0), CpuMhz::new(2000.0)],
        );
        assert!((rt.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warm_discount_identities_and_bounds() {
        // Zero gain or zero hit: exact identity (the routing-off path).
        assert_eq!(warm_work_discount(0.0, 0.7), 1.0);
        assert_eq!(warm_work_discount(0.5, 0.0), 1.0);
        // Fully-warm, half the work saved.
        assert!((warm_work_discount(0.5, 1.0) - 0.5).abs() < 1e-12);
        // Inputs clamped into their domains.
        assert!(warm_work_discount(2.0, 2.0) > 0.0);
        assert_eq!(warm_work_discount(-1.0, 0.5), 1.0);
    }

    proptest! {
        #[test]
        fn prop_warm_discount_in_unit_interval(
            gain in -0.5..1.5f64,
            hit in -0.5..1.5f64,
        ) {
            let d = warm_work_discount(gain, hit);
            prop_assert!(d > 0.0 && d <= 1.0);
        }

        #[test]
        fn prop_weights_sum_to_one(
            allocs in proptest::collection::vec(0.0..1e5f64, 1..10),
        ) {
            let cpus: Vec<CpuMhz> = allocs.iter().map(|&a| CpuMhz::new(a)).collect();
            let w = split_load(&cpus);
            if !w.is_empty() {
                let sum: f64 = w.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }

        #[test]
        fn prop_proportional_matches_pooled(
            lambda in 0.1..100.0f64,
            service in 10.0..5000.0f64,
            allocs in proptest::collection::vec(1.0..1e5f64, 1..8),
        ) {
            let cpus: Vec<CpuMhz> = allocs.iter().map(|&a| CpuMhz::new(a)).collect();
            let total: CpuMhz = cpus.iter().sum();
            let q = PsQueue::new(lambda, Work::new(service)).unwrap();
            let pooled = q.response_time(total);
            let clustered = aggregate_response_time(lambda, Work::new(service), &cpus);
            if pooled.is_infinite() {
                prop_assert!(clustered.is_infinite());
            } else {
                prop_assert!((clustered.as_secs() - pooled.as_secs()).abs()
                    < 1e-6 * pooled.as_secs().max(1.0));
            }
        }
    }
}
