//! Per-app SLO tracking: a declarative [`SloSpec`], per-cycle
//! [`SloSample`]s, named-cause violation [`Attribution`], and the
//! [`SloTracker`] that folds them into compliance, error-budget burn
//! and worst-window statistics.
//!
//! The layer rides the [`crate::Recorder`]: the simulator registers one
//! tracker per app ([`crate::Recorder::slo_register`]) and feeds it one
//! sample per control cycle ([`crate::Recorder::slo_observe`]). Like
//! every other recorder surface it observes, never steers — the SLO
//! board is write-only from the simulation's point of view, so enabling
//! it is bit-identical on every metric series.
//!
//! ## Attribution contract
//!
//! Each cycle's CPU-satisfaction deficit (MHz of discounted offered
//! work the placement did not cover) is decomposed into named causes by
//! a *sequential min-chain* — outage loss, routing-discount mismatch,
//! pipeline staleness, change-budget exhaustion, overbooking clip, and
//! a cluster-capacity remainder — so the parts always sum back to the
//! total deficit. The invariant is checked by `tests/slo_audit.rs` on
//! every corpus preset.

use serde::{DeError, Deserialize, Serialize, Value};

/// Declarative per-app service-level objective, attached to an app in
/// `ScenarioSpec` as an optional `slo` block. Every field defaults, so
/// partial blocks (and pre-SLO spec files with no block at all) parse.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Target satisfied-CPU fraction per cycle (`0 < target ≤ 1`): the
    /// cycle complies when `allocated / offered ≥ target`.
    pub target_satisfied: f64,
    /// Response-time bound in seconds; `0.0` disables the bound.
    pub rt_bound_secs: f64,
    /// Minimum acceptable utility; `-1.0` (the utility floor) disables
    /// the bound.
    pub min_utility: f64,
    /// Error budget: the tolerated fraction of violating cycles. Burn
    /// rate 1.0 means violations are arriving exactly at budget.
    pub error_budget: f64,
    /// Width (in cycles) of the sliding worst-window statistic.
    pub window_cycles: u32,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            target_satisfied: 0.95,
            rt_bound_secs: 0.0,
            min_utility: -1.0,
            error_budget: 0.1,
            window_cycles: 6,
        }
    }
}

impl SloSpec {
    /// Validate the spec's ranges, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target_satisfied > 0.0 && self.target_satisfied <= 1.0) {
            return Err(format!(
                "slo.target_satisfied must be in (0, 1], got {}",
                self.target_satisfied
            ));
        }
        if self.rt_bound_secs < 0.0 {
            return Err(format!(
                "slo.rt_bound_secs must be ≥ 0, got {}",
                self.rt_bound_secs
            ));
        }
        if !(self.error_budget > 0.0 && self.error_budget <= 1.0) {
            return Err(format!(
                "slo.error_budget must be in (0, 1], got {}",
                self.error_budget
            ));
        }
        if self.window_cycles == 0 {
            return Err("slo.window_cycles must be ≥ 1".to_string());
        }
        Ok(())
    }
}

// Hand-rolled (rather than derived) so partial blocks fill defaults:
// `{"rt_bound_secs": 0.5}` keeps every other field at its default,
// matching the defaults-filling contract of the controller knobs.
impl Serialize for SloSpec {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "target_satisfied".to_string(),
                Value::Float(self.target_satisfied),
            ),
            (
                "rt_bound_secs".to_string(),
                Value::Float(self.rt_bound_secs),
            ),
            ("min_utility".to_string(), Value::Float(self.min_utility)),
            ("error_budget".to_string(), Value::Float(self.error_budget)),
            (
                "window_cycles".to_string(),
                Value::Int(self.window_cycles as i128),
            ),
        ])
    }
}

impl Deserialize for SloSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let d = SloSpec::default();
        let f = |key: &str, d: f64| -> Result<f64, DeError> {
            match serde::obj_get(v, key)? {
                Value::Null => Ok(d),
                other => Deserialize::from_value(other),
            }
        };
        let spec = SloSpec {
            target_satisfied: f("target_satisfied", d.target_satisfied)?,
            rt_bound_secs: f("rt_bound_secs", d.rt_bound_secs)?,
            min_utility: f("min_utility", d.min_utility)?,
            error_budget: f("error_budget", d.error_budget)?,
            window_cycles: match serde::obj_get(v, "window_cycles")? {
                Value::Null => d.window_cycles,
                other => Deserialize::from_value(other)?,
            },
        };
        spec.validate().map_err(DeError::msg)?;
        Ok(spec)
    }
}

/// One control cycle's SLO inputs for one app, measured by the
/// simulator after actuation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloSample {
    /// Satisfied-CPU fraction: `allocated / offered`, clamped to
    /// `[0, 1]`; `1.0` when the app offered no work.
    pub satisfied: f64,
    /// MHz of discounted offered work the placement did not cover.
    pub deficit_mhz: f64,
    /// Mean response time over the cycle, when the app completed
    /// requests this cycle.
    pub rt_secs: Option<f64>,
    /// Utility over the cycle, when measured.
    pub utility: Option<f64>,
}

/// Named-cause decomposition of one cycle's deficit (all MHz). Built by
/// the simulator's attribution pass as a sequential min-chain, so
/// [`Attribution::total`] equals the sample's deficit by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Attribution {
    /// Capacity lost to nodes that were offline this cycle.
    pub outage_mhz: f64,
    /// Offered work the routing tier discounted away (cold instances,
    /// deflected shares) relative to the raw arrival stream.
    pub routing_mhz: f64,
    /// Deficit attributed to enacting a plan ≥ 1 cycle stale
    /// (pipelined control), scaled by staleness `s/(s+1)`.
    pub staleness_mhz: f64,
    /// Deficit left because the cycle's change budget was exhausted
    /// while online capacity still had headroom.
    pub budget_mhz: f64,
    /// Placed CPU the overbooking model's true-usage bite clipped away
    /// this cycle (allocated minus delivered, when overcommitted nodes
    /// could not honor their advertised capacity).
    pub overcommit_mhz: f64,
    /// The remainder: genuine cluster capacity shortfall (and solver
    /// imperfection). Takes whatever the other causes did not, keeping
    /// the sum exact.
    pub capacity_mhz: f64,
}

impl Attribution {
    /// Sum of all attributed parts — equals the cycle's deficit.
    pub fn total(&self) -> f64 {
        self.outage_mhz
            + self.routing_mhz
            + self.staleness_mhz
            + self.budget_mhz
            + self.overcommit_mhz
            + self.capacity_mhz
    }

    /// Fold another attribution into this one, component-wise.
    pub fn accumulate(&mut self, other: &Attribution) {
        self.outage_mhz += other.outage_mhz;
        self.routing_mhz += other.routing_mhz;
        self.staleness_mhz += other.staleness_mhz;
        self.budget_mhz += other.budget_mhz;
        self.overcommit_mhz += other.overcommit_mhz;
        self.capacity_mhz += other.capacity_mhz;
    }
}

/// Per-app SLO state folded cycle by cycle: compliance counts, an
/// error-budget burn rate, a sliding worst-window, and the accumulated
/// deficit with its cause breakdown.
#[derive(Clone, Debug)]
pub struct SloTracker {
    spec: SloSpec,
    cycles: u64,
    violations: u64,
    /// Ring of the last `window_cycles` compliance outcomes.
    window: Vec<bool>,
    window_pos: usize,
    window_violations: u32,
    worst_window: u32,
    total_deficit_mhz: f64,
    attribution: Attribution,
    last: Option<(SloSample, Attribution)>,
}

impl SloTracker {
    /// A fresh tracker for one app.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker {
            spec,
            cycles: 0,
            violations: 0,
            window: vec![false; spec.window_cycles.max(1) as usize],
            window_pos: 0,
            window_violations: 0,
            worst_window: 0,
            total_deficit_mhz: 0.0,
            attribution: Attribution::default(),
            last: None,
        }
    }

    /// Whether `sample` violates this tracker's spec.
    pub fn violates(&self, sample: &SloSample) -> bool {
        if sample.satisfied < self.spec.target_satisfied {
            return true;
        }
        if self.spec.rt_bound_secs > 0.0 {
            if let Some(rt) = sample.rt_secs {
                if rt > self.spec.rt_bound_secs {
                    return true;
                }
            }
        }
        if self.spec.min_utility > -1.0 {
            if let Some(u) = sample.utility {
                if u < self.spec.min_utility {
                    return true;
                }
            }
        }
        false
    }

    /// Fold one cycle's sample and its deficit attribution in.
    pub fn observe(&mut self, sample: &SloSample, attr: &Attribution) {
        self.cycles += 1;
        let bad = self.violates(sample);
        if bad {
            self.violations += 1;
        }
        // Sliding window: replace the outgoing outcome with this one.
        if self.window[self.window_pos] {
            self.window_violations -= 1;
        }
        self.window[self.window_pos] = bad;
        if bad {
            self.window_violations += 1;
        }
        self.window_pos = (self.window_pos + 1) % self.window.len();
        self.worst_window = self.worst_window.max(self.window_violations);
        self.total_deficit_mhz += sample.deficit_mhz;
        self.attribution.accumulate(attr);
        self.last = Some((*sample, *attr));
    }

    /// The spec this tracker enforces.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Cycles observed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles that violated the SLO.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fraction of compliant cycles (1.0 before any observation).
    pub fn compliance(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            1.0 - self.violations as f64 / self.cycles as f64
        }
    }

    /// Error-budget burn rate: observed violation rate over the
    /// budgeted rate. 1.0 burns exactly at budget; above 1.0 the app is
    /// eating into its budget faster than allowed.
    pub fn burn_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.violations as f64 / self.cycles as f64) / self.spec.error_budget
        }
    }

    /// Most violations seen in any `window_cycles`-wide sliding window.
    pub fn worst_window(&self) -> u32 {
        self.worst_window
    }

    /// Accumulated deficit across all observed cycles, MHz.
    pub fn total_deficit_mhz(&self) -> f64 {
        self.total_deficit_mhz
    }

    /// Accumulated per-cause deficit attribution.
    pub fn attribution(&self) -> &Attribution {
        &self.attribution
    }

    /// The most recent sample and its attribution, if any.
    pub fn last(&self) -> Option<&(SloSample, Attribution)> {
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(satisfied: f64, deficit: f64) -> SloSample {
        SloSample {
            satisfied,
            deficit_mhz: deficit,
            rt_secs: None,
            utility: None,
        }
    }

    #[test]
    fn defaults_comply_on_full_satisfaction() {
        let mut t = SloTracker::new(SloSpec::default());
        t.observe(&sample(1.0, 0.0), &Attribution::default());
        assert_eq!(t.violations(), 0);
        assert_eq!(t.compliance(), 1.0);
        assert_eq!(t.burn_rate(), 0.0);
    }

    #[test]
    fn satisfaction_below_target_violates() {
        let mut t = SloTracker::new(SloSpec::default());
        t.observe(&sample(0.90, 500.0), &Attribution::default());
        t.observe(&sample(0.99, 0.0), &Attribution::default());
        assert_eq!(t.violations(), 1);
        assert_eq!(t.compliance(), 0.5);
        // Budget 0.1, observed rate 0.5 → burning 5× too fast.
        assert!((t.burn_rate() - 5.0).abs() < 1e-12);
        assert_eq!(t.total_deficit_mhz(), 500.0);
    }

    #[test]
    fn rt_and_utility_bounds_only_fire_when_enabled() {
        let spec = SloSpec {
            rt_bound_secs: 0.5,
            min_utility: 0.0,
            ..SloSpec::default()
        };
        let t = SloTracker::new(spec);
        let mut s = sample(1.0, 0.0);
        assert!(!t.violates(&s));
        s.rt_secs = Some(0.9);
        assert!(t.violates(&s));
        s.rt_secs = Some(0.1);
        s.utility = Some(-0.5);
        assert!(t.violates(&s));
        // Disabled bounds ignore the same sample.
        let t = SloTracker::new(SloSpec::default());
        assert!(!t.violates(&s));
    }

    #[test]
    fn worst_window_tracks_the_densest_stretch() {
        let spec = SloSpec {
            window_cycles: 3,
            ..SloSpec::default()
        };
        let mut t = SloTracker::new(spec);
        for ok in [true, false, false, true, true, true] {
            t.observe(
                &sample(if ok { 1.0 } else { 0.5 }, 0.0),
                &Attribution::default(),
            );
        }
        assert_eq!(t.worst_window(), 2);
        assert_eq!(t.violations(), 2);
    }

    #[test]
    fn attribution_accumulates_and_sums() {
        let mut t = SloTracker::new(SloSpec::default());
        let a = Attribution {
            outage_mhz: 100.0,
            routing_mhz: 50.0,
            staleness_mhz: 0.0,
            budget_mhz: 15.0,
            overcommit_mhz: 10.0,
            capacity_mhz: 25.0,
        };
        t.observe(&sample(0.5, 200.0), &a);
        t.observe(&sample(0.5, 200.0), &a);
        assert_eq!(t.attribution().total(), 400.0);
        assert_eq!(t.total_deficit_mhz(), 400.0);
    }

    #[test]
    fn spec_serde_round_trips_and_fills_defaults() {
        let spec = SloSpec {
            target_satisfied: 0.9,
            rt_bound_secs: 0.25,
            ..SloSpec::default()
        };
        let back = SloSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        // A partial block keeps defaults for everything it omits.
        let partial = Value::Obj(vec![("target_satisfied".to_string(), Value::Float(0.8))]);
        let got = SloSpec::from_value(&partial).unwrap();
        assert_eq!(got.target_satisfied, 0.8);
        assert_eq!(got.window_cycles, SloSpec::default().window_cycles);
        assert_eq!(got.error_budget, SloSpec::default().error_budget);
    }

    #[test]
    fn spec_validation_rejects_bad_ranges() {
        assert!(SloSpec {
            target_satisfied: 0.0,
            ..SloSpec::default()
        }
        .validate()
        .is_err());
        assert!(SloSpec {
            error_budget: 0.0,
            ..SloSpec::default()
        }
        .validate()
        .is_err());
        assert!(SloSpec {
            window_cycles: 0,
            ..SloSpec::default()
        }
        .validate()
        .is_err());
        let bad = Value::Obj(vec![("target_satisfied".to_string(), Value::Float(2.0))]);
        assert!(SloSpec::from_value(&bad).is_err());
    }
}
