//! # slaq-types — domain model for SLA-driven heterogeneous workload placement
//!
//! Foundational vocabulary shared by every crate in the `slaq` workspace:
//!
//! * **Capacity units** — [`CpuMhz`] (CPU power, fluid / fractionally
//!   divisible, as in the paper's hypothetical-utility model) and [`MemMb`]
//!   (memory, integral: an instance either fits on a node or it does not).
//! * **Time** — [`SimTime`] (absolute simulation time) and [`SimDuration`]
//!   (spans), both in seconds, mirroring the paper's second-granularity
//!   control cycle (600 s) and experiment horizon (~72 000 s).
//! * **Identifiers** — [`NodeId`], [`AppId`], [`JobId`] and the unified
//!   [`EntityId`] used by the utility equalizer, which treats every
//!   transactional application and every long-running job as an entity
//!   competing for CPU power.
//! * **Cluster specification** — [`ClusterSpec`] / [`NodeSpec`] describing
//!   the virtualized data center (the paper evaluates 25 nodes × 4
//!   processors with a 3-jobs-per-node memory constraint).
//! * **Errors** — [`SlaqError`].
//!
//! The crate is dependency-light by design; heavier machinery (utility
//! curves, queueing models, placement) lives in downstream crates.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod error;
pub mod ids;
pub mod intern;
pub mod time;
pub mod units;

pub use cluster::{ClusterSpec, ClusterSpecBuilder, NodeSpec};
pub use error::SlaqError;
pub use ids::{AppId, EntityId, JobId, NodeId, ShardId, ZoneId};
pub use intern::Interner;
pub use time::{SimDuration, SimTime};
pub use units::{fcmp, CpuMhz, MemMb, Work};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, SlaqError>;
