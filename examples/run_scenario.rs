//! Run a scenario from a JSON spec file — scenarios are data, not code.
//!
//! ```text
//! # run a built-in preset
//! cargo run --release --example run_scenario -- --preset paper-small
//!
//! # list the corpus
//! cargo run --release --example run_scenario -- --list
//!
//! # write a preset's JSON, edit it, run it back
//! cargo run --release --example run_scenario -- --dump diurnal > my.json
//! cargo run --release --example run_scenario -- my.json
//! ```

use slaq::core::ScenarioSpec;

fn usage() -> ! {
    eprintln!(
        "usage: run_scenario [<spec.json> | --preset <name> | --dump <name> | --list]\n\
         presets: {}",
        ScenarioSpec::preset_names().join(", ")
    );
    std::process::exit(2);
}

fn load_spec() -> ScenarioSpec {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            for name in ScenarioSpec::preset_names() {
                let spec = ScenarioSpec::preset(name).expect("named preset");
                println!(
                    "{name:<22} {} nodes, {} apps, {} job streams, horizon {} s",
                    spec.cluster.node_count(),
                    spec.apps.len(),
                    spec.job_streams.len(),
                    spec.timing.horizon_secs
                );
            }
            std::process::exit(0);
        }
        Some("--dump") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = ScenarioSpec::preset(name).unwrap_or_else(|| usage());
            println!("{}", spec.to_json().expect("presets serialize"));
            std::process::exit(0);
        }
        Some("--preset") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            ScenarioSpec::preset(name).unwrap_or_else(|| usage())
        }
        Some(path) if !path.starts_with("--") => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            })
        }
        _ => usage(),
    }
}

fn main() {
    let spec = load_spec();
    if let Err(e) = spec.validate() {
        eprintln!("invalid spec: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "running '{}': {} nodes, {} apps, {} job streams, horizon {} s…",
        spec.name,
        spec.cluster.node_count(),
        spec.apps.len(),
        spec.job_streams.len(),
        spec.timing.horizon_secs
    );
    let report = spec.run().unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        std::process::exit(1);
    });

    let s = report.job_stats;
    println!("scenario          : {}", spec.name);
    println!("control cycles    : {}", report.cycles);
    println!("placement changes : {}", report.total_changes);
    println!(
        "jobs              : {} submitted, {} completed, {} met goals, {} disruptions",
        s.submitted, s.completed, s.goals_met, s.disruptions
    );
    if s.completed > 0 {
        println!("mean job utility  : {:.3}", s.mean_achieved_utility);
    }
    for (label, series) in [
        ("mean trans utility", "trans_utility"),
        ("mean jobs outlook ", "jobs_outlook"),
    ] {
        let m = &report.metrics;
        if let Some(mean) = m.mean_over(
            series,
            slaq::types::SimTime::ZERO,
            slaq::types::SimTime::from_secs(spec.timing.horizon_secs),
        ) {
            println!("{label}: {mean:.3}");
        }
    }
    println!("series recorded   : {}", report.metrics.names().len());
}
