//! # slaq-experiments — regenerating the paper's evaluation
//!
//! One module per concern:
//!
//! * [`figures`] — run the paper's experiment (E1/E2) and extract the
//!   Figure 1 and Figure 2 series as CSV;
//! * [`shape`] — quantitative "shape" metrics of a run (crossover time,
//!   equalization band, recovery) used both by the integration tests and
//!   by EXPERIMENTS.md;
//! * [`ascii`] — terminal line plots so `cargo run -p slaq-experiments
//!   --bin fig1` shows the curves without any plotting stack;
//! * [`comparison`] — E3: the utility controller vs the two baselines;
//! * [`churn`] — E9: churn-budget sensitivity of the placement solver;
//! * [`sweeps`] — E4: placement-solver scalability grids
//!   (rayon-parallel), seed robustness, brief runs over the whole
//!   scenario corpus ([`sweeps::corpus_sweep`]), and the control-plane
//!   staleness sweep ([`sweeps::staleness_sweep`]: corpus × pipeline
//!   modes, quantifying what overlapped solves acting on stale
//!   snapshots cost).
//!
//! Binaries: `fig1`, `fig2`, `baselines`, `sweep` (see DESIGN.md §4).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ascii;
pub mod churn;
pub mod comparison;
pub mod figures;
pub mod shape;
pub mod sweeps;

pub use churn::{churn_sweep, ChurnCell};
pub use comparison::{compare_controllers, ComparisonRow};
pub use figures::{fig1_csv, fig2_csv, run_paper_experiment};
pub use shape::{shape_metrics, ShapeMetrics};
pub use sweeps::{
    corpus_sweep, routing_sweep, staleness_sweep, CorpusOutcome, RoutingCell, StalenessCell,
};
