//! The job model: specification, lifecycle state, and progress tracking.

use serde::{Deserialize, Serialize};
use slaq_types::{CpuMhz, JobId, MemMb, NodeId, SimDuration, SimTime, SlaqError, Work};
use slaq_utility::CompletionGoal;

/// Static description of a long-running job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable name (experiment reports).
    pub name: String,
    /// Total CPU work the job must perform.
    pub total_work: Work,
    /// Maximum speed at which the job can consume CPU — "each job's
    /// maximum speed permits it to use a single processor" in the paper's
    /// evaluation.
    pub max_speed: CpuMhz,
    /// Memory footprint of the job's VM while placed (running or
    /// suspended-in-memory). The paper's testbed fits three such jobs per
    /// node.
    pub mem: MemMb,
    /// Completion-time SLA.
    pub goal: CompletionGoal,
}

impl JobSpec {
    /// Validate the spec.
    pub fn validate(&self) -> Result<(), SlaqError> {
        if self.total_work.as_f64() <= 0.0 {
            return Err(SlaqError::InvalidSpec(
                "job total_work must be positive".into(),
            ));
        }
        if self.max_speed.as_f64() <= 0.0 {
            return Err(SlaqError::InvalidSpec(
                "job max_speed must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Fastest possible runtime (all work at `max_speed`).
    pub fn fastest_runtime(&self) -> SimDuration {
        SimDuration::from_secs(self.total_work.secs_at(self.max_speed))
    }
}

/// Lifecycle state of a job.
///
/// ```text
/// Pending ──start──▶ Running ──complete──▶ Completed
///                      │  ▲
///               suspend│  │resume (same or different node = migration
///                      ▼  │         by suspend/resume)
///                   Suspended
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, never yet started; holds no resources.
    Pending,
    /// Executing on a node.
    Running {
        /// Where the job's VM currently runs.
        node: NodeId,
    },
    /// Suspended. The VM image remains on its node (holding memory there)
    /// until resumed or migrated.
    Suspended {
        /// Node holding the suspended image.
        node: NodeId,
    },
    /// Finished all its work.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
}

impl JobState {
    /// `true` while the job still needs CPU (pending, running or
    /// suspended).
    pub fn is_active(&self) -> bool {
        !matches!(self, JobState::Completed { .. })
    }

    /// Node currently hosting the job's VM, if any.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            JobState::Running { node } | JobState::Suspended { node } => Some(*node),
            _ => None,
        }
    }
}

/// A job instance: spec + dynamic state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// The static spec.
    pub spec: JobSpec,
    /// Submission instant.
    pub submitted: SimTime,
    /// Current lifecycle state.
    pub state: JobState,
    /// First-start instant, if the job ever started.
    pub started: Option<SimTime>,
    /// Work still to perform.
    pub remaining: Work,
    /// Utility actually achieved, set at completion ("the actual utility
    /// achieved by a job can only be calculated at completion time").
    pub achieved_utility: Option<f64>,
    /// Count of placement disruptions experienced (suspends + migrations),
    /// for churn accounting in experiments.
    pub disruptions: u32,
}

impl Job {
    /// Create a pending job.
    pub fn new(id: JobId, spec: JobSpec, submitted: SimTime) -> Result<Self, SlaqError> {
        spec.validate()?;
        Ok(Job {
            id,
            remaining: spec.total_work,
            spec,
            submitted,
            state: JobState::Pending,
            started: None,
            achieved_utility: None,
            disruptions: 0,
        })
    }

    /// `true` while the job still needs CPU.
    pub fn is_active(&self) -> bool {
        self.state.is_active()
    }

    /// `true` iff currently running.
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running { .. })
    }

    /// Fraction of total work already done, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        1.0 - (self.remaining.as_f64() / self.spec.total_work.as_f64()).clamp(0.0, 1.0)
    }

    /// Start the job on `node`. Legal from `Pending` only.
    pub fn start(&mut self, node: NodeId, now: SimTime) -> Result<(), SlaqError> {
        match self.state {
            JobState::Pending => {
                self.state = JobState::Running { node };
                self.started = Some(now);
                Ok(())
            }
            _ => Err(SlaqError::IllegalState(format!(
                "{} cannot start from {:?}",
                self.id, self.state
            ))),
        }
    }

    /// Suspend a running job in place.
    pub fn suspend(&mut self) -> Result<(), SlaqError> {
        match self.state {
            JobState::Running { node } => {
                self.state = JobState::Suspended { node };
                self.disruptions += 1;
                Ok(())
            }
            _ => Err(SlaqError::IllegalState(format!(
                "{} cannot suspend from {:?}",
                self.id, self.state
            ))),
        }
    }

    /// Resume a suspended job on `node` (a different node than it was
    /// suspended on constitutes a migration and counts as a disruption).
    pub fn resume(&mut self, node: NodeId) -> Result<(), SlaqError> {
        match self.state {
            JobState::Suspended { node: old } => {
                if old != node {
                    self.disruptions += 1;
                }
                self.state = JobState::Running { node };
                Ok(())
            }
            _ => Err(SlaqError::IllegalState(format!(
                "{} cannot resume from {:?}",
                self.id, self.state
            ))),
        }
    }

    /// Live-migrate a running job to another node.
    pub fn migrate(&mut self, to: NodeId) -> Result<(), SlaqError> {
        match self.state {
            JobState::Running { node } if node != to => {
                self.state = JobState::Running { node: to };
                self.disruptions += 1;
                Ok(())
            }
            JobState::Running { .. } => Ok(()), // no-op migration to self
            _ => Err(SlaqError::IllegalState(format!(
                "{} cannot migrate from {:?}",
                self.id, self.state
            ))),
        }
    }

    /// Effective execution speed at CPU allocation `alloc` (capped by the
    /// job's maximum speed).
    pub fn speed_at(&self, alloc: CpuMhz) -> CpuMhz {
        alloc.max_zero().min(self.spec.max_speed)
    }

    /// Time to finish the remaining work at sustained allocation `alloc`.
    pub fn time_to_completion(&self, alloc: CpuMhz) -> SimDuration {
        SimDuration::from_secs(self.remaining.secs_at(self.speed_at(alloc)))
    }

    /// Advance a *running* job by `dt` at allocation `alloc`. Returns the
    /// completion instant if the job finishes within the interval (work is
    /// integrated exactly, so completion lands mid-interval). `now` is the
    /// interval start. Non-running jobs make no progress.
    ///
    /// Completion carries a 1 ns tolerance: repeated fluid work
    /// subtraction leaves sub-nanosecond remainders that would otherwise
    /// schedule completion events indistinguishable (in `f64` time) from
    /// "now", stalling an event loop.
    pub fn advance(&mut self, alloc: CpuMhz, now: SimTime, dt: SimDuration) -> Option<SimTime> {
        if !self.is_running() {
            return None;
        }
        let speed = self.speed_at(alloc);
        let needed = self.remaining.secs_at(speed);
        if needed <= dt.as_secs() + 1e-9 {
            let at = now + SimDuration::from_secs(needed.min(dt.as_secs().max(0.0)));
            self.remaining = Work::ZERO;
            self.state = JobState::Completed { at };
            self.achieved_utility = Some(self.spec.goal.utility_at(at));
            Some(at)
        } else {
            self.remaining = self
                .remaining
                .saturating_sub(Work::from_power_secs(speed, dt.as_secs()));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn spec(work_mhz_s: f64) -> JobSpec {
        JobSpec {
            name: "batch".into(),
            total_work: Work::new(work_mhz_s),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::ZERO,
                SimDuration::from_secs(work_mhz_s / 3000.0),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    fn job() -> Job {
        Job::new(JobId::new(0), spec(3_000_000.0), SimTime::ZERO).unwrap()
    }

    #[test]
    fn spec_validation() {
        let mut s = spec(100.0);
        s.total_work = Work::ZERO;
        assert!(s.validate().is_err());
        let mut s = spec(100.0);
        s.max_speed = CpuMhz::ZERO;
        assert!(s.validate().is_err());
    }

    #[test]
    fn fastest_runtime_uses_max_speed() {
        assert_eq!(spec(3_000_000.0).fastest_runtime().as_secs(), 1000.0);
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut j = job();
        assert!(j.is_active());
        assert!(!j.is_running());
        j.start(NodeId::new(3), SimTime::from_secs(10.0)).unwrap();
        assert!(j.is_running());
        assert_eq!(j.state.node(), Some(NodeId::new(3)));
        assert_eq!(j.started, Some(SimTime::from_secs(10.0)));
        j.suspend().unwrap();
        assert!(!j.is_running());
        assert!(j.is_active());
        assert_eq!(j.state.node(), Some(NodeId::new(3)));
        assert_eq!(j.disruptions, 1);
        j.resume(NodeId::new(7)).unwrap(); // migration by resume
        assert_eq!(j.state.node(), Some(NodeId::new(7)));
        assert_eq!(j.disruptions, 2);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut j = job();
        assert!(j.suspend().is_err());
        assert!(j.resume(NodeId::new(0)).is_err());
        assert!(j.migrate(NodeId::new(0)).is_err());
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        assert!(j.start(NodeId::new(1), SimTime::ZERO).is_err());
        j.suspend().unwrap();
        assert!(j.suspend().is_err());
        assert!(j.migrate(NodeId::new(1)).is_err());
    }

    #[test]
    fn migrate_to_self_is_noop() {
        let mut j = job();
        j.start(NodeId::new(2), SimTime::ZERO).unwrap();
        j.migrate(NodeId::new(2)).unwrap();
        assert_eq!(j.disruptions, 0);
        j.migrate(NodeId::new(4)).unwrap();
        assert_eq!(j.disruptions, 1);
    }

    #[test]
    fn speed_is_capped_at_max_speed() {
        let j = job();
        assert_eq!(j.speed_at(CpuMhz::new(12_000.0)), CpuMhz::new(3000.0));
        assert_eq!(j.speed_at(CpuMhz::new(1500.0)), CpuMhz::new(1500.0));
        assert_eq!(j.speed_at(CpuMhz::new(-5.0)), CpuMhz::ZERO);
    }

    #[test]
    fn advance_integrates_work() {
        let mut j = job(); // 3e6 MHz·s: 1000 s at full speed
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        let done = j.advance(
            CpuMhz::new(3000.0),
            SimTime::ZERO,
            SimDuration::from_secs(400.0),
        );
        assert!(done.is_none());
        assert!((j.progress() - 0.4).abs() < 1e-12);
        assert_eq!(j.remaining, Work::new(1_800_000.0));
    }

    #[test]
    fn advance_detects_mid_interval_completion() {
        let mut j = job();
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        // 600 s of the 1000 s done…
        j.advance(
            CpuMhz::new(3000.0),
            SimTime::ZERO,
            SimDuration::from_secs(600.0),
        );
        // …then a 600 s cycle: completes 400 s in.
        let done = j.advance(
            CpuMhz::new(3000.0),
            SimTime::from_secs(600.0),
            SimDuration::from_secs(600.0),
        );
        assert_eq!(done, Some(SimTime::from_secs(1000.0)));
        assert!(!j.is_active());
        // Completed exactly at fastest finish ⇒ full utility.
        assert_eq!(j.achieved_utility, Some(1.0));
        assert_eq!(j.progress(), 1.0);
    }

    #[test]
    fn late_completion_yields_partial_utility() {
        let mut j = job(); // goal at 1250 s, exhausted 2000 s
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        // Run at half speed: finishes at 2000 s ⇒ utility 0.
        let done = j.advance(
            CpuMhz::new(1500.0),
            SimTime::ZERO,
            SimDuration::from_secs(4000.0),
        );
        assert_eq!(done, Some(SimTime::from_secs(2000.0)));
        assert_eq!(j.achieved_utility, Some(0.0));
    }

    #[test]
    fn suspended_jobs_make_no_progress() {
        let mut j = job();
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        j.suspend().unwrap();
        let before = j.remaining;
        assert!(j
            .advance(
                CpuMhz::new(3000.0),
                SimTime::ZERO,
                SimDuration::from_secs(100.0)
            )
            .is_none());
        assert_eq!(j.remaining, before);
    }

    #[test]
    fn sub_nanosecond_remainder_completes_even_with_zero_dt() {
        // Regression: fp dust after repeated subtraction must not leave a
        // job forever "about to finish" (Zeno stall in the event loop).
        let mut j = job();
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        j.remaining = Work::new(1e-6); // 0.33 ns at full speed
        let done = j.advance(
            CpuMhz::new(3000.0),
            SimTime::from_secs(500.0),
            SimDuration::ZERO,
        );
        assert_eq!(done, Some(SimTime::from_secs(500.0)));
        assert!(!j.is_active());
    }

    #[test]
    fn zero_dt_with_real_work_left_is_a_noop() {
        let mut j = job();
        j.start(NodeId::new(0), SimTime::ZERO).unwrap();
        let before = j.remaining;
        assert!(j
            .advance(CpuMhz::new(3000.0), SimTime::ZERO, SimDuration::ZERO)
            .is_none());
        assert_eq!(j.remaining, before);
    }

    #[test]
    fn time_to_completion_respects_cap() {
        let j = job();
        assert_eq!(j.time_to_completion(CpuMhz::new(3000.0)).as_secs(), 1000.0);
        assert_eq!(
            j.time_to_completion(CpuMhz::new(30_000.0)).as_secs(),
            1000.0
        );
        assert!(j.time_to_completion(CpuMhz::ZERO).is_infinite());
    }
}
