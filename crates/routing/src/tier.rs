//! The assembled routing tier: router + aggregator + interned metric
//! keys, as one object the simulator owns and drives once per control
//! cycle (the *route* stage, ahead of sensing — simulator-side, so the
//! router series never depend on how the controller is wrapped).

use crate::aggregator::{Aggregator, InstanceReport};
use crate::router::{RouteOutcome, Router, RouterConfig};
use slaq_obs::Recorder;
use slaq_types::{AppId, NodeId};
use std::collections::BTreeMap;

/// Interned per-app metric-series names. Built once per app on first
/// routing (mirroring the controller's interned prediction keys) so the
/// per-cycle hot loop never formats strings.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSeriesKeys {
    /// Share-weighted warmth series, `route_warm_{app}`.
    pub warm: String,
    /// Effective-work discount series, `route_disc_{app}`.
    pub discount: String,
}

/// Publisher → aggregator → router, bundled.
#[derive(Debug, Clone)]
pub struct RoutingTier {
    router: Router,
    agg: Aggregator,
    keys: BTreeMap<AppId, AppSeriesKeys>,
    /// Most recent per-app effective-work discount, for SLO violation
    /// attribution (a read-only mirror of the routed outcome — the
    /// router itself never consults it).
    discounts: BTreeMap<AppId, f64>,
    /// Scratch reused across `route_app` calls.
    live: Vec<NodeId>,
    warmth: Vec<f64>,
    reports: Vec<InstanceReport>,
    /// Observability handle (counters only — routing is far too hot
    /// for per-request events; requests are batched per cycle anyway).
    recorder: Recorder,
    k_requests: slaq_obs::Key,
    k_apps: slaq_obs::Key,
}

impl RoutingTier {
    /// Assemble a tier from one config (the aggregator takes its EWMA
    /// factor from `cfg.warm_alpha`, clamped into `(0, 1]`).
    pub fn new(cfg: RouterConfig) -> Self {
        let alpha = if cfg.warm_alpha > 0.0 && cfg.warm_alpha <= 1.0 {
            cfg.warm_alpha
        } else {
            0.3
        };
        let recorder = Recorder::off();
        let k_requests = recorder.key("route.requests");
        let k_apps = recorder.key("route.app_cycles");
        RoutingTier {
            router: Router::new(cfg),
            agg: Aggregator::new(alpha).expect("clamped alpha"),
            keys: BTreeMap::new(),
            discounts: BTreeMap::new(),
            live: Vec::new(),
            warmth: Vec::new(),
            reports: Vec::new(),
            recorder,
            k_requests,
            k_apps,
        }
    }

    /// Install an observability [`Recorder`]: the tier counts routed
    /// requests (`route.requests`) and per-app route invocations
    /// (`route.app_cycles`). Observes only — routing decisions never
    /// read the recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.k_requests = recorder.key("route.requests");
        self.k_apps = recorder.key("route.app_cycles");
        self.recorder = recorder;
    }

    /// The router config in force.
    pub fn config(&self) -> &RouterConfig {
        self.router.config()
    }

    /// `true` when the tier's warmth scores should surface as placement
    /// affinity (the uniform baseline routes blindly and publishes
    /// none).
    pub fn publishes_affinity(&self) -> bool {
        !self.config().uniform
    }

    /// Route one application's cycle: reconcile the live instance set,
    /// score and apportion the batch, then publish the resulting shares
    /// back into the aggregator (the publisher half of the loop — in the
    /// fluid simulation the routed share *is* the share served).
    ///
    /// `instances` are the app's live `(node, cpu-allocation)` pairs in
    /// node-id order.
    pub fn route_app(
        &mut self,
        app: AppId,
        requests: u64,
        instances: &[(NodeId, f64)],
    ) -> RouteOutcome {
        self.recorder.count(self.k_requests, requests);
        self.recorder.count(self.k_apps, 1);
        self.live.clear();
        self.live.extend(instances.iter().map(|&(n, _)| n));
        self.agg.sync_instances(app, &self.live);
        if instances.is_empty() {
            return RouteOutcome::idle();
        }
        // After the sync the aggregator's state is index-aligned with
        // `instances`, so the warmth read is one contiguous copy.
        self.agg.warmth_into(app, &mut self.warmth);
        let out = self.router.route(requests, instances, &self.warmth);
        if requests > 0 {
            let total_cap: f64 = instances.iter().map(|&(_, c)| c.max(0.0)).sum();
            self.reports.clear();
            // `out.shares` preserves instance order — zip, don't search.
            for (&(node, share), &(_, capw)) in out.shares.iter().zip(instances) {
                let capw = capw.max(0.0);
                // Utilization proxy: routed share relative to capacity
                // share (1 = loaded exactly to capacity).
                let util = if total_cap > 0.0 && capw > 0.0 {
                    share * total_cap / capw
                } else {
                    share * instances.len() as f64
                };
                self.reports.push(InstanceReport {
                    app,
                    node,
                    share,
                    util,
                });
            }
            self.agg.publish(&self.reports);
        }
        self.discounts.insert(app, out.discount);
        out
    }

    /// The last cycle's effective-work discount routed for `app`, or
    /// `None` before its first `route_app` call. SLO attribution reads
    /// this to size the routing-discount-mismatch cause.
    pub fn last_discount(&self, app: AppId) -> Option<f64> {
        self.discounts.get(&app).copied()
    }

    /// Warmth snapshot for one app (id-sorted), for the solver's
    /// affinity term.
    pub fn affinity(&self, app: AppId) -> Vec<(NodeId, f64)> {
        self.agg.affinity(app)
    }

    /// The aggregator (read access for tests/experiments).
    pub fn aggregator(&self) -> &Aggregator {
        &self.agg
    }

    /// Interned metric keys for one app, formatted on first use only.
    pub fn series_keys(&mut self, app: AppId) -> &AppSeriesKeys {
        self.keys.entry(app).or_insert_with(|| AppSeriesKeys {
            warm: format!("route_warm_{app}"),
            discount: format!("route_disc_{app}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(pairs: &[(u32, f64)]) -> Vec<(NodeId, f64)> {
        pairs.iter().map(|&(n, c)| (NodeId::new(n), c)).collect()
    }

    #[test]
    fn repeated_cycles_concentrate_warmth_and_lower_the_discount() {
        let cfg = RouterConfig {
            warm_gain: 0.5,
            warm_alpha: 0.5,
            load_penalty: 0.2,
            ..RouterConfig::default()
        };
        let mut tier = RoutingTier::new(cfg);
        let app = AppId::new(0);
        let nodes = inst(&[(0, 1000.0), (1, 1000.0), (2, 1000.0)]);
        let first = tier.route_app(app, 100_000, &nodes);
        let mut last = first.clone();
        for _ in 0..12 {
            last = tier.route_app(app, 100_000, &nodes);
        }
        assert!(
            last.discount < first.discount,
            "warmth feedback must lower the discount: {} -> {}",
            first.discount,
            last.discount
        );
        assert!(last.warm_hit > first.warm_hit);
    }

    #[test]
    fn instance_loss_resets_warmth() {
        let mut tier = RoutingTier::new(RouterConfig {
            warm_alpha: 1.0,
            ..RouterConfig::default()
        });
        let app = AppId::new(1);
        tier.route_app(app, 1000, &inst(&[(0, 1.0), (1, 1.0)]));
        assert!(tier.aggregator().tracked() > 0);
        // Node 0 vanishes; node 2 appears cold.
        tier.route_app(app, 1000, &inst(&[(1, 1.0), (2, 1.0)]));
        assert_eq!(tier.affinity(app).len(), 2);
        assert_eq!(tier.aggregator().warmth(app, NodeId::new(0)), 0.0);
    }

    #[test]
    fn series_keys_are_interned_once() {
        let mut tier = RoutingTier::new(RouterConfig::default());
        let k1 = tier.series_keys(AppId::new(7)).warm.clone();
        let k2 = tier.series_keys(AppId::new(7)).warm.clone();
        assert_eq!(k1, "route_warm_app7");
        assert_eq!(k1, k2);
        assert_eq!(tier.series_keys(AppId::new(7)).discount, "route_disc_app7");
    }

    #[test]
    fn uniform_tier_publishes_no_affinity_flag() {
        let tier = RoutingTier::new(RouterConfig {
            uniform: true,
            ..RouterConfig::default()
        });
        assert!(!tier.publishes_affinity());
        assert!(RoutingTier::new(RouterConfig::default()).publishes_affinity());
    }
}
