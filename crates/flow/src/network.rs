//! Residual flow network with Dinic max-flow and successive-shortest-path
//! min-cost flow, designed for **reuse across control cycles**:
//!
//! * [`FlowNetwork::clear`] resets topology while keeping every allocation
//!   (adjacency lists, edge storage), so a controller can rebuild its
//!   transportation network each cycle without touching the allocator;
//! * [`FlowNetwork::set_cap`] rewrites one edge's capacity in place, the
//!   warm-path primitive for "same topology, new demands";
//! * [`MaxFlowScratch`] / [`MinCostScratch`] hold the BFS/DFS/Dijkstra
//!   working memory so repeated solves allocate nothing;
//! * the Bellman–Ford potential initialization runs **only when a
//!   negative-cost edge exists** (tracked by [`FlowNetwork::add_edge_with_cost`]);
//!   networks with non-negative costs go straight to Dijkstra.
//!
//! The blocking-flow DFS is an explicit stack walk, so level graphs of any
//! depth (thousands of nodes) cannot overflow the call stack.

use std::collections::VecDeque;

/// Identifier of a directed edge added with [`FlowNetwork::add_edge`].
/// Stable across solver runs; use it to read back flow with
/// [`FlowNetwork::flow_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,  // residual capacity
    cost: i64, // per-unit cost (0 for pure max-flow uses)
    orig_cap: i64,
}

/// A directed flow network over `n` numbered nodes.
///
/// Internally stores paired residual edges: edge `2k` is the forward edge,
/// `2k+1` its reverse. [`EdgeId`] returned by `add_edge` indexes the
/// forward edge.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// `graph[v]` lists indices into `edges` leaving `v`.
    graph: Vec<Vec<usize>>,
    edges: Vec<Edge>,
    /// `true` once any forward edge carries a negative cost; gates the
    /// Bellman–Ford pass in [`FlowNetwork::min_cost_flow`].
    has_negative_cost: bool,
}

/// Result of a min-cost-flow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinCostOutcome {
    /// Units of flow actually routed (≤ the requested amount).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: i64,
}

/// Reusable working memory for [`FlowNetwork::max_flow_with`].
#[derive(Debug, Clone, Default)]
pub struct MaxFlowScratch {
    level: Vec<i32>,
    it: Vec<usize>,
    queue: VecDeque<usize>,
    /// Edge ids of the current augmenting path (explicit DFS stack).
    path: Vec<usize>,
}

/// Reusable working memory for [`FlowNetwork::min_cost_flow_with`].
#[derive(Debug, Clone, Default)]
pub struct MinCostScratch {
    pot: Vec<i64>,
    dist: Vec<i64>,
    prev_edge: Vec<usize>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, usize)>>,
}

const INF: i64 = i64::MAX / 4;

impl FlowNetwork {
    /// Create a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
            has_negative_cost: false,
        }
    }

    /// Reset to `n` nodes and no edges, **retaining** the adjacency-list
    /// and edge-storage allocations of the previous build. The warm-path
    /// constructor: a controller that re-solves every cycle calls
    /// `clear` + `add_edge` and performs no heap allocation once the
    /// high-water mark is reached.
    pub fn clear(&mut self, n: usize) {
        for adj in self.graph.iter_mut() {
            adj.clear();
        }
        if self.graph.len() > n {
            self.graph.truncate(n);
        } else {
            self.graph.resize_with(n, Vec::new);
        }
        self.edges.clear();
        self.has_negative_cost = false;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Number of forward edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Append one more node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.graph.push(Vec::new());
        self.graph.len() - 1
    }

    /// Add a directed edge `u → v` with capacity `cap ≥ 0` and unit cost
    /// `cost`. Panics on out-of-range endpoints or negative capacity
    /// (caller bugs, not data conditions).
    pub fn add_edge_with_cost(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(
            u < self.graph.len() && v < self.graph.len(),
            "endpoint out of range"
        );
        assert!(cap >= 0, "negative capacity");
        if cost < 0 {
            self.has_negative_cost = true;
        }
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            orig_cap: cap,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            orig_cap: 0,
        });
        self.graph[u].push(id);
        self.graph[v].push(id + 1);
        EdgeId(id)
    }

    /// Add a zero-cost directed edge (the common case for feasibility
    /// networks).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) -> EdgeId {
        self.add_edge_with_cost(u, v, cap, 0)
    }

    /// Rewrite a forward edge's capacity in place, discarding any flow it
    /// carried. The warm-path primitive: a cycle whose topology matches
    /// the previous one only calls `set_cap` on every edge and re-solves.
    pub fn set_cap(&mut self, e: EdgeId, cap: i64) {
        assert!(cap >= 0, "negative capacity");
        let fwd = &mut self.edges[e.0];
        fwd.cap = cap;
        fwd.orig_cap = cap;
        self.edges[e.0 ^ 1].cap = 0;
    }

    /// Flow currently routed through a forward edge.
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        let fwd = &self.edges[e.0];
        fwd.orig_cap - fwd.cap
    }

    /// Withdraw `amount` units of flow from a forward edge without
    /// touching its capacity: the forward residual grows back and the
    /// paired reverse residual shrinks. The incremental-reflow
    /// primitive — canceling a dirty entity's arc flow returns those
    /// units to the shared downstream edges so a delta re-route starts
    /// from a consistent residual state. Panics when `amount` exceeds
    /// the flow present (caller bug: flows only come from this network).
    pub fn cancel_flow(&mut self, e: EdgeId, amount: i64) {
        assert!(amount >= 0, "negative cancel");
        assert!(
            amount <= self.flow_on(e),
            "canceling more flow than present"
        );
        self.edges[e.0].cap += amount;
        self.edges[e.0 ^ 1].cap -= amount;
    }

    /// Force `amount` units of flow onto a forward edge (forward residual
    /// shrinks, reverse residual grows) — the mirror of
    /// [`FlowNetwork::cancel_flow`], for callers that know the exact
    /// end-state flow of a re-route and construct it directly instead of
    /// re-running the solver. Panics when `amount` exceeds the forward
    /// residual.
    pub fn push_flow(&mut self, e: EdgeId, amount: i64) {
        assert!(amount >= 0, "negative push");
        assert!(
            amount <= self.edges[e.0].cap,
            "pushing past residual capacity"
        );
        self.edges[e.0].cap -= amount;
        self.edges[e.0 ^ 1].cap += amount;
    }

    /// Reset all flow (restore residual capacities), keeping the topology.
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.cap = e.orig_cap;
        }
    }

    // ------------------------------------------------------------------
    // Dinic max-flow
    // ------------------------------------------------------------------

    /// Maximum flow from `s` to `t` (Dinic), allocating its own scratch.
    /// The network retains the flow; inspect per-edge values with
    /// [`FlowNetwork::flow_on`] or run [`FlowNetwork::reset_flow`] to
    /// start over. Calling it again continues from the residual state, so
    /// staged solves (enable edges, flow, enable more, flow again) compose.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut scratch = MaxFlowScratch::default();
        self.max_flow_with(s, t, &mut scratch)
    }

    /// [`FlowNetwork::max_flow`] with caller-provided scratch: repeated
    /// solves reuse the BFS queue, level array, iterator array and DFS
    /// stack without allocating.
    pub fn max_flow_with(&mut self, s: usize, t: usize, scratch: &mut MaxFlowScratch) -> i64 {
        assert!(s < self.graph.len() && t < self.graph.len());
        if s == t {
            return 0;
        }
        let n = self.graph.len();
        scratch.level.resize(n, -1);
        scratch.it.resize(n, 0);
        let mut total = 0i64;
        loop {
            // BFS levels on the residual graph.
            scratch.level.iter_mut().for_each(|l| *l = -1);
            scratch.level[s] = 0;
            scratch.queue.clear();
            scratch.queue.push_back(s);
            while let Some(v) = scratch.queue.pop_front() {
                for &eid in &self.graph[v] {
                    let e = &self.edges[eid];
                    if e.cap > 0 && scratch.level[e.to] < 0 {
                        scratch.level[e.to] = scratch.level[v] + 1;
                        scratch.queue.push_back(e.to);
                    }
                }
            }
            if scratch.level[t] < 0 {
                return total;
            }
            scratch.it.iter_mut().for_each(|i| *i = 0);
            total += self.blocking_flow(s, t, scratch);
        }
    }

    /// One blocking flow on the current level graph, via an explicit-stack
    /// DFS (`scratch.path` holds the edge ids of the walk), so deep level
    /// graphs cannot overflow the call stack.
    fn blocking_flow(&mut self, s: usize, t: usize, scratch: &mut MaxFlowScratch) -> i64 {
        let MaxFlowScratch {
            level, it, path, ..
        } = scratch;
        path.clear();
        let mut total = 0i64;
        let mut v = s;
        loop {
            if v == t {
                // Augment along `path`.
                let mut push = i64::MAX;
                for &eid in path.iter() {
                    push = push.min(self.edges[eid].cap);
                }
                for &eid in path.iter() {
                    self.edges[eid].cap -= push;
                    self.edges[eid ^ 1].cap += push;
                }
                total += push;
                // Retreat to the tail of the first saturated edge.
                let first_sat = path
                    .iter()
                    .position(|&eid| self.edges[eid].cap == 0)
                    .expect("bottleneck edge saturated");
                path.truncate(first_sat);
                v = match path.last() {
                    Some(&eid) => self.edges[eid].to,
                    None => s,
                };
                continue;
            }
            // Advance along the next admissible edge, if any.
            let mut advanced = false;
            while it[v] < self.graph[v].len() {
                let eid = self.graph[v][it[v]];
                let e = &self.edges[eid];
                if e.cap > 0 && level[e.to] == level[v] + 1 {
                    path.push(eid);
                    v = e.to;
                    advanced = true;
                    break;
                }
                it[v] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: prune and retreat.
            if v == s {
                return total;
            }
            level[v] = -1;
            let eid = path.pop().expect("non-source dead end has an inbound edge");
            let u = self.edges[eid ^ 1].to;
            it[u] += 1;
            v = u;
        }
    }

    // ------------------------------------------------------------------
    // Min-cost flow (successive shortest paths with potentials)
    // ------------------------------------------------------------------

    /// Route up to `want` units from `s` to `t` minimizing total cost,
    /// allocating its own scratch.
    pub fn min_cost_flow(&mut self, s: usize, t: usize, want: i64) -> MinCostOutcome {
        let mut scratch = MinCostScratch::default();
        self.min_cost_flow_with(s, t, want, &mut scratch)
    }

    /// [`FlowNetwork::min_cost_flow`] with caller-provided scratch.
    ///
    /// Handles negative edge costs — a Bellman–Ford pass initializes the
    /// potentials, but **only when a negative-cost edge was actually
    /// added**; all-non-negative networks (every placement transportation
    /// network) start from zero potentials and go straight to Dijkstra.
    /// Negative cycles are not supported — placement networks never
    /// contain them. Returns the amount actually routed and its cost.
    pub fn min_cost_flow_with(
        &mut self,
        s: usize,
        t: usize,
        want: i64,
        scratch: &mut MinCostScratch,
    ) -> MinCostOutcome {
        assert!(s < self.graph.len() && t < self.graph.len());
        let n = self.graph.len();
        let mut flow = 0i64;
        let mut cost = 0i64;
        if s == t || want <= 0 {
            return MinCostOutcome { flow, cost };
        }

        let MinCostScratch {
            pot,
            dist,
            prev_edge,
            heap,
        } = scratch;
        pot.clear();
        if self.has_negative_cost {
            // Potentials via Bellman–Ford (supports negative costs).
            pot.resize(n, INF);
            pot[s] = 0;
            for _ in 0..n {
                let mut changed = false;
                for v in 0..n {
                    if pot[v] == INF {
                        continue;
                    }
                    for &eid in &self.graph[v] {
                        let e = &self.edges[eid];
                        if e.cap > 0 && pot[v] + e.cost < pot[e.to] {
                            pot[e.to] = pot[v] + e.cost;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        } else {
            // Non-negative costs: zero potentials are already feasible
            // (reduced cost = cost ≥ 0), so the O(V·E) pass is skipped.
            pot.resize(n, 0);
        }

        dist.resize(n, INF);
        prev_edge.resize(n, usize::MAX);
        while flow < want {
            // Dijkstra on reduced costs.
            dist.iter_mut().for_each(|d| *d = INF);
            prev_edge.iter_mut().for_each(|p| *p = usize::MAX);
            dist[s] = 0;
            heap.clear();
            heap.push(std::cmp::Reverse((0i64, s)));
            while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
                if d > dist[v] {
                    continue;
                }
                for &eid in &self.graph[v] {
                    let e = &self.edges[eid];
                    if e.cap <= 0 || pot[e.to] == INF || pot[v] == INF {
                        continue;
                    }
                    let nd = d + e.cost + pot[v] - pot[e.to];
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev_edge[e.to] = eid;
                        heap.push(std::cmp::Reverse((nd, e.to)));
                    }
                }
            }
            if dist[t] == INF {
                break; // t unreachable: done
            }
            for v in 0..n {
                if dist[v] < INF && pot[v] < INF {
                    pot[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut push = want - flow;
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                cost += push * self.edges[eid].cost;
                v = self.edges[eid ^ 1].to;
            }
            flow += push;
        }
        MinCostOutcome { flow, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_two_node_network() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 7);
        assert_eq!(g.max_flow(0, 1), 7);
        assert_eq!(g.flow_on(e), 7);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two disjoint paths of capacity 10 and 5, plus a cross
        // edge enabling 15 total.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 2, 5);
        g.add_edge(1, 3, 5);
        g.add_edge(1, 2, 15);
        g.add_edge(2, 3, 10);
        assert_eq!(g.max_flow(0, 3), 15);
    }

    #[test]
    fn flow_respects_bottleneck() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 100);
        g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 100);
        assert_eq!(g.max_flow(0, 3), 3);
    }

    #[test]
    fn disconnected_target_gets_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5);
        assert_eq!(g.max_flow(0, 2), 0);
    }

    #[test]
    fn same_source_and_sink() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 5);
        assert_eq!(g.max_flow(0, 0), 0);
    }

    #[test]
    fn reset_flow_restores_capacity() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 4);
        assert_eq!(g.max_flow(0, 1), 4);
        g.reset_flow();
        assert_eq!(g.flow_on(e), 0);
        assert_eq!(g.max_flow(0, 1), 4);
    }

    #[test]
    fn bipartite_transportation_shape() {
        // 2 apps (demand 8, 6) × 3 nodes (capacity 5 each), app0 placed on
        // nodes {0,1}, app1 on {1,2}: max satisfiable = 5+5+... app0 ≤ 10,
        // app1 ≤ 10, per-node ≤ 5, total ≤ 14 demand, but node1 shared:
        // best = app0:8 (5 on n0, 3 on n1), app1:6 (2 on n1 + ... n1 has 2
        // left, n2 gives 5) = 7? app1 gets min(6, 2+5)=6. Total 14? n1
        // carries 3+2=5 ✓. So full 14.
        let mut g = FlowNetwork::new(7); // 0=s, 1-2 apps, 3-5 nodes, 6=t
        g.add_edge(0, 1, 8);
        g.add_edge(0, 2, 6);
        g.add_edge(1, 3, i64::MAX / 8);
        g.add_edge(1, 4, i64::MAX / 8);
        g.add_edge(2, 4, i64::MAX / 8);
        g.add_edge(2, 5, i64::MAX / 8);
        g.add_edge(3, 6, 5);
        g.add_edge(4, 6, 5);
        g.add_edge(5, 6, 5);
        assert_eq!(g.max_flow(0, 6), 14);
    }

    #[test]
    fn add_node_grows_network() {
        let mut g = FlowNetwork::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        assert_eq!(g.len(), 2);
        g.add_edge(0, v, 3);
        assert_eq!(g.max_flow(0, v), 3);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn add_edge_checks_endpoints() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 5, 1);
    }

    #[test]
    fn min_cost_prefers_cheap_path() {
        // Two parallel 0→1 edges: cost 1 cap 5, cost 3 cap 5.
        let mut g = FlowNetwork::new(2);
        let cheap = g.add_edge_with_cost(0, 1, 5, 1);
        let dear = g.add_edge_with_cost(0, 1, 5, 3);
        let out = g.min_cost_flow(0, 1, 7);
        assert_eq!(
            out,
            MinCostOutcome {
                flow: 7,
                cost: 5 + 6
            }
        );
        assert_eq!(g.flow_on(cheap), 5);
        assert_eq!(g.flow_on(dear), 2);
    }

    #[test]
    fn min_cost_partial_when_capacity_short() {
        let mut g = FlowNetwork::new(3);
        g.add_edge_with_cost(0, 1, 4, 2);
        g.add_edge_with_cost(1, 2, 3, 1);
        let out = g.min_cost_flow(0, 2, 100);
        assert_eq!(out, MinCostOutcome { flow: 3, cost: 9 });
    }

    #[test]
    fn min_cost_handles_negative_edges() {
        // Path 0→1→2 costs 2−1 = 1/unit; direct 0→2 costs 2/unit.
        let mut g = FlowNetwork::new(3);
        g.add_edge_with_cost(0, 1, 2, 2);
        g.add_edge_with_cost(1, 2, 2, -1);
        g.add_edge_with_cost(0, 2, 2, 2);
        let out = g.min_cost_flow(0, 2, 4);
        #[allow(clippy::identity_op)]
        let expected = MinCostOutcome {
            flow: 4,
            cost: 2 * 1 + 2 * 2,
        };
        assert_eq!(out, expected);
    }

    #[test]
    fn min_cost_zero_request() {
        let mut g = FlowNetwork::new(2);
        g.add_edge_with_cost(0, 1, 5, 1);
        assert_eq!(
            g.min_cost_flow(0, 1, 0),
            MinCostOutcome { flow: 0, cost: 0 }
        );
    }

    #[test]
    fn clear_retains_usability_and_resets_negative_flag() {
        let mut g = FlowNetwork::new(3);
        g.add_edge_with_cost(0, 1, 5, -2);
        g.add_edge(1, 2, 5);
        assert_eq!(g.min_cost_flow(0, 2, 10).flow, 5);
        // Rebuild smaller, then larger, on the same allocation.
        g.clear(2);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 0);
        let e = g.add_edge(0, 1, 3);
        assert_eq!(g.max_flow(0, 1), 3);
        assert_eq!(g.flow_on(e), 3);
        g.clear(4);
        assert_eq!(g.len(), 4);
        g.add_edge(0, 3, 9);
        assert_eq!(g.max_flow(0, 3), 9);
    }

    #[test]
    fn set_cap_rewrites_capacity_and_discards_flow() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 4);
        assert_eq!(g.max_flow(0, 1), 4);
        g.set_cap(e, 9);
        assert_eq!(g.flow_on(e), 0);
        assert_eq!(g.max_flow(0, 1), 9);
        g.set_cap(e, 0);
        assert_eq!(g.max_flow(0, 1), 0);
    }

    #[test]
    fn staged_max_flow_composes() {
        // Gate one source edge closed, flow, open it, flow again: totals
        // accumulate exactly as a single solve would.
        let mut g = FlowNetwork::new(4);
        let gate = g.add_edge(0, 1, 0);
        g.add_edge(0, 2, 5);
        g.add_edge(1, 3, 7);
        g.add_edge(2, 3, 5);
        assert_eq!(g.max_flow(0, 3), 5);
        g.set_cap(gate, 7);
        assert_eq!(g.max_flow(0, 3), 7);
    }

    #[test]
    fn cancel_and_push_flow_reroute_exactly() {
        // Route 5 units along one path, withdraw them, and hand-route the
        // same units along the other: the end state must be exactly "5
        // units flowing down the second path".
        let mut g = FlowNetwork::new(4);
        let a = g.add_edge(0, 1, 5);
        let na = g.add_edge(1, 3, 9);
        let b = g.add_edge(0, 2, 0); // closed gate
        let nb = g.add_edge(2, 3, 9);
        assert_eq!(g.max_flow(0, 3), 5); // all via the a-path
        assert_eq!(g.flow_on(a), 5);
        assert_eq!(g.flow_on(na), 5);
        assert_eq!(g.flow_on(nb), 0);

        // Withdraw the a-path flow and hand-route it down the b-path.
        g.cancel_flow(a, 5);
        g.cancel_flow(na, 5);
        g.set_cap(b, 5);
        g.push_flow(b, 5);
        g.push_flow(nb, 5);
        assert_eq!(g.flow_on(a), 0);
        assert_eq!(g.flow_on(na), 0);
        assert_eq!(g.flow_on(b), 5);
        assert_eq!(g.flow_on(nb), 5);

        // A further max-flow from that residual state can only use the
        // a-path again — the hand-routed flow occupies the b-path.
        assert_eq!(g.max_flow(0, 3), 5);
        assert_eq!(g.flow_on(a), 5);
        assert_eq!(g.flow_on(nb), 5);
    }

    #[test]
    #[should_panic(expected = "canceling more flow than present")]
    fn cancel_flow_rejects_overdraw() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 3);
        g.max_flow(0, 1);
        g.cancel_flow(e, 4);
    }

    #[test]
    #[should_panic(expected = "pushing past residual capacity")]
    fn push_flow_rejects_over_capacity() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 3);
        g.push_flow(e, 4);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 20 000-node path: the recursive DFS would blow the stack here.
        let n = 20_000;
        let mut g = FlowNetwork::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1, 3);
        }
        assert_eq!(g.max_flow(0, n - 1), 3);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut mf = MaxFlowScratch::default();
        let mut mc = MinCostScratch::default();
        for trial in 0..4u64 {
            let n = 30 + trial as usize * 17;
            let mut g1 = FlowNetwork::new(n);
            let mut g2 = FlowNetwork::new(n);
            // Deterministic pseudo-random sparse graph.
            let mut x = trial.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for _ in 0..n * 4 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x % n as u64) as usize;
                let v = ((x >> 20) % n as u64) as usize;
                if u == v {
                    continue;
                }
                let cap = ((x >> 40) % 50) as i64;
                let cost = ((x >> 46) % 9) as i64;
                g1.add_edge_with_cost(u, v, cap, cost);
                g2.add_edge_with_cost(u, v, cap, cost);
            }
            assert_eq!(
                g1.max_flow_with(0, n - 1, &mut mf),
                g2.max_flow(0, n - 1),
                "trial {trial}"
            );
            g1.reset_flow();
            g2.reset_flow();
            assert_eq!(
                g1.min_cost_flow_with(0, n - 1, i64::MAX / 8, &mut mc),
                g2.min_cost_flow(0, n - 1, i64::MAX / 8),
                "trial {trial}"
            );
        }
    }

    /// Brute-force min-cut over all vertex subsets (for tiny graphs).
    fn brute_min_cut(n: usize, edges: &[(usize, usize, i64)], s: usize, t: usize) -> i64 {
        let mut best = i64::MAX;
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let cut: i64 = edges
                .iter()
                .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
                .map(|&(_, _, c)| c)
                .sum();
            best = best.min(cut);
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_max_flow_equals_min_cut(
            n in 2usize..6,
            raw_edges in proptest::collection::vec((0usize..6, 0usize..6, 0i64..20), 0..14),
        ) {
            let edges: Vec<(usize, usize, i64)> = raw_edges
                .into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect();
            let mut g = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                g.add_edge(u, v, c);
            }
            let f = g.max_flow(0, n - 1);
            let cut = brute_min_cut(n, &edges, 0, n - 1);
            prop_assert_eq!(f, cut);
        }

        #[test]
        fn prop_flow_conservation_and_capacity(
            n in 3usize..7,
            raw_edges in proptest::collection::vec((0usize..7, 0usize..7, 0i64..50), 1..20),
        ) {
            let edges: Vec<(usize, usize, i64)> = raw_edges
                .into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect();
            let mut g = FlowNetwork::new(n);
            let ids: Vec<EdgeId> = edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
            let f = g.max_flow(0, n - 1);
            // Capacity constraints.
            let mut net = vec![0i64; n];
            for (&(u, v, c), &id) in edges.iter().zip(&ids) {
                let fl = g.flow_on(id);
                prop_assert!((0..=c).contains(&fl));
                net[u] -= fl;
                net[v] += fl;
            }
            // Conservation at internal vertices; source/sink balance = f.
            prop_assert_eq!(net[0], -f);
            prop_assert_eq!(net[n - 1], f);
            #[allow(clippy::needless_range_loop)]
            for v in 1..n - 1 {
                prop_assert_eq!(net[v], 0, "imbalance at {}", v);
            }
        }

        #[test]
        fn prop_min_cost_flow_value_matches_max_flow(
            n in 2usize..6,
            raw_edges in proptest::collection::vec((0usize..6, 0usize..6, 1i64..20, 0i64..10), 1..12),
        ) {
            let edges: Vec<(usize, usize, i64, i64)> = raw_edges
                .into_iter()
                .filter(|&(u, v, _, _)| u < n && v < n && u != v)
                .collect();
            let mut g1 = FlowNetwork::new(n);
            let mut g2 = FlowNetwork::new(n);
            for &(u, v, c, w) in &edges {
                g1.add_edge(u, v, c);
                g2.add_edge_with_cost(u, v, c, w);
            }
            let f = g1.max_flow(0, n - 1);
            let out = g2.min_cost_flow(0, n - 1, i64::MAX / 8);
            prop_assert_eq!(out.flow, f, "min-cost flow should saturate to max flow");
        }

        #[test]
        fn prop_clear_rebuild_matches_fresh_network(
            n in 2usize..6,
            raw_edges in proptest::collection::vec((0usize..6, 0usize..6, 0i64..20), 0..14),
        ) {
            let edges: Vec<(usize, usize, i64)> = raw_edges
                .into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect();
            // A reused (cleared) network must behave exactly like a fresh
            // one on the same topology.
            let mut reused = FlowNetwork::new(9);
            reused.add_edge_with_cost(0, 8, 3, -1);
            reused.max_flow(0, 8);
            reused.clear(n);
            let mut fresh = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                reused.add_edge(u, v, c);
                fresh.add_edge(u, v, c);
            }
            prop_assert_eq!(reused.max_flow(0, n - 1), fresh.max_flow(0, n - 1));
        }
    }
}
