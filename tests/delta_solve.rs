//! Differential gates for the delta solve path.
//!
//! 1. **Delta ≡ batch, bit for bit, on every corpus preset.** Flipping
//!    `controller.solve = "Delta"` must reproduce the batch run exactly:
//!    every job statistic, every change count, every recorded metric
//!    sample. The delta path self-verifies each reuse against the actual
//!    problem, so *any* divergence is a bug, never an accepted
//!    approximation. (Solver-level random-problem differentials live in
//!    `crates/placement/src/solver.rs`; this pins the full controller +
//!    simulator path.)
//! 2. **The equivalence survives the other engines.** Delta mode rides
//!    inside each `ShardedSolver` lane and underneath `Overlap{1}`
//!    pipelining — both knobs compose with `solve = "Delta"` and must
//!    keep the reports bit-identical to their batch counterparts.
//! 3. **Random churn schedules.** A proptest drives ≥ 20 cycles of
//!    arrivals, completions, node outages/recoveries, and demand drift
//!    through batch and delta solvers side by side (global and sharded),
//!    comparing whole `PlacementOutcome`s every cycle.
//! 4. **The fast path provably engages.** A steady jobs-only simulation
//!    in delta mode must report incremental hits through
//!    `UtilityController::delta_stats` — otherwise the oracle above
//!    would be vacuously comparing two batch paths.

use slaq::core::spec::{PipelineSpec, ScenarioSpec, ShardingSpec};
use slaq::placement::SolveMode;
use slaq::sim::SimReport;

/// Run a preset for `cycles` control cycles with the given solve mode
/// and pipeline/sharding knobs.
fn run_with(
    spec: &ScenarioSpec,
    solve: SolveMode,
    shards: ShardingSpec,
    pipeline: PipelineSpec,
    cycles: usize,
) -> SimReport {
    let mut spec = spec.clone();
    spec.controller.solve = solve;
    spec.controller.shards = shards;
    spec.controller.pipeline = pipeline;
    spec.timing.cap_to_cycles(cycles);
    spec.run()
        .unwrap_or_else(|e| panic!("{} ({solve:?}): {e}", spec.name))
}

/// Whole-report bit-identity: statistics, change counts, and every
/// metric series sample for sample, in both directions.
fn assert_reports_identical(name: &str, batch: &SimReport, delta: &SimReport) {
    assert_eq!(batch.cycles, delta.cycles, "{name}: cycle count");
    assert_eq!(
        batch.total_changes, delta.total_changes,
        "{name}: total changes"
    );
    let (a, b) = (&batch.job_stats, &delta.job_stats);
    assert_eq!(a.submitted, b.submitted, "{name}: submitted");
    assert_eq!(a.completed, b.completed, "{name}: completed");
    assert_eq!(a.goals_met, b.goals_met, "{name}: goals met");
    assert_eq!(a.disruptions, b.disruptions, "{name}: disruptions");
    for series in batch.metrics.names() {
        if series == "pipeline_solve_micros" {
            // The one wall-clock series: it records measured solve
            // latency, which the delta path is *supposed* to change.
            // Same samples must exist, but their values are timings.
            assert_eq!(
                batch.metrics.series(series).len(),
                delta.metrics.series(series).len(),
                "{name}: {series} sample count diverged"
            );
            continue;
        }
        assert_eq!(
            batch.metrics.series(series),
            delta.metrics.series(series),
            "{name}: series {series} diverged"
        );
    }
    for series in delta.metrics.names() {
        assert!(
            !batch.metrics.series(series).is_empty(),
            "{name}: delta-only extra series {series}"
        );
    }
}

#[test]
fn delta_solve_is_bit_identical_to_batch_on_every_preset() {
    for name in ScenarioSpec::preset_names() {
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let batch = run_with(
            &spec,
            SolveMode::Batch,
            ShardingSpec::Global,
            PipelineSpec::Sync,
            4,
        );
        let delta = run_with(
            &spec,
            SolveMode::Delta,
            ShardingSpec::Global,
            PipelineSpec::Sync,
            4,
        );
        assert_reports_identical(name, &batch, &delta);
    }
}

#[test]
fn delta_solve_composes_with_sharding_and_overlap() {
    // The delta path lives inside each solver lane, so it must compose
    // with the zone-partitioned engine and with pipelined (stale-
    // snapshot) control without perturbing a single sample.
    let variants: &[(&str, ShardingSpec, PipelineSpec)] = &[
        (
            "sharded4",
            ShardingSpec::Count { count: 4 },
            PipelineSpec::Sync,
        ),
        ("overlap1", ShardingSpec::Global, PipelineSpec::overlap(1)),
        (
            "sharded4+overlap1",
            ShardingSpec::Count { count: 4 },
            PipelineSpec::overlap(1),
        ),
    ];
    for preset in [
        "paper-small",
        "hetero-pool",
        "consolidation",
        "flash-crowd",
        "zone-storm",
        "node-flap",
        "antagonist-flood",
    ] {
        let spec = ScenarioSpec::preset(preset).expect("named preset");
        for &(label, shards, pipeline) in variants {
            let batch = run_with(&spec, SolveMode::Batch, shards, pipeline, 4);
            let delta = run_with(&spec, SolveMode::Delta, shards, pipeline, 4);
            assert_reports_identical(&format!("{preset}/{label}"), &batch, &delta);
        }
    }
}

#[test]
fn delta_fast_path_engages_in_a_steady_simulation() {
    use slaq::prelude::*;
    use slaq_core::controller::ControllerConfig;

    // Jobs-only, uncontended, long-lived: after the opening cycles the
    // placement holds still and delta cycles must ride the incremental
    // path — this is the regime the bench gate's churn series measure,
    // pinned here functionally so the 5× invariant can't silently
    // become a batch-vs-batch comparison.
    let cluster = ClusterSpec::homogeneous(2, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    let config = SimConfig {
        control_period: SimDuration::from_secs(600.0),
        horizon: SimTime::from_secs(9000.0),
        overheads: OverheadConfig {
            start: SimDuration::ZERO,
            resume: SimDuration::ZERO,
            migrate: SimDuration::ZERO,
        },
        cap_transactional: false,
    };
    let arrivals: Vec<(SimTime, JobSpec)> = (0..4)
        .map(|i| {
            (
                SimTime::ZERO,
                JobSpec {
                    name: format!("steady-{i}"),
                    // Never completes within the horizon: no structural
                    // churn after the opening placements.
                    total_work: Work::from_power_secs(CpuMhz::new(1000.0), 1e6),
                    max_speed: CpuMhz::new(1000.0),
                    mem: MemMb::new(1280),
                    goal: CompletionGoal::relative(
                        SimTime::ZERO,
                        SimDuration::from_secs(2000.0),
                        1.25,
                        3.0,
                    )
                    .unwrap(),
                },
            )
        })
        .collect();

    let run = |solve: SolveMode| {
        let mut sim = Simulator::new(&cluster, config);
        sim.add_arrivals(arrivals.clone());
        let mut controller = UtilityController::new(ControllerConfig {
            solve,
            ..Default::default()
        });
        let report = sim.run(&mut controller).unwrap();
        (report, controller.delta_stats())
    };

    let (batch_report, batch_stats) = run(SolveMode::Batch);
    let (delta_report, delta_stats) = run(SolveMode::Delta);

    // Batch mode never touches the delta machinery.
    assert_eq!(batch_stats.hits, 0, "batch mode reported delta hits");
    assert_eq!(batch_stats.fallbacks, 0, "batch mode reported fallbacks");
    // Delta mode engages the fast path on the steady tail (the opening
    // cycles legitimately fall back while placements form).
    assert!(
        delta_stats.hits >= 3,
        "fast path barely engaged on a steady fleet: {delta_stats:?}"
    );
    // And the reports still agree exactly.
    assert_reports_identical("steady-sim", &batch_report, &delta_report);
}

mod churn_schedules {
    //! Solver-level random-churn oracle: ≥ 20 cycles of arrivals,
    //! completions, outages/recoveries, and demand drift, batch vs.
    //! delta compared as whole `PlacementOutcome`s every cycle, for the
    //! global solver and the sharded lanes.

    use proptest::prelude::*;
    use slaq::placement::{
        JobRequest, NodeCapacity, Placement, PlacementConfig, PlacementProblem, ShardPlan,
        ShardedSolver, SolveMode, Solver,
    };
    use slaq::types::{CpuMhz, JobId, MemMb, NodeId};

    fn fleet(n: u32) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity {
                id: NodeId::new(i),
                cpu: CpuMhz::new(12_000.0),
                mem: MemMb::new(4096),
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_delta_matches_batch_over_random_churn(
            n_nodes in 3u32..7,
            n_jobs in 8usize..20,
            schedule in proptest::collection::vec(
                (0u8..6, 0usize..64, 200.0..3000.0f64), 20..32),
        ) {
            let mut demands: Vec<f64> =
                (0..n_jobs).map(|i| 500.0 + ((i * 997) % 2000) as f64).collect();
            let mut alive = vec![true; n_jobs];
            let mut down = vec![false; n_nodes as usize];
            let mut running: Vec<Option<NodeId>> = vec![None; n_jobs];

            let mut batch_g = Solver::new();
            let mut delta_g = Solver::with_mode(SolveMode::Delta);
            let mut batch_s = ShardedSolver::new(ShardPlan::Fixed(2), 4);
            let mut delta_s =
                ShardedSolver::new(ShardPlan::Fixed(2), 4).with_mode(SolveMode::Delta);
            let mut prev_bg = Placement::empty();
            let mut prev_dg = Placement::empty();
            let mut prev_bs = Placement::empty();
            let mut prev_ds = Placement::empty();

            for (cycle, &(op, ix, value)) in schedule.iter().enumerate() {
                match op {
                    0 => demands[ix % n_jobs] = value,        // demand drift
                    1 => alive[ix % n_jobs] = false,          // completion
                    2 => alive[ix % n_jobs] = true,           // (re-)arrival
                    3 => down[ix % n_nodes as usize] = true,  // outage
                    4 => down[ix % n_nodes as usize] = false, // recovery
                    _ => {}                                   // quiet cycle
                }
                let nodes: Vec<NodeCapacity> = fleet(n_nodes)
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| !down[*i])
                    .map(|(_, n)| n)
                    .collect();
                // `running_on` is deliberately left pointing at downed
                // nodes: the boundary must shrug off unknown ids.
                let jobs: Vec<JobRequest> = (0..n_jobs)
                    .filter(|&j| alive[j])
                    .map(|j| JobRequest {
                        id: JobId::new(j as u32),
                        demand: CpuMhz::new(demands[j]),
                        mem: MemMb::new(1280),
                        running_on: running[j],
                        affinity: None,
                        priority: ((j * 31) % 7) as f64,
                    })
                    .collect();
                let p = PlacementProblem {
                    nodes,
                    apps: vec![],
                    jobs,
                    config: PlacementConfig::default(),
                };

                let out_bg = batch_g.solve(&p, &prev_bg);
                let out_dg = delta_g.solve(&p, &prev_dg);
                prop_assert_eq!(&out_bg, &out_dg, "global divergence at cycle {}", cycle);
                let out_bs = batch_s.solve(&p, &prev_bs);
                let out_ds = delta_s.solve(&p, &prev_ds);
                prop_assert_eq!(&out_bs, &out_ds, "sharded divergence at cycle {}", cycle);

                for (j, slot) in running.iter_mut().enumerate() {
                    *slot = out_bg.placement.job_node(JobId::new(j as u32));
                }
                prev_bg = out_bg.placement;
                prev_dg = out_dg.placement;
                prev_bs = out_bs.placement;
                prev_ds = out_ds.placement;
            }
        }
    }
}
