//! Poisson arrival streams with piecewise-constant rate schedules.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use slaq_types::SimTime;

/// A piecewise-constant schedule of *mean inter-arrival times*.
///
/// Segment `i` applies from its start instant until the next segment's
/// start. The paper's stream is `[(0, 260 s), (t_tail, 400 s)]`: a mean
/// spacing of 260 s that is "slightly decreased" (in rate) near the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    segments: Vec<(SimTime, f64)>,
}

impl RateSchedule {
    /// A single constant mean inter-arrival time.
    pub fn constant(mean_interarrival_secs: f64) -> Option<Self> {
        Self::new(vec![(SimTime::ZERO, mean_interarrival_secs)])
    }

    /// Build from `(start, mean_interarrival)` pairs. Requirements: at
    /// least one segment, strictly increasing starts beginning at or
    /// after 0, positive finite means.
    pub fn new(segments: Vec<(SimTime, f64)>) -> Option<Self> {
        if segments.is_empty() {
            return None;
        }
        if segments[0].0.as_secs() < 0.0 {
            return None;
        }
        for w in segments.windows(2) {
            if w[1].0 <= w[0].0 {
                return None;
            }
        }
        if segments.iter().any(|&(_, m)| !(m.is_finite() && m > 0.0)) {
            return None;
        }
        Some(RateSchedule { segments })
    }

    /// Mean inter-arrival time in force at instant `t` (the first
    /// segment's mean before its start).
    pub fn mean_at(&self, t: SimTime) -> f64 {
        let mut mean = self.segments[0].1;
        for &(start, m) in &self.segments {
            if t >= start {
                mean = m;
            } else {
                break;
            }
        }
        mean
    }
}

/// Iterator of arrival instants: exponential inter-arrivals whose mean
/// follows a [`RateSchedule`].
///
/// Each gap is drawn from the segment in force at the *previous* arrival —
/// exact for constant segments and an accepted approximation at segment
/// boundaries (the schedule changes slowly relative to the mean gap).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    schedule: RateSchedule,
    rng: ChaCha12Rng,
    t: SimTime,
    remaining: usize,
}

impl PoissonArrivals {
    /// Stream of at most `count` arrivals starting at time zero.
    pub fn new(schedule: RateSchedule, count: usize, seed: u64) -> Self {
        PoissonArrivals {
            schedule,
            rng: ChaCha12Rng::seed_from_u64(seed),
            t: SimTime::ZERO,
            remaining: count,
        }
    }
}

impl Iterator for PoissonArrivals {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mean = self.schedule.mean_at(self.t);
        // Inverse-transform sampling of Exp(1/mean); guard the log(0) tail.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -mean * u.ln();
        self.t += slaq_types::SimDuration::from_secs(gap);
        Some(self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn schedule_rejects_bad_inputs() {
        assert!(RateSchedule::new(vec![]).is_none());
        assert!(RateSchedule::new(vec![(SimTime::ZERO, 0.0)]).is_none());
        assert!(RateSchedule::new(vec![(SimTime::ZERO, -5.0)]).is_none());
        assert!(RateSchedule::new(vec![
            (SimTime::from_secs(10.0), 1.0),
            (SimTime::from_secs(10.0), 2.0)
        ])
        .is_none());
        assert!(RateSchedule::constant(260.0).is_some());
    }

    #[test]
    fn schedule_lookup_picks_segment_in_force() {
        let s = RateSchedule::new(vec![
            (SimTime::ZERO, 260.0),
            (SimTime::from_secs(55_000.0), 400.0),
        ])
        .unwrap();
        assert_eq!(s.mean_at(SimTime::ZERO), 260.0);
        assert_eq!(s.mean_at(SimTime::from_secs(54_999.0)), 260.0);
        assert_eq!(s.mean_at(SimTime::from_secs(55_000.0)), 400.0);
        assert_eq!(s.mean_at(SimTime::from_secs(70_000.0)), 400.0);
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_bounded_in_count() {
        let s = RateSchedule::constant(260.0).unwrap();
        let times: Vec<SimTime> = PoissonArrivals::new(s, 100, 42).collect();
        assert_eq!(times.len(), 100);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn same_seed_reproduces_same_stream() {
        let s = RateSchedule::constant(100.0).unwrap();
        let a: Vec<SimTime> = PoissonArrivals::new(s.clone(), 50, 7).collect();
        let b: Vec<SimTime> = PoissonArrivals::new(s, 50, 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let s = RateSchedule::constant(100.0).unwrap();
        let a: Vec<SimTime> = PoissonArrivals::new(s.clone(), 50, 7).collect();
        let b: Vec<SimTime> = PoissonArrivals::new(s, 50, 8).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn empirical_mean_matches_schedule() {
        let s = RateSchedule::constant(260.0).unwrap();
        let times: Vec<f64> = PoissonArrivals::new(s, 5000, 123)
            .map(SimTime::as_secs)
            .collect();
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!(
            (mean_gap - 260.0).abs() < 15.0,
            "empirical mean gap {mean_gap} should be near 260"
        );
    }

    #[test]
    fn rate_slowdown_spreads_the_tail() {
        let s = RateSchedule::new(vec![
            (SimTime::ZERO, 10.0),
            (SimTime::from_secs(1000.0), 1000.0),
        ])
        .unwrap();
        let times: Vec<f64> = PoissonArrivals::new(s, 200, 9)
            .map(SimTime::as_secs)
            .collect();
        let before = times.iter().filter(|&&t| t < 1000.0).count();
        // ~100 arrivals in the fast phase, then a crawl.
        assert!(before > 60, "fast phase arrivals: {before}");
        let after: Vec<&f64> = times.iter().filter(|&&t| t >= 1000.0).collect();
        if after.len() >= 2 {
            let gaps: f64 =
                after.windows(2).map(|w| *w[1] - *w[0]).sum::<f64>() / (after.len() - 1) as f64;
            assert!(gaps > 100.0, "tail gaps should widen: {gaps}");
        }
    }

    proptest! {
        #[test]
        fn prop_counts_and_monotonicity(
            mean in 1.0..1000.0f64,
            count in 0usize..200,
            seed in 0u64..1000,
        ) {
            let s = RateSchedule::constant(mean).unwrap();
            let times: Vec<SimTime> = PoissonArrivals::new(s, count, seed).collect();
            prop_assert_eq!(times.len(), count);
            for w in times.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            if let Some(first) = times.first() {
                prop_assert!(first.as_secs() > 0.0);
            }
        }
    }
}
