//! Offline stand-in for `serde_json`: renders and parses the [`serde`]
//! stand-in's value tree as JSON text.
//!
//! Float formatting uses Rust's shortest-roundtrip `Display`, so
//! `to_string` → `from_str` round-trips every finite `f64` exactly.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(item, out, pretty, indent + 1);
            }
            if !items.is_empty() {
                pad(out, indent);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (k, (key, item)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, pretty, indent + 1);
            }
            if !pairs.is_empty() {
                pad(out, indent);
            }
            out.push('}');
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::from)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let s = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(s) };
                    let c = text.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }
}
