//! E6 — simulator engine throughput: events processed per second on the
//! paper's event mix (arrivals, control cycles, completions, unblocks),
//! with a null controller isolating the engine from solver cost.

use criterion::{criterion_group, criterion_main, Criterion};
use slaq_core::scenario::PaperParams;
use slaq_placement::Placement;
use slaq_sim::{ControlInputs, Controller, MetricsSink};
use std::hint::black_box;

/// Places every pending job greedily; cheap enough that the engine
/// dominates the measurement.
struct GreedyController;

impl Controller for GreedyController {
    fn control(&mut self, inputs: &ControlInputs<'_>, _m: &mut MetricsSink) -> Placement {
        let mut next = inputs.current.clone();
        for job in inputs.jobs.jobs() {
            if !job.is_active() || next.jobs.contains_key(&job.id) {
                continue;
            }
            for node in inputs.nodes {
                let mem_used: u64 = inputs
                    .jobs
                    .jobs()
                    .iter()
                    .filter(|j| next.job_node(j.id) == Some(node.id))
                    .map(|j| j.spec.mem.as_u64())
                    .sum();
                if mem_used + job.spec.mem.as_u64() <= node.mem.as_u64() {
                    next.jobs.insert(job.id, (node.id, job.spec.max_speed));
                    break;
                }
            }
        }
        next
    }
}

fn bench_sim_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    group.bench_function("paper_small_null_solver", |b| {
        b.iter(|| {
            let scenario = PaperParams::small().scenario();
            let report = scenario.run(&mut GreedyController).unwrap();
            black_box((report.cycles, report.job_stats.completed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_engine);
criterion_main!(benches);
