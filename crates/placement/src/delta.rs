//! Dirty-set plumbing for churn-proportional warm solves.
//!
//! Between consecutive control cycles only a small fraction of the fleet
//! usually changes: a few jobs arrive or complete, a node dies or comes
//! back, some demands drift. [`SolveDelta`] is the compact record of that
//! churn, produced by the simulator's snapshot differ
//! (`slaq_sim::DeltaTracker`) and threaded through the controller into
//! the solver.
//!
//! The delta is **advisory**: the solver's fast path re-verifies every
//! reuse precondition against the actual problem (topology signatures,
//! unit-granular demand fingerprints — see
//! [`crate::allocation::Allocator::try_allocate_delta`]), so a stale or
//! missing hint can cost a wasted audit but never a wrong placement. The
//! hint's job is to skip that audit when the cycle is known-structural.

use slaq_types::{AppId, JobId, NodeId};

/// What changed between two consecutive sensing snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveDelta {
    /// Jobs present now that were absent (or not yet active) last cycle.
    pub arrived_jobs: Vec<JobId>,
    /// Jobs active last cycle that are gone (completed or cancelled).
    pub completed_jobs: Vec<JobId>,
    /// Jobs whose placement-relevant state moved: lifecycle transition,
    /// node change, or demand drift beyond the tracker's tolerance.
    pub resized_jobs: Vec<JobId>,
    /// Nodes sensed last cycle but missing now (outage began).
    pub dead_nodes: Vec<NodeId>,
    /// Nodes missing last cycle but sensed now (outage ended).
    pub recovered_nodes: Vec<NodeId>,
    /// Nodes present both cycles whose capacity changed.
    pub capacity_changed_nodes: Vec<NodeId>,
    /// Apps whose observed intensity drifted beyond the tolerance.
    pub drifted_apps: Vec<AppId>,
}

impl SolveDelta {
    /// `true` when nothing at all changed between the snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of dirty entries across all categories.
    pub fn len(&self) -> usize {
        self.arrived_jobs.len()
            + self.completed_jobs.len()
            + self.resized_jobs.len()
            + self.dead_nodes.len()
            + self.recovered_nodes.len()
            + self.capacity_changed_nodes.len()
            + self.drifted_apps.len()
    }

    /// `true` when the problem *shape* changed — the job set or the node
    /// set — so the allocator's topology signature cannot possibly match
    /// and an incremental re-flow attempt would be a guaranteed miss.
    pub fn is_structural(&self) -> bool {
        !self.arrived_jobs.is_empty()
            || !self.completed_jobs.is_empty()
            || !self.dead_nodes.is_empty()
            || !self.recovered_nodes.is_empty()
    }

    /// Drop every entry, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.arrived_jobs.clear();
        self.completed_jobs.clear();
        self.resized_jobs.clear();
        self.dead_nodes.clear();
        self.recovered_nodes.clear();
        self.capacity_changed_nodes.clear();
        self.drifted_apps.clear();
    }
}

/// Fast-path diagnostics of a `Delta`-mode solver: how many solves took
/// the incremental re-flow versus falling back to the full path. Exposed
/// through an accessor (not the metrics sink) so a delta run's recorded
/// metric series stay bit-identical to a batch run's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Solves answered by the incremental allocation re-flow.
    pub hits: usize,
    /// Delta-mode solves that ran the full allocation path.
    pub fallbacks: usize,
}

impl DeltaStats {
    /// Merge another counter pair in (shard lanes aggregate this way).
    pub fn absorb(&mut self, other: DeltaStats) {
        self.hits += other.hits;
        self.fallbacks += other.fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_flags_follow_the_shape_changing_fields() {
        let mut d = SolveDelta::default();
        assert!(d.is_empty());
        assert!(!d.is_structural());
        d.resized_jobs.push(JobId::new(1));
        d.drifted_apps.push(AppId::new(2));
        d.capacity_changed_nodes.push(NodeId::new(3));
        assert!(!d.is_structural(), "in-place churn is not structural");
        assert_eq!(d.len(), 3);
        d.arrived_jobs.push(JobId::new(9));
        assert!(d.is_structural());
        d.clear();
        assert!(d.is_empty());
    }
}
