//! E5 — equalizer ablation: exact bisection vs the paper's iterative
//! steal-from-the-most-satisfied loop, across pool sizes. Both solve the
//! same max–min problem; the bench quantifies the cost of following the
//! paper's prose literally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slaq_types::{CpuMhz, EntityId, JobId};
use slaq_utility::{
    equalize_bisection, equalize_steal, CappedLinearUtility, EqEntity, EqualizeOptions,
};
use std::hint::black_box;

fn pool(n: usize) -> Vec<CappedLinearUtility> {
    (0..n)
        .map(|i| {
            let u0 = (i % 5) as f64 * 0.05;
            let cap = 500.0 + 2500.0 * ((i * 7919) % 100) as f64 / 100.0;
            CappedLinearUtility::new(u0, 0.9 + (i % 3) as f64 * 0.05, CpuMhz::new(cap)).unwrap()
        })
        .collect()
}

fn bench_equalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("equalization");
    for &n in &[10usize, 100, 400, 1000] {
        let curves = pool(n);
        let ids: Vec<EntityId> = (0..n)
            .map(|i| EntityId::Job(JobId::new(i as u32)))
            .collect();
        let total = CpuMhz::new(curves.iter().map(|c| c.cap.as_f64()).sum::<f64>() * 0.6);
        let opts = EqualizeOptions {
            max_iters: 20_000,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("bisection", n), &n, |b, _| {
            b.iter(|| {
                let entities: Vec<EqEntity> = curves
                    .iter()
                    .enumerate()
                    .map(|(i, c)| EqEntity::new(ids[i], c))
                    .collect();
                black_box(equalize_bisection(&entities, total, &opts).common_utility)
            })
        });
        group.bench_with_input(BenchmarkId::new("steal", n), &n, |b, _| {
            b.iter(|| {
                let entities: Vec<EqEntity> = curves
                    .iter()
                    .enumerate()
                    .map(|(i, c)| EqEntity::new(ids[i], c))
                    .collect();
                black_box(equalize_steal(&entities, total, &opts).common_utility)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equalization);
criterion_main!(benches);
