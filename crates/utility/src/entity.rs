//! The [`UtilityOfCpu`] abstraction: monotone non-decreasing utility as a
//! function of allocated CPU power, with inverse demand queries.
//!
//! The equalizer (see [`crate::equalize`]) sees every transactional
//! application and every long-running job through this one interface; the
//! adapters that *produce* these curves live where the domain knowledge
//! lives (queueing model in `slaq-perfmodel`, completion-time projection in
//! `slaq-jobs`).

use crate::curve::{Monotonicity, PiecewiseLinear};
use serde::{Deserialize, Serialize};
use slaq_types::CpuMhz;

/// A monotone non-decreasing mapping from allocated CPU power to utility.
///
/// Contract (checked by the property tests in this crate and relied upon by
/// the equalization solvers):
///
/// * `utility` is non-decreasing in `cpu` and constant at
///   `max_utility()` for `cpu ≥ max_useful_cpu()`;
/// * `cpu_for_utility(u)` returns the *least* CPU reaching utility ≥ `u`
///   (`None` iff `u > max_utility()`), so
///   `utility(cpu_for_utility(u)) ≥ u − ε`.
pub trait UtilityOfCpu {
    /// Utility obtained from an allocation of `cpu`.
    fn utility(&self, cpu: CpuMhz) -> f64;

    /// Least CPU allocation achieving utility ≥ `u`, or `None` if `u`
    /// exceeds [`UtilityOfCpu::max_utility`].
    fn cpu_for_utility(&self, u: f64) -> Option<CpuMhz>;

    /// The allocation beyond which utility stops improving — the entity's
    /// *demand for maximum utility* (what Figure 2 plots per workload).
    fn max_useful_cpu(&self) -> CpuMhz;

    /// Utility at [`UtilityOfCpu::max_useful_cpu`] (the saturation level).
    fn max_utility(&self) -> f64 {
        self.utility(self.max_useful_cpu())
    }

    /// Utility at zero allocation.
    fn utility_at_zero(&self) -> f64 {
        self.utility(CpuMhz::ZERO)
    }
}

/// A utility-of-CPU curve tabulated as a non-decreasing
/// [`PiecewiseLinear`] over `cpu ≥ 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabulatedUtility {
    curve: PiecewiseLinear,
    max_useful: CpuMhz,
}

impl TabulatedUtility {
    /// Wrap a non-decreasing curve defined on non-negative CPU. Returns
    /// `None` if the curve decreases anywhere or starts at negative x.
    pub fn new(curve: PiecewiseLinear) -> Option<Self> {
        match curve.monotonicity() {
            Monotonicity::NonDecreasing | Monotonicity::Constant => {}
            Monotonicity::NonIncreasing => return None,
        }
        if curve.x_min() < 0.0 {
            return None;
        }
        let max_useful = CpuMhz::new(
            curve
                .inverse_min_x(curve.y_max())
                .unwrap_or_else(|| curve.x_max()),
        );
        Some(TabulatedUtility { curve, max_useful })
    }

    /// Tabulate a monotone non-decreasing function `f(cpu_mhz) → utility`
    /// on `[0, cpu_max]` with `n ≥ 2` sample points. Floating-point noise
    /// is monotonized with a running maximum so the result always satisfies
    /// the [`UtilityOfCpu`] contract.
    pub fn from_fn(f: impl Fn(f64) -> f64, cpu_max: CpuMhz, n: usize) -> Option<Self> {
        if n < 2 || cpu_max.as_f64() <= 0.0 {
            return None;
        }
        let mut pts = Vec::with_capacity(n);
        let mut running = f64::NEG_INFINITY;
        for i in 0..n {
            let x = cpu_max.as_f64() * (i as f64) / ((n - 1) as f64);
            let mut y = f(x);
            if !y.is_finite() {
                return None;
            }
            if y < running {
                y = running; // monotonize fp noise
            }
            running = y;
            pts.push((x, y));
        }
        Self::new(PiecewiseLinear::new(pts)?)
    }

    /// The underlying curve.
    pub fn curve(&self) -> &PiecewiseLinear {
        &self.curve
    }
}

impl UtilityOfCpu for TabulatedUtility {
    fn utility(&self, cpu: CpuMhz) -> f64 {
        self.curve.eval(cpu.as_f64())
    }

    fn cpu_for_utility(&self, u: f64) -> Option<CpuMhz> {
        match self.curve.inverse_min_x(u) {
            Some(x) => Some(CpuMhz::new(x.max(0.0))),
            None => {
                // Constant curves: reachable iff u <= the constant.
                if u <= self.curve.y_max() {
                    Some(CpuMhz::ZERO)
                } else {
                    None
                }
            }
        }
    }

    fn max_useful_cpu(&self) -> CpuMhz {
        self.max_useful
    }

    fn max_utility(&self) -> f64 {
        self.curve.y_max()
    }

    fn utility_at_zero(&self) -> f64 {
        self.curve.eval(0.0)
    }
}

/// Analytic utility that rises linearly from `u_zero` at zero allocation to
/// `u_cap` at `cap`, then saturates. The simplest useful entity; heavily
/// used in tests and as a fallback model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CappedLinearUtility {
    /// Utility at zero allocation.
    pub u_zero: f64,
    /// Utility at (and beyond) `cap`.
    pub u_cap: f64,
    /// The saturating allocation (demand for maximum utility).
    pub cap: CpuMhz,
}

impl CappedLinearUtility {
    /// Create; requires `u_cap ≥ u_zero` and `cap ≥ 0`.
    pub fn new(u_zero: f64, u_cap: f64, cap: CpuMhz) -> Option<Self> {
        (u_cap >= u_zero && cap.as_f64() >= 0.0 && u_zero.is_finite() && u_cap.is_finite())
            .then_some(CappedLinearUtility { u_zero, u_cap, cap })
    }
}

impl UtilityOfCpu for CappedLinearUtility {
    fn utility(&self, cpu: CpuMhz) -> f64 {
        if self.cap.is_zero() {
            return self.u_cap;
        }
        let t = (cpu.as_f64() / self.cap.as_f64()).clamp(0.0, 1.0);
        self.u_zero + t * (self.u_cap - self.u_zero)
    }

    fn cpu_for_utility(&self, u: f64) -> Option<CpuMhz> {
        if u > self.u_cap {
            return None;
        }
        if u <= self.u_zero || self.cap.is_zero() {
            return Some(CpuMhz::ZERO);
        }
        let t = (u - self.u_zero) / (self.u_cap - self.u_zero);
        Some(CpuMhz::new(t * self.cap.as_f64()))
    }

    fn max_useful_cpu(&self) -> CpuMhz {
        if (self.u_cap - self.u_zero).abs() < f64::EPSILON {
            CpuMhz::ZERO // flat curve: no CPU is useful
        } else {
            self.cap
        }
    }

    fn max_utility(&self) -> f64 {
        self.u_cap
    }

    fn utility_at_zero(&self) -> f64 {
        self.u_zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tab(points: Vec<(f64, f64)>) -> TabulatedUtility {
        TabulatedUtility::new(PiecewiseLinear::new(points).unwrap()).unwrap()
    }

    #[test]
    fn tabulated_rejects_decreasing_or_negative_domain() {
        assert!(TabulatedUtility::new(
            PiecewiseLinear::new(vec![(0.0, 1.0), (10.0, 0.0)]).unwrap()
        )
        .is_none());
        assert!(TabulatedUtility::new(
            PiecewiseLinear::new(vec![(-5.0, 0.0), (10.0, 1.0)]).unwrap()
        )
        .is_none());
    }

    #[test]
    fn tabulated_max_useful_cpu_is_first_saturation_point() {
        // Utility saturates at 0.8 from cpu=600 onward.
        let t = tab(vec![(0.0, 0.0), (600.0, 0.8), (1000.0, 0.8)]);
        assert_eq!(t.max_useful_cpu(), CpuMhz::new(600.0));
        assert_eq!(t.max_utility(), 0.8);
        assert_eq!(t.utility(CpuMhz::new(2000.0)), 0.8);
    }

    #[test]
    fn tabulated_inverse_queries() {
        let t = tab(vec![(0.0, -0.5), (1000.0, 0.5)]);
        assert_eq!(t.cpu_for_utility(0.0), Some(CpuMhz::new(500.0)));
        assert_eq!(t.cpu_for_utility(-0.5), Some(CpuMhz::new(0.0)));
        assert_eq!(t.cpu_for_utility(-2.0), Some(CpuMhz::new(0.0)));
        assert_eq!(t.cpu_for_utility(0.5), Some(CpuMhz::new(1000.0)));
        assert_eq!(t.cpu_for_utility(0.51), None);
    }

    #[test]
    fn from_fn_samples_and_monotonizes() {
        // sqrt-ish diminishing returns curve.
        let t =
            TabulatedUtility::from_fn(|x| (x / 1000.0).sqrt().min(1.0), CpuMhz::new(2000.0), 64)
                .unwrap();
        assert!(t.utility(CpuMhz::ZERO).abs() < 1e-12);
        assert!((t.utility(CpuMhz::new(1000.0)) - 1.0).abs() < 0.02);
        assert_eq!(t.max_utility(), 1.0);
        // Degenerate inputs rejected.
        assert!(TabulatedUtility::from_fn(|_| 0.0, CpuMhz::ZERO, 8).is_none());
        assert!(TabulatedUtility::from_fn(|_| 0.0, CpuMhz::new(10.0), 1).is_none());
        assert!(TabulatedUtility::from_fn(|_| f64::NAN, CpuMhz::new(10.0), 4).is_none());
    }

    #[test]
    fn constant_tabulated_curve_answers_conservatively() {
        let t = TabulatedUtility::new(PiecewiseLinear::constant(0.7)).unwrap();
        assert_eq!(t.max_utility(), 0.7);
        assert_eq!(t.cpu_for_utility(0.7), Some(CpuMhz::ZERO));
        assert_eq!(t.cpu_for_utility(0.71), None);
        assert_eq!(t.max_useful_cpu(), CpuMhz::ZERO);
    }

    #[test]
    fn capped_linear_basicss() {
        let c = CappedLinearUtility::new(0.0, 1.0, CpuMhz::new(3000.0)).unwrap();
        assert_eq!(c.utility(CpuMhz::new(1500.0)), 0.5);
        assert_eq!(c.utility(CpuMhz::new(9000.0)), 1.0);
        assert_eq!(c.cpu_for_utility(0.5), Some(CpuMhz::new(1500.0)));
        assert_eq!(c.cpu_for_utility(1.1), None);
        assert_eq!(c.max_useful_cpu(), CpuMhz::new(3000.0));
    }

    #[test]
    fn capped_linear_flat_curve_has_zero_useful_cpu() {
        let c = CappedLinearUtility::new(0.6, 0.6, CpuMhz::new(3000.0)).unwrap();
        assert_eq!(c.max_useful_cpu(), CpuMhz::ZERO);
        assert_eq!(c.utility(CpuMhz::ZERO), 0.6);
        assert_eq!(c.cpu_for_utility(0.6), Some(CpuMhz::ZERO));
    }

    #[test]
    fn capped_linear_rejects_decreasing() {
        assert!(CappedLinearUtility::new(0.5, 0.1, CpuMhz::new(100.0)).is_none());
    }

    proptest! {
        #[test]
        fn prop_capped_linear_inverse_roundtrip(
            u_zero in -1.0..0.5f64,
            gain in 0.01..1.0f64,
            cap in 1.0..10_000.0f64,
            q in 0.0..1.0f64,
        ) {
            let u_cap = (u_zero + gain).min(1.0);
            let c = CappedLinearUtility::new(u_zero, u_cap, CpuMhz::new(cap)).unwrap();
            let target = u_zero + q * (u_cap - u_zero);
            let cpu = c.cpu_for_utility(target).unwrap();
            prop_assert!(c.utility(cpu) >= target - 1e-9);
            prop_assert!(cpu.as_f64() <= cap + 1e-9);
        }

        #[test]
        fn prop_tabulated_contract(
            cap in 100.0..5000.0f64,
            q in -1.0..1.0f64,
        ) {
            let t = TabulatedUtility::from_fn(
                |x| -0.2 + 1.2 * (x / cap).min(1.0),
                CpuMhz::new(cap),
                33,
            ).unwrap();
            if let Some(cpu) = t.cpu_for_utility(q) {
                prop_assert!(t.utility(cpu) >= q - 1e-9);
            } else {
                prop_assert!(q > t.max_utility());
            }
            // Monotone non-decreasing along a grid.
            let mut prev = f64::NEG_INFINITY;
            for i in 0..20 {
                let u = t.utility(CpuMhz::new(cap * i as f64 / 10.0));
                prop_assert!(u >= prev - 1e-12);
                prev = u;
            }
        }
    }
}
