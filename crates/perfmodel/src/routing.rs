//! Request routing across application instances — the flow-controller
//! fragment of the authors' middleware.
//!
//! A clustered transactional application runs instances on several nodes,
//! each with its own CPU allocation. The router splits incoming traffic
//! proportionally to the per-instance allocations, which equalizes
//! per-instance utilization and hence (under processor sharing) makes
//! every instance exhibit the same response time — the cluster behaves
//! like one pooled server of the aggregate capacity.

use slaq_types::{CpuMhz, SimDuration, Work};

/// Traffic weights proportional to per-instance allocations.
///
/// Returns an empty vector when no instance has positive allocation
/// (nothing can serve traffic).
pub fn split_load(allocs: &[CpuMhz]) -> Vec<f64> {
    let total: f64 = allocs.iter().map(|a| a.as_f64().max(0.0)).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    allocs.iter().map(|a| a.as_f64().max(0.0) / total).collect()
}

/// Mean response time of a clustered application under proportional
/// routing: arrival rate `lambda` split across instances with allocations
/// `allocs`, with per-request demand `service`.
///
/// We adopt the **app-level pooled-capacity abstraction** the authors'
/// flow controller uses: proportional splitting keeps per-instance
/// utilization equal, request concurrency spans the whole cluster, and the
/// controller reasons about the application's *aggregate* allocation — so
/// the cluster is modelled as one PS server of capacity `Σ allocs`. (A
/// strictly per-instance PS mixture would add an instance-count factor to
/// the latency term; the controller's demand estimates and the simulator's
/// measurements must simply agree on one model, and the pooled form is the
/// one the paper's demand figures correspond to.)
pub fn aggregate_response_time(lambda: f64, service: Work, allocs: &[CpuMhz]) -> SimDuration {
    let total: CpuMhz = allocs.iter().map(|a| a.max_zero()).sum();
    if total.is_zero() {
        return if lambda > 0.0 {
            SimDuration::INFINITE
        } else {
            SimDuration::ZERO
        };
    }
    if lambda <= 0.0 {
        // No traffic: a lone request runs on the pooled capacity.
        return SimDuration::from_secs(service.secs_at(total));
    }
    let offered = CpuMhz::new(lambda * service.as_f64());
    let headroom = total - offered;
    if headroom.as_f64() <= 0.0 {
        return SimDuration::INFINITE;
    }
    SimDuration::from_secs(service.secs_at(headroom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queueing::PsQueue;
    use proptest::prelude::*;

    #[test]
    fn split_is_proportional_and_normalized() {
        let w = split_load(&[CpuMhz::new(100.0), CpuMhz::new(300.0)]);
        assert_eq!(w, vec![0.25, 0.75]);
        let w = split_load(&[CpuMhz::ZERO, CpuMhz::ZERO]);
        assert!(w.is_empty());
    }

    #[test]
    fn split_ignores_negative_noise() {
        let w = split_load(&[CpuMhz::new(-1e-9), CpuMhz::new(100.0)]);
        assert_eq!(w[0], 0.0);
        assert_eq!(w[1], 1.0);
    }

    #[test]
    fn cluster_equals_pooled_server_under_proportional_routing() {
        let lambda = 50.0;
        let service = Work::new(2000.0);
        let allocs = [
            CpuMhz::new(40_000.0),
            CpuMhz::new(60_000.0),
            CpuMhz::new(20_000.0),
        ];
        let total: CpuMhz = allocs.iter().sum();
        let pooled = PsQueue::new(lambda, service).unwrap().response_time(total);
        let clustered = aggregate_response_time(lambda, service, &allocs);
        assert!(
            (clustered.as_secs() - pooled.as_secs()).abs() < 1e-9,
            "clustered {clustered} vs pooled {pooled}"
        );
    }

    #[test]
    fn saturated_cluster_reports_infinite_rt() {
        // Offered load 100 000 > total capacity 90 000.
        let rt = aggregate_response_time(
            50.0,
            Work::new(2000.0),
            &[CpuMhz::new(45_000.0), CpuMhz::new(45_000.0)],
        );
        assert!(rt.is_infinite());
    }

    #[test]
    fn no_instances_with_traffic_is_infinite() {
        assert!(aggregate_response_time(10.0, Work::new(1.0), &[]).is_infinite());
        assert_eq!(
            aggregate_response_time(0.0, Work::new(1.0), &[]),
            SimDuration::ZERO
        );
    }

    #[test]
    fn idle_cluster_reports_pooled_latency() {
        let rt = aggregate_response_time(
            0.0,
            Work::new(3000.0),
            &[CpuMhz::new(1000.0), CpuMhz::new(2000.0)],
        );
        assert!((rt.as_secs() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_weights_sum_to_one(
            allocs in proptest::collection::vec(0.0..1e5f64, 1..10),
        ) {
            let cpus: Vec<CpuMhz> = allocs.iter().map(|&a| CpuMhz::new(a)).collect();
            let w = split_load(&cpus);
            if !w.is_empty() {
                let sum: f64 = w.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }

        #[test]
        fn prop_proportional_matches_pooled(
            lambda in 0.1..100.0f64,
            service in 10.0..5000.0f64,
            allocs in proptest::collection::vec(1.0..1e5f64, 1..8),
        ) {
            let cpus: Vec<CpuMhz> = allocs.iter().map(|&a| CpuMhz::new(a)).collect();
            let total: CpuMhz = cpus.iter().sum();
            let q = PsQueue::new(lambda, Work::new(service)).unwrap();
            let pooled = q.response_time(total);
            let clustered = aggregate_response_time(lambda, Work::new(service), &cpus);
            if pooled.is_infinite() {
                prop_assert!(clustered.is_infinite());
            } else {
                prop_assert!((clustered.as_secs() - pooled.as_secs()).abs()
                    < 1e-6 * pooled.as_secs().max(1.0));
            }
        }
    }
}
