//! # slaq-flow — network-flow kernel
//!
//! The placement controller's allocation subproblem — *given* a placement
//! of instances on nodes, how much CPU can each application actually
//! receive? — is exactly a bipartite transportation problem: applications
//! supply their demand, nodes offer their capacity, and an edge exists
//! wherever an instance is placed. The authors solve it with an LP inside
//! the APC; Rust LP crates being immature (see DESIGN.md §5), we implement
//! the two flow algorithms that solve this class exactly:
//!
//! * [`FlowNetwork::max_flow`] — Dinic's algorithm, used for feasibility
//!   ("can the demands be satisfied at all on this placement?") and for
//!   the satisfied-demand computation;
//! * [`FlowNetwork::min_cost_flow`] — successive shortest paths with
//!   Johnson potentials, used when multiple feasible allocations exist and
//!   the controller prefers the one minimizing placement-change cost.
//!
//! Capacities and costs are `i64`; callers scale fluid MHz quantities to
//! integer units (1 MHz resolution loses nothing at cluster scale).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod network;

pub use network::{EdgeId, FlowNetwork, MaxFlowScratch, MinCostOutcome, MinCostScratch};
