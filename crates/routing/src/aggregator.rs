//! The metrics plane: instance publishers → per-instance warmth/load.
//!
//! Placed instances *publish* one [`InstanceReport`] per control cycle;
//! the [`Aggregator`] *indexes* them into per-`(app, node)` state the
//! router scores against. Warmth is an EWMA of the share of the app's
//! traffic the instance served — a fluid proxy for cache/data locality:
//! an instance that keeps receiving an app's requests converges to
//! warmth 1, one that stops receiving traffic cools toward 0, and a
//! freshly started instance begins cold.

use serde::{Deserialize, Serialize};
use slaq_types::{AppId, NodeId};
use std::collections::BTreeMap;

/// One instance's per-cycle publication into the metrics plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Application the instance belongs to.
    pub app: AppId,
    /// Node hosting the instance.
    pub node: NodeId,
    /// Fraction of the app's requests this instance served this cycle
    /// (`[0, 1]`, shares of one app sum to ≤ 1).
    pub share: f64,
    /// Instance utilization this cycle (`[0, 1]`-ish; informational).
    pub util: f64,
}

/// Per-instance aggregated state.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct InstanceState {
    /// EWMA of routed share — the warm-state (locality) score.
    warmth: f64,
    /// Last published utilization.
    load: f64,
}

/// The indexer half of the metrics plane: folds instance reports into
/// warmth/load scores, keyed `(app, node)` in deterministic order.
///
/// Per-app state is a node-id-sorted vec, not a tree: the router syncs,
/// reads, and publishes a whole app's instances every cycle, so the hot
/// path is sequential merges over contiguous memory (with binary
/// searches only for point reads), not per-node tree descents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregator {
    /// EWMA smoothing factor in `(0, 1]` for warmth updates.
    alpha: f64,
    state: BTreeMap<AppId, Vec<(NodeId, InstanceState)>>,
}

impl Aggregator {
    /// Create with warmth smoothing factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Option<Self> {
        (alpha > 0.0 && alpha <= 1.0).then_some(Aggregator {
            alpha,
            state: BTreeMap::new(),
        })
    }

    /// Reconcile `app`'s instance set with the live placement: vanished
    /// instances are dropped (their warmth dies with them — a restarted
    /// instance begins cold), new instances appear with zero state.
    /// `live` must be id-sorted (placements iterate in id order); the
    /// reconciled state then aligns index-for-index with `live`.
    pub fn sync_instances(&mut self, app: AppId, live: &[NodeId]) {
        if live.is_empty() {
            self.state.remove(&app);
            return;
        }
        debug_assert!(live.windows(2).all(|w| w[0] < w[1]), "live set unsorted");
        let entry = self.state.entry(app).or_default();
        // One sorted merge: keep surviving state, seed new nodes cold.
        let mut merged = Vec::with_capacity(live.len());
        let mut old = 0usize;
        for &n in live {
            while old < entry.len() && entry[old].0 < n {
                old += 1;
            }
            let state = if old < entry.len() && entry[old].0 == n {
                old += 1;
                entry[old - 1].1
            } else {
                InstanceState::default()
            };
            merged.push((n, state));
        }
        *entry = merged;
    }

    /// Fold one cycle's instance publications in: each report moves its
    /// instance's warmth EWMA toward the served share and overwrites the
    /// load reading. Unknown instances are created on first publish.
    pub fn publish(&mut self, reports: &[InstanceReport]) {
        for r in reports {
            let entry = self.state.entry(r.app).or_default();
            let slot = match entry.binary_search_by_key(&r.node, |&(n, _)| n) {
                Ok(i) => &mut entry[i].1,
                Err(i) => {
                    entry.insert(i, (r.node, InstanceState::default()));
                    &mut entry[i].1
                }
            };
            slot.warmth += self.alpha * (r.share.clamp(0.0, 1.0) - slot.warmth);
            slot.load = r.util;
        }
    }

    /// Current warmth score of one instance (0 when unknown).
    pub fn warmth(&self, app: AppId, node: NodeId) -> f64 {
        self.get(app, node).map_or(0.0, |s| s.warmth)
    }

    /// Last published load of one instance (0 when unknown).
    pub fn load(&self, app: AppId, node: NodeId) -> f64 {
        self.get(app, node).map_or(0.0, |s| s.load)
    }

    fn get(&self, app: AppId, node: NodeId) -> Option<&InstanceState> {
        let entry = self.state.get(&app)?;
        entry
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| &entry[i].1)
    }

    /// Warmth snapshot of one app's instances, id-sorted — the affinity
    /// vector handed to the placement solver.
    pub fn affinity(&self, app: AppId) -> Vec<(NodeId, f64)> {
        self.state
            .get(&app)
            .map(|m| m.iter().map(|&(n, s)| (n, s.warmth)).collect())
            .unwrap_or_default()
    }

    /// Copy one app's warmth scores into `out`, aligned index-for-index
    /// with the id-sorted live set last passed to [`Self::sync_instances`]
    /// — the router's zero-lookup read path.
    pub fn warmth_into(&self, app: AppId, out: &mut Vec<f64>) {
        out.clear();
        if let Some(entry) = self.state.get(&app) {
            out.extend(entry.iter().map(|&(_, s)| s.warmth));
        }
    }

    /// Number of `(app, node)` instances currently tracked.
    pub fn tracked(&self) -> usize {
        self.state.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(app: u32, node: u32, share: f64) -> InstanceReport {
        InstanceReport {
            app: AppId::new(app),
            node: NodeId::new(node),
            share,
            util: share,
        }
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(Aggregator::new(0.0).is_none());
        assert!(Aggregator::new(1.1).is_none());
        assert!(Aggregator::new(1.0).is_some());
    }

    #[test]
    fn warmth_converges_to_the_routed_share() {
        let mut a = Aggregator::new(0.5).unwrap();
        for _ in 0..20 {
            a.publish(&[rep(0, 1, 0.8), rep(0, 2, 0.2)]);
        }
        assert!((a.warmth(AppId::new(0), NodeId::new(1)) - 0.8).abs() < 1e-4);
        assert!((a.warmth(AppId::new(0), NodeId::new(2)) - 0.2).abs() < 1e-4);
        assert_eq!(a.warmth(AppId::new(0), NodeId::new(9)), 0.0);
    }

    #[test]
    fn starved_instances_cool_down() {
        let mut a = Aggregator::new(0.5).unwrap();
        a.publish(&[rep(0, 1, 1.0)]);
        let hot = a.warmth(AppId::new(0), NodeId::new(1));
        a.publish(&[rep(0, 1, 0.0)]);
        assert!(a.warmth(AppId::new(0), NodeId::new(1)) < hot);
    }

    #[test]
    fn sync_drops_vanished_and_seeds_new_cold() {
        let mut a = Aggregator::new(0.5).unwrap();
        a.publish(&[rep(0, 1, 1.0)]);
        a.sync_instances(AppId::new(0), &[NodeId::new(2)]);
        // node1 vanished: warmth gone; node2 new: cold.
        assert_eq!(a.warmth(AppId::new(0), NodeId::new(1)), 0.0);
        assert_eq!(a.warmth(AppId::new(0), NodeId::new(2)), 0.0);
        assert_eq!(a.tracked(), 1);
        // Empty live set removes the app entirely.
        a.sync_instances(AppId::new(0), &[]);
        assert_eq!(a.tracked(), 0);
    }

    #[test]
    fn affinity_is_id_sorted() {
        let mut a = Aggregator::new(1.0).unwrap();
        a.publish(&[rep(3, 5, 0.4), rep(3, 1, 0.6)]);
        let aff = a.affinity(AppId::new(3));
        assert_eq!(aff, vec![(NodeId::new(1), 0.6), (NodeId::new(5), 0.4)]);
        assert!(a.affinity(AppId::new(9)).is_empty());
    }

    #[test]
    fn shares_are_clamped() {
        let mut a = Aggregator::new(1.0).unwrap();
        a.publish(&[rep(0, 0, 7.0), rep(0, 1, -3.0)]);
        assert_eq!(a.warmth(AppId::new(0), NodeId::new(0)), 1.0);
        assert_eq!(a.warmth(AppId::new(0), NodeId::new(1)), 0.0);
        assert_eq!(a.load(AppId::new(0), NodeId::new(0)), 7.0);
    }
}
