//! The placement decision audit log: every disruptive change the
//! control plane commits — solver steps, sharded lanes, the
//! cross-shard rebalance pass, pipeline reconciliation — tagged with
//! `(cycle, subject, from → to, step, reason)` into a bounded ring on
//! the [`Recorder`], exported as deterministic JSONL.
//!
//! Entries carry no wall-clock timestamps and no allocation beyond the
//! ring slot, so two runs of the same scenario produce bit-identical
//! logs (the workspace's execution is single-threaded and the solver is
//! deterministic); `tests/slo_audit.rs` pins that on every corpus
//! preset.

use crate::recorder::Recorder;

/// Cap on buffered audit entries; beyond it the recorder counts drops
/// instead of growing without bound (mirrors the trace-event cap).
pub const AUDIT_CAP: usize = 262_144;

/// What a placement decision acted on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditSubject {
    /// A transactional application (instance start/stop), by raw id.
    App(u32),
    /// A batch job (start/suspend/migrate), by raw id.
    Job(u32),
}

/// One audited placement decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Control cycle the decision belongs to (stamped via
    /// [`Recorder::audit_begin_cycle`]).
    pub cycle: u64,
    /// The app or job acted on.
    pub subject: AuditSubject,
    /// Raw node id the subject moved from (`None` for fresh starts).
    pub from: Option<u32>,
    /// Raw node id the subject moved to (`None` for stops/suspends).
    pub to: Option<u32>,
    /// Pipeline stage that made the decision (e.g. `solve.step4`,
    /// `shard.rebalance`, `pipeline.reconcile`).
    pub step: &'static str,
    /// Why (e.g. `demand-growth`, `evicted`, `stale-plan-repair`).
    pub reason: &'static str,
}

/// Render a recorder's audit ring as JSON Lines: one object per
/// decision, in commit order. Deterministic — no timestamps, stable
/// field order — so repeat runs of the same scenario diff clean.
/// Returns an empty string when the recorder is off.
pub fn audit_jsonl(rec: &Recorder) -> String {
    let entries = rec.audit_entries();
    let mut s = String::new();
    for e in &entries {
        let (kind, id) = match e.subject {
            AuditSubject::App(id) => ("app", id),
            AuditSubject::Job(id) => ("job", id),
        };
        s.push_str(&format!(
            "{{\"cycle\":{},\"subject\":\"{kind}\",\"id\":{id},\"from\":{},\"to\":{},\"step\":\"{}\",\"reason\":\"{}\"}}\n",
            e.cycle,
            opt(e.from),
            opt(e.to),
            e.step,
            e.reason
        ));
    }
    s
}

fn opt(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Aggregate the audit ring into `(step, reason, count)` rows, sorted
/// by step then reason — the shape the run report prints.
pub fn audit_summary(entries: &[AuditEntry]) -> Vec<(&'static str, &'static str, u64)> {
    let mut rows: Vec<(&'static str, &'static str, u64)> = Vec::new();
    for e in entries {
        match rows
            .iter_mut()
            .find(|(s, r, _)| *s == e.step && *r == e.reason)
        {
            Some(row) => row.2 += 1,
            None => rows.push((e.step, e.reason, 1)),
        }
    }
    rows.sort_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(b.1)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_audits_nothing() {
        let r = Recorder::off();
        r.audit_begin_cycle(3);
        r.audit(
            AuditSubject::Job(1),
            None,
            Some(2),
            "solve.step3",
            "priority-place",
        );
        assert!(r.audit_entries().is_empty());
        assert_eq!(audit_jsonl(&r), "");
    }

    #[test]
    fn entries_stamp_the_current_cycle_in_order() {
        let r = Recorder::enabled();
        r.audit_begin_cycle(0);
        r.audit(
            AuditSubject::Job(7),
            None,
            Some(2),
            "solve.step3",
            "priority-place",
        );
        r.audit_begin_cycle(1);
        r.audit(
            AuditSubject::Job(7),
            Some(2),
            Some(5),
            "solve.step4",
            "rebalance-deficit",
        );
        r.audit(
            AuditSubject::App(1),
            Some(4),
            None,
            "solve.step2",
            "idle-shrink",
        );
        let entries = r.audit_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].cycle, 0);
        assert_eq!(entries[1].cycle, 1);
        assert_eq!(entries[1].from, Some(2));
        assert_eq!(entries[2].subject, AuditSubject::App(1));
        assert_eq!(r.audit_dropped(), 0);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let r = Recorder::enabled();
        r.audit_begin_cycle(2);
        r.audit(
            AuditSubject::Job(3),
            Some(1),
            Some(4),
            "shard.rebalance",
            "cross-shard-move",
        );
        r.audit(
            AuditSubject::App(0),
            None,
            Some(9),
            "solve.step2",
            "demand-growth",
        );
        let out = audit_jsonl(&r);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"cycle\":2,\"subject\":\"job\",\"id\":3,\"from\":1,\"to\":4,\"step\":\"shard.rebalance\",\"reason\":\"cross-shard-move\"}"
        );
        assert_eq!(
            lines[1],
            "{\"cycle\":2,\"subject\":\"app\",\"id\":0,\"from\":null,\"to\":9,\"step\":\"solve.step2\",\"reason\":\"demand-growth\"}"
        );
    }

    #[test]
    fn summary_groups_and_sorts_by_step_then_reason() {
        let r = Recorder::enabled();
        r.audit_begin_cycle(0);
        for _ in 0..3 {
            r.audit(
                AuditSubject::Job(1),
                None,
                Some(0),
                "solve.step3",
                "priority-place",
            );
        }
        r.audit(
            AuditSubject::Job(2),
            Some(0),
            None,
            "solve.step5",
            "evicted",
        );
        r.audit(
            AuditSubject::App(0),
            None,
            Some(1),
            "solve.step2",
            "demand-growth",
        );
        let rows = audit_summary(&r.audit_entries());
        assert_eq!(
            rows,
            vec![
                ("solve.step2", "demand-growth", 1),
                ("solve.step3", "priority-place", 3),
                ("solve.step5", "evicted", 1),
            ]
        );
    }
}
