//! Offline stand-in for the `proptest` crate.
//!
//! Provides the `proptest!` / `prop_assert!` surface the slaq workspace
//! uses, backed by a deterministic SplitMix64 generator. No shrinking: a
//! failing case reports its inputs (via the strategy's `Debug` output) and
//! case number instead.

/// Deterministic 64-bit generator (SplitMix64) used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the runner derives one seed per test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! The strategy trait and combinators over ranges and tuples.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value: std::fmt::Debug;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod collection {
    //! `vec(element, size_range)` collection strategy.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy yielding `Vec`s with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector strategy over `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `of(strategy)` optional-value strategy.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `None` or `Some(inner)` with equal probability.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Optional-value strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Case loop and config.

    use super::TestRng;

    /// Error raised by `prop_assert!` macros inside a case body.
    pub type TestCaseError = String;

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomized cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives `cases` deterministic iterations of a test closure.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Build from config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run the closure once per case; panics on the first failure.
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for i in 0..self.config.cases {
                // Distinct, reproducible stream per case.
                let mut rng = TestRng::new(
                    0xB5AD_4ECE_DA1C_E2A9 ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                if let Err(msg) = case(&mut rng) {
                    panic!("proptest case {i} failed: {msg}");
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro surface needs in scope.

    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test running the body across randomized cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(|__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("{:?} != {:?}: {}", left, right, format!($($fmt)+)),
            );
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, "assertion failed: {:?} != {:?}", left, right);
    }};
}
