//! Time-series metrics collection and CSV export.

use serde::{Deserialize, Serialize, Value};
use slaq_types::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Handle to one series inside a [`MetricsSink`], obtained from
/// [`MetricsSink::intern`]. Recording through a key skips the name
/// lookup entirely — no hashing, no `String` allocation.
///
/// A key is only valid for the sink that interned it; per-solve
/// buffered sinks (the pipelined control plane) must keep using
/// [`MetricsSink::record`] by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricKey(usize);

/// Named time series accumulated during a run.
///
/// Both the simulator (mechanical facts: allocations, response times,
/// completions) and the controller (model-side quantities: hypothetical
/// utility, demands, water level) write here; the experiment harness reads
/// series out to regenerate the paper's figures.
///
/// Storage is an interned index (`name → slot`) over dense point
/// vectors, so the per-cycle hot path — callers that hold a
/// [`MetricKey`] — is a single `Vec` push.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    index: BTreeMap<String, usize>,
    points: Vec<Vec<(f64, f64)>>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning a [`MetricKey`] for allocation-free
    /// recording. Idempotent: interning the same name twice returns the
    /// same key.
    pub fn intern(&mut self, name: &str) -> MetricKey {
        if let Some(&ix) = self.index.get(name) {
            return MetricKey(ix);
        }
        let ix = self.points.len();
        self.index.insert(name.to_string(), ix);
        self.points.push(Vec::new());
        MetricKey(ix)
    }

    /// Append `(t, value)` to the series behind `key` — the interned
    /// fast path: one bounds-checked index plus a `Vec` push.
    #[inline]
    pub fn record_key(&mut self, key: MetricKey, t: SimTime, value: f64) {
        self.points[key.0].push((t.as_secs(), value));
    }

    /// Append `(t, value)` to series `name` (created on first use).
    /// Allocates only when the series does not exist yet.
    pub fn record(&mut self, name: &str, t: SimTime, value: f64) {
        match self.index.get(name) {
            Some(&ix) => self.points[ix].push((t.as_secs(), value)),
            None => {
                let key = self.intern(name);
                self.points[key.0].push((t.as_secs(), value));
            }
        }
    }

    /// Absorb another sink: every series of `other` is appended onto the
    /// series of the same name here (created on first use), points in
    /// `other`'s recorded order. Used by the pipelined control plane to
    /// fold a solve's buffered model-side series into the run's sink at
    /// actuation time; merging completed solves in dispatch order keeps
    /// each series time-sorted.
    pub fn merge(&mut self, other: MetricsSink) {
        let MetricsSink { index, mut points } = other;
        for (name, ix) in index {
            let key = self.intern(&name);
            self.points[key.0].append(&mut points[ix]);
        }
    }

    /// All points of one series.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.index
            .get(name)
            .map(|&ix| self.points[ix].as_slice())
            .unwrap_or(&[])
    }

    /// Names of all series with at least one point, sorted. A name that
    /// was interned but never recorded is not a series yet — interning
    /// keys up-front is unobservable.
    pub fn names(&self) -> Vec<&str> {
        self.index
            .iter()
            .filter(|&(_, &ix)| !self.points[ix].is_empty())
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Last value of a series, if any.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series(name).last().map(|&(_, v)| v)
    }

    /// Mean of a series over `[from, to]` (`None` when empty there).
    pub fn mean_over(&self, name: &str, from: SimTime, to: SimTime) -> Option<f64> {
        let pts: Vec<f64> = self
            .series(name)
            .iter()
            .filter(|&&(t, _)| t >= from.as_secs() && t <= to.as_secs())
            .map(|&(_, v)| v)
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().sum::<f64>() / pts.len() as f64)
        }
    }

    /// Minimum of a series over its whole span.
    pub fn min(&self, name: &str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .min_by(|a, b| slaq_types::fcmp(*a, *b))
    }

    /// Maximum of a series over its whole span.
    pub fn max(&self, name: &str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| slaq_types::fcmp(*a, *b))
    }

    /// Render the given series as CSV with a shared time column.
    ///
    /// Series are sampled at the union of their timestamps; a series
    /// without a point at some instant carries its previous value forward
    /// (step interpolation — these are control-cycle samples).
    pub fn to_csv(&self, names: &[&str]) -> String {
        let mut times: Vec<f64> = names
            .iter()
            .flat_map(|n| self.series(n).iter().map(|&(t, _)| t))
            .collect();
        times.sort_by(|a, b| slaq_types::fcmp(*a, *b));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        out.push_str("time");
        for n in names {
            let _ = write!(out, ",{n}");
        }
        out.push('\n');
        let mut cursors = vec![0usize; names.len()];
        let mut last = vec![f64::NAN; names.len()];
        for &t in &times {
            let _ = write!(out, "{t}");
            for (i, n) in names.iter().enumerate() {
                let pts = self.series(n);
                while cursors[i] < pts.len() && pts[cursors[i]].0 <= t + 1e-9 {
                    last[i] = pts[cursors[i]].1;
                    cursors[i] += 1;
                }
                if last[i].is_nan() {
                    out.push(',');
                } else {
                    let _ = write!(out, ",{}", last[i]);
                }
            }
            out.push('\n');
        }
        out
    }
}

// Equality is by name → points content over non-empty series; interned
// slot numbers and never-recorded names are internal details (two sinks
// that recorded the same data in a different order, or interned
// different key sets, still compare equal).
impl PartialEq for MetricsSink {
    fn eq(&self, other: &Self) -> bool {
        self.names() == other.names()
            && self
                .index
                .iter()
                .filter(|&(_, &ix)| !self.points[ix].is_empty())
                .all(|(name, &ix)| other.series(name) == self.points[ix].as_slice())
    }
}

impl Serialize for MetricsSink {
    fn to_value(&self) -> Value {
        let map: BTreeMap<&String, &Vec<(f64, f64)>> = self
            .index
            .iter()
            .filter(|&(_, &ix)| !self.points[ix].is_empty())
            .map(|(name, &ix)| (name, &self.points[ix]))
            .collect();
        Value::Obj(vec![("series".to_string(), map.to_value())])
    }
}

impl Deserialize for MetricsSink {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let map = BTreeMap::<String, Vec<(f64, f64)>>::from_value(serde::obj_get(v, "series")?)?;
        let mut sink = MetricsSink::new();
        for (name, pts) in map {
            let key = sink.intern(&name);
            sink.points[key.0] = pts;
        }
        Ok(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_read_back() {
        let mut m = MetricsSink::new();
        m.record("u", t(0.0), 0.5);
        m.record("u", t(600.0), 0.7);
        assert_eq!(m.series("u"), &[(0.0, 0.5), (600.0, 0.7)]);
        assert_eq!(m.last("u"), Some(0.7));
        assert_eq!(m.series("missing"), &[] as &[(f64, f64)]);
        assert_eq!(m.names(), vec!["u"]);
    }

    #[test]
    fn interned_key_fast_path_matches_by_name() {
        let mut m = MetricsSink::new();
        let k = m.intern("u");
        m.record_key(k, t(0.0), 0.5);
        m.record("u", t(600.0), 0.7);
        m.record_key(k, t(1200.0), 0.9);
        assert_eq!(m.series("u"), &[(0.0, 0.5), (600.0, 0.7), (1200.0, 0.9)]);
        // Re-interning returns the same key.
        assert_eq!(m.intern("u"), k);
        // Interned-but-unrecorded names are not series yet.
        let _ = m.intern("latent");
        assert_eq!(m.names(), vec!["u"]);
        assert_eq!(m, {
            let mut n = MetricsSink::new();
            n.record("u", t(0.0), 0.5);
            n.record("u", t(600.0), 0.7);
            n.record("u", t(1200.0), 0.9);
            n
        });
    }

    #[test]
    fn equality_ignores_interning_order() {
        let mut a = MetricsSink::new();
        a.record("x", t(0.0), 1.0);
        a.record("y", t(0.0), 2.0);
        let mut b = MetricsSink::new();
        b.record("y", t(0.0), 2.0);
        b.record("x", t(0.0), 1.0);
        assert_eq!(a, b);
        b.record("x", t(1.0), 3.0);
        assert_ne!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = MetricsSink::new();
        m.record("u", t(0.0), 0.5);
        m.record("v", t(600.0), 1.5);
        let back = MetricsSink::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn merge_appends_series_in_order() {
        let mut a = MetricsSink::new();
        a.record("u", t(0.0), 1.0);
        a.record("only_a", t(0.0), 9.0);
        let mut b = MetricsSink::new();
        b.record("u", t(600.0), 2.0);
        b.record("only_b", t(600.0), 7.0);
        a.merge(b);
        assert_eq!(a.series("u"), &[(0.0, 1.0), (600.0, 2.0)]);
        assert_eq!(a.series("only_a"), &[(0.0, 9.0)]);
        assert_eq!(a.series("only_b"), &[(600.0, 7.0)]);
    }

    #[test]
    fn aggregations() {
        let mut m = MetricsSink::new();
        for (i, v) in [1.0, 3.0, 5.0, 7.0].iter().enumerate() {
            m.record("x", t(i as f64 * 100.0), *v);
        }
        assert_eq!(m.mean_over("x", t(0.0), t(300.0)), Some(4.0));
        assert_eq!(m.mean_over("x", t(100.0), t(200.0)), Some(4.0));
        assert_eq!(m.mean_over("x", t(1000.0), t(2000.0)), None);
        assert_eq!(m.min("x"), Some(1.0));
        assert_eq!(m.max("x"), Some(7.0));
    }

    #[test]
    fn csv_aligns_series_with_step_interpolation() {
        let mut m = MetricsSink::new();
        m.record("a", t(0.0), 1.0);
        m.record("a", t(200.0), 2.0);
        m.record("b", t(100.0), 10.0);
        let csv = m.to_csv(&["a", "b"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "100,1,10");
        assert_eq!(lines[3], "200,2,10");
    }

    #[test]
    fn csv_of_missing_series_is_header_only() {
        let m = MetricsSink::new();
        assert_eq!(m.to_csv(&["nope"]), "time,nope\n");
    }
}
