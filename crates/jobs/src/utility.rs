//! Utility-of-CPU adapter for jobs: *expected* utility under a sustained
//! CPU allocation, via projected completion time.
//!
//! "The algorithm needs a mechanism to predict (at each control cycle) the
//! utility that each job in the system will achieve given a particular
//! allocation. And this is still true even for jobs that are not yet
//! started, for which the expected completion time is still undefined."
//! — the projection below answers exactly that: assume the job (runs or)
//! starts now and sustains allocation ω until completion:
//!
//! ```text
//! t_c(ω) = now + remaining_work / min(ω, max_speed)
//! u(ω)   = goal.utility_at(t_c(ω))
//! ```
//!
//! `u` is monotone non-decreasing in ω and saturates at
//! `min(max_speed, power-to-finish-by-goal.earliest)` — the job's *demand
//! for maximum utility* aggregated into Figure 2's long-running demand
//! curve.

use crate::job::Job;
use serde::{Deserialize, Serialize};
use slaq_types::{CpuMhz, SimTime, Work};
use slaq_utility::{CompletionGoal, UtilityOfCpu};

/// Snapshot of one job's utility-of-CPU curve at a control instant.
///
/// Owned (no borrow of the job) so the equalizer can hold many of these
/// while the manager stays mutable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobUtility {
    /// Work left at the snapshot instant.
    pub remaining: Work,
    /// Speed cap (one processor in the paper's testbed).
    pub max_speed: CpuMhz,
    /// The job's completion-time SLA.
    pub goal: CompletionGoal,
    /// Snapshot instant: projections assume execution starts here.
    pub now: SimTime,
}

impl JobUtility {
    /// Snapshot a job's curve at instant `now`.
    pub fn of(job: &Job, now: SimTime) -> Self {
        JobUtility {
            remaining: job.remaining,
            max_speed: job.spec.max_speed,
            goal: job.spec.goal.clone(),
            now,
        }
    }

    /// Projected completion instant at sustained allocation `cpu`
    /// ([`SimTime::NEVER`] at zero allocation).
    pub fn projected_completion(&self, cpu: CpuMhz) -> SimTime {
        if self.remaining.is_done() {
            return self.now;
        }
        let speed = cpu.max_zero().min(self.max_speed);
        let secs = self.remaining.secs_at(speed);
        if secs.is_infinite() {
            SimTime::NEVER
        } else {
            self.now + slaq_types::SimDuration::from_secs(secs)
        }
    }
}

impl UtilityOfCpu for JobUtility {
    fn utility(&self, cpu: CpuMhz) -> f64 {
        self.goal.utility_at(self.projected_completion(cpu))
    }

    fn cpu_for_utility(&self, u: f64) -> Option<CpuMhz> {
        let max_u = self.max_utility();
        if u > max_u + 1e-12 {
            return None;
        }
        if u <= self.utility_at_zero() {
            return Some(CpuMhz::ZERO);
        }
        // Latest completion instant still achieving u, then the power that
        // hits it from `now`.
        let latest = self.goal.latest_for_utility(u);
        if latest.is_never() {
            return Some(CpuMhz::ZERO);
        }
        let dt = (latest - self.now).as_secs();
        let p = self.remaining.power_for_secs(dt);
        Some(p.min(self.max_speed).max_zero())
    }

    fn max_useful_cpu(&self) -> CpuMhz {
        if self.remaining.is_done() {
            return CpuMhz::ZERO;
        }
        // A job whose SLA curve has gone flat (even its fastest possible
        // finish lands past `exhausted`) gains nothing from CPU: its
        // demand for maximum utility is zero. It still finishes eventually
        // through the simulator's work-conserving node shares.
        if self.utility(self.max_speed) <= self.utility_at_zero() + 1e-12 {
            return CpuMhz::ZERO;
        }
        let slack = (self.goal.earliest - self.now).as_secs();
        if slack <= 0.0 {
            // The max-utility region of the SLA is already unreachable;
            // every MHz up to the speed cap still improves utility.
            return self.max_speed;
        }
        self.remaining.power_for_secs(slack).min(self.max_speed)
    }

    fn utility_at_zero(&self) -> f64 {
        if self.remaining.is_done() {
            self.goal.utility_at(self.now)
        } else {
            self.goal.utility_at(SimTime::NEVER)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slaq_types::{JobId, MemMb, SimDuration};

    /// Job: 3 000 000 MHz·s of work (1000 s at the 3000 MHz cap),
    /// submitted at t=0, goal at 1250 s, exhausted at 2000 s.
    fn ju(now_secs: f64) -> JobUtility {
        let spec = crate::job::JobSpec {
            name: "j".into(),
            total_work: Work::new(3_000_000.0),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::ZERO,
                SimDuration::from_secs(1000.0),
                1.25,
                2.0,
            )
            .unwrap(),
        };
        let job = Job::new(JobId::new(0), spec, SimTime::ZERO).unwrap();
        JobUtility::of(&job, SimTime::from_secs(now_secs))
    }

    #[test]
    fn projection_at_full_speed_hits_fastest_finish() {
        let u = ju(0.0);
        assert_eq!(
            u.projected_completion(CpuMhz::new(3000.0)),
            SimTime::from_secs(1000.0)
        );
        // Allocation beyond max speed doesn't accelerate the job.
        assert_eq!(
            u.projected_completion(CpuMhz::new(30_000.0)),
            SimTime::from_secs(1000.0)
        );
        assert!(u.projected_completion(CpuMhz::ZERO).is_never());
    }

    #[test]
    fn fresh_job_at_full_speed_has_max_utility() {
        let u = ju(0.0);
        assert_eq!(u.utility(CpuMhz::new(3000.0)), 1.0);
        assert_eq!(u.max_useful_cpu(), CpuMhz::new(3000.0));
        assert_eq!(u.max_utility(), 1.0);
        assert_eq!(u.utility_at_zero(), 0.0);
    }

    #[test]
    fn half_speed_lands_past_goal() {
        let u = ju(0.0);
        // At 1500 MHz completion = 2000 s = exhausted ⇒ utility 0.
        assert!((u.utility(CpuMhz::new(1500.0)) - 0.0).abs() < 1e-9);
        // At 2400 MHz completion = 1250 s = goal ⇒ utility 0.5.
        assert!((u.utility(CpuMhz::new(2400.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inverse_demand_roundtrips() {
        let u = ju(0.0);
        for target in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let cpu = u.cpu_for_utility(target).unwrap();
            assert!(
                u.utility(cpu) >= target - 1e-9,
                "target {target}: cpu {cpu} gives {}",
                u.utility(cpu)
            );
        }
        assert!(u.cpu_for_utility(1.01).is_none());
        assert_eq!(u.cpu_for_utility(0.0), Some(CpuMhz::ZERO));
        assert_eq!(u.cpu_for_utility(-1.0), Some(CpuMhz::ZERO));
    }

    #[test]
    fn late_snapshot_degrades_max_utility() {
        // At t=500 s, fastest finish is 1500 s (past 1250 s goal):
        // max utility < goal_utility... actually 1500 s sits between goal
        // (u=0.5) and exhausted (u=0): u = 0.5·(2000−1500)/750 ≈ 0.333.
        let u = ju(500.0);
        assert_eq!(u.max_useful_cpu(), CpuMhz::new(3000.0));
        let umax = u.max_utility();
        assert!((umax - 0.5 * 500.0 / 750.0).abs() < 1e-9, "{umax}");
        // Demands for reachable utility still invert.
        let cpu = u.cpu_for_utility(umax - 0.05).unwrap();
        assert!(u.utility(cpu) >= umax - 0.05 - 1e-9);
        assert!(u.cpu_for_utility(umax + 0.05).is_none());
    }

    #[test]
    fn hopeless_job_pins_at_floor() {
        // At t=3000 s even instant completion is past `exhausted`:
        // the curve is flat at min utility, so no CPU is useful.
        let u = ju(3000.0);
        assert_eq!(u.max_utility(), 0.0);
        assert_eq!(u.utility(CpuMhz::new(3000.0)), 0.0);
        assert_eq!(u.utility_at_zero(), 0.0);
        // Flat curve: demand for its max utility is zero CPU.
        assert_eq!(u.cpu_for_utility(0.0), Some(CpuMhz::ZERO));
        assert_eq!(u.max_useful_cpu(), CpuMhz::ZERO);
    }

    #[test]
    fn completed_job_is_flat_at_now_utility() {
        let mut u = ju(100.0);
        u.remaining = Work::ZERO;
        assert_eq!(u.max_useful_cpu(), CpuMhz::ZERO);
        assert_eq!(
            u.projected_completion(CpuMhz::ZERO),
            SimTime::from_secs(100.0)
        );
        assert_eq!(u.utility(CpuMhz::ZERO), 1.0); // 100 s < earliest
    }

    #[test]
    fn partially_done_job_needs_less_power() {
        let mut u = ju(0.0);
        u.remaining = Work::new(1_500_000.0); // half done
                                              // To finish by earliest (1000 s): 1500 MHz suffices.
        assert_eq!(u.max_useful_cpu(), CpuMhz::new(1500.0));
        assert_eq!(u.utility(CpuMhz::new(1500.0)), 1.0);
    }

    proptest! {
        #[test]
        fn prop_utility_monotone_in_cpu(
            now in 0.0..2500.0f64,
            a in 0.0..4000.0f64,
            extra in 0.0..4000.0f64,
        ) {
            let u = ju(now);
            prop_assert!(
                u.utility(CpuMhz::new(a + extra)) >= u.utility(CpuMhz::new(a)) - 1e-12
            );
        }

        #[test]
        fn prop_contract_cpu_for_utility(
            now in 0.0..1800.0f64,
            q in 0.0..1.0f64,
        ) {
            let u = ju(now);
            let target = u.utility_at_zero()
                + q * (u.max_utility() - u.utility_at_zero());
            if let Some(cpu) = u.cpu_for_utility(target) {
                prop_assert!(u.utility(cpu) >= target - 1e-9);
                prop_assert!(cpu.as_f64() <= u.max_useful_cpu().as_f64() + 1e-6);
            } else {
                prop_assert!(target > u.max_utility());
            }
        }

        #[test]
        fn prop_less_remaining_means_weakly_more_utility(
            now in 0.0..1500.0f64,
            alloc in 0.0..4000.0f64,
            frac in 0.0..1.0f64,
        ) {
            let full = ju(now);
            let mut part = full.clone();
            part.remaining = Work::new(full.remaining.as_f64() * frac);
            prop_assert!(
                part.utility(CpuMhz::new(alloc)) >= full.utility(CpuMhz::new(alloc)) - 1e-12
            );
        }
    }
}
