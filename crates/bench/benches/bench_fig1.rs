//! E1 — regenerate the Figure 1 series (utility of both workloads over
//! time) on the scaled-down paper scenario, end to end: workload
//! generation, simulation under the utility controller, series extraction.
//!
//! The full-size experiment is exercised by
//! `cargo run --release -p slaq-experiments --bin fig1`; benching the
//! scaled variant keeps `cargo bench` minutes-scale while covering the
//! identical code path.

use criterion::{criterion_group, criterion_main, Criterion};
use slaq_core::scenario::PaperParams;
use slaq_experiments::{fig1_csv, run_paper_experiment};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("paper_small_end_to_end", |b| {
        b.iter(|| {
            let report = run_paper_experiment(black_box(&PaperParams::small())).unwrap();
            let csv = fig1_csv(&report);
            black_box(csv.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
