//! E3: the utility controller against the two baselines on the same
//! workload.

use serde::{Deserialize, Serialize};
use slaq_core::scenario::PaperParams;
use slaq_core::{StaticPartitionController, TransactionalFirstController, UtilityController};
use slaq_sim::SimReport;
use slaq_types::{Result, SimTime};

/// One controller's scorecard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Controller label.
    pub controller: String,
    /// Mean measured transactional utility over the run.
    pub mean_trans_utility: f64,
    /// Mean of the simulator's controller-neutral job outlook (expected
    /// utility of active jobs at their current speeds).
    pub mean_jobs_outlook: f64,
    /// |mean_trans_utility − mean_jobs_outlook|: how evenly the two
    /// workloads are treated — the quantity Figure 1 shows the paper's
    /// controller driving toward zero.
    pub balance_gap: f64,
    /// Minimum measured transactional utility (worst cycle).
    pub min_trans_utility: f64,
    /// Jobs completed within the horizon.
    pub jobs_completed: usize,
    /// Completed jobs that met their completion goal.
    pub goals_met: usize,
    /// Mean job utility over **all submitted** jobs: completed jobs
    /// contribute their achieved utility, jobs still unfinished at the
    /// horizon contribute the floor (0). Averaging only completed jobs
    /// would reward a scheduler for starving its queue tail — the
    /// survivors all ran at full speed.
    pub mean_job_utility: f64,
    /// Total placement disruptions suffered by jobs.
    pub disruptions: u32,
    /// Minimum over time of min(u_trans(t), jobs_outlook(t)) where
    /// `jobs_outlook` is the simulator's controller-neutral measure: the
    /// mean expected utility of active jobs at their *current* speeds
    /// (starved pending jobs project at the SLA floor). This is the
    /// worst-off workload's worst moment — the quantity max–min
    /// management protects, and where queue-tail starvation shows up.
    pub worst_workload_utility: f64,
}

fn row(name: &str, report: &SimReport, horizon: SimTime) -> ComparisonRow {
    let m = &report.metrics;
    let mean_trans = m
        .mean_over("trans_utility", SimTime::ZERO, horizon)
        .unwrap_or(0.0);
    let min_trans = m.min("trans_utility").unwrap_or(0.0);
    // Worst-off workload over time, from controller-neutral series.
    let mut worst = f64::INFINITY;
    for &(_, v) in m.series("trans_utility") {
        worst = worst.min(v);
    }
    for &(_, v) in m.series("jobs_outlook") {
        worst = worst.min(v);
    }
    if worst == f64::INFINITY {
        worst = 0.0;
    }
    let mean_outlook = m
        .mean_over("jobs_outlook", SimTime::ZERO, horizon)
        .unwrap_or(0.0);
    let s = report.job_stats;
    let mean_job_utility = if s.submitted > 0 {
        s.mean_achieved_utility * s.completed as f64 / s.submitted as f64
    } else {
        0.0
    };
    ComparisonRow {
        controller: name.to_string(),
        mean_trans_utility: mean_trans,
        mean_jobs_outlook: mean_outlook,
        balance_gap: (mean_trans - mean_outlook).abs(),
        min_trans_utility: min_trans,
        jobs_completed: s.completed,
        goals_met: s.goals_met,
        mean_job_utility,
        disruptions: s.disruptions,
        worst_workload_utility: worst,
    }
}

/// Run the paper workload under all three controllers.
pub fn compare_controllers(params: &PaperParams) -> Result<Vec<ComparisonRow>> {
    let horizon = SimTime::from_secs(params.horizon_secs);
    let mut rows = Vec::new();

    let scenario = params.scenario();
    let mut utility = UtilityController::default();
    rows.push(row(
        "utility-equalizing",
        &scenario.run(&mut utility)?,
        horizon,
    ));

    let scenario = params.scenario();
    let mut fcfs = TransactionalFirstController::default();
    rows.push(row(
        "transactional-first-fcfs",
        &scenario.run(&mut fcfs)?,
        horizon,
    ));

    let scenario = params.scenario();
    // Give the static partition the transactional share the utility
    // controller converges to (~1/3 of nodes) — a fair fence.
    let mut fence = StaticPartitionController::new(0.36);
    rows.push(row("static-partition", &scenario.run(&mut fence)?, horizon));

    Ok(rows)
}

/// Format rows as an aligned text table.
pub fn format_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}\n",
        "controller",
        "mean u_T",
        "outlook",
        "balance",
        "done",
        "goals_met",
        "mean u_J",
        "disrupt",
        "worst u",
        "min u_T"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:>9.3} {:>9.3} {:>8.3} {:>8} {:>9} {:>9.3} {:>8} {:>8.3} {:>8.3}\n",
            r.controller,
            r.mean_trans_utility,
            r.mean_jobs_outlook,
            r.balance_gap,
            r.jobs_completed,
            r.goals_met,
            r.mean_job_utility,
            r.disruptions,
            r.worst_workload_utility,
            r.min_trans_utility,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_all_three_controllers() {
        let rows = compare_controllers(&PaperParams::small()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].controller, "utility-equalizing");
        // The paper's claim is max–min protection: under job pressure the
        // utility controller's worst-off workload must fare better than
        // under transactional-first FCFS (whose queue tail starves) and
        // the static partition (whose fence wastes capacity). FCFS may
        // legitimately win mean/goal metrics for identical jobs — that is
        // the throughput/fairness trade the paper prices via utilities.
        let ours = &rows[0];
        let fcfs = &rows[1];
        let fence = &rows[2];
        // Headline (Figure 1): the utility controller treats the two
        // workloads evenly; the utility-blind baselines do not.
        assert!(
            ours.balance_gap < fcfs.balance_gap - 0.05,
            "balance: ours {} vs fcfs {}",
            ours.balance_gap,
            fcfs.balance_gap
        );
        assert!(
            ours.balance_gap < fence.balance_gap - 0.05,
            "balance: ours {} vs fence {}",
            ours.balance_gap,
            fence.balance_gap
        );
        // The fence wastes capacity: its worst-off workload fares worse.
        assert!(
            ours.worst_workload_utility > fence.worst_workload_utility + 0.02,
            "ours {} vs fence {}",
            ours.worst_workload_utility,
            fence.worst_workload_utility
        );
        // FCFS never preempts: zero disruptions; ours pays churn for it.
        assert_eq!(fcfs.disruptions, 0);
        let table = format_table(&rows);
        assert!(table.contains("static-partition"));
        assert_eq!(table.lines().count(), 4);
    }
}
