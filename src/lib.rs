//! # slaq — SLA-driven placement of heterogeneous workloads
//!
//! Façade crate re-exporting the full public API of the workspace.
//!
//! Reproduction of Carrera, Steinder, Whalley, Torres, Ayguadé:
//! *"Managing SLAs of Heterogeneous Workloads using Dynamic Application
//! Placement"*, HPDC 2008. See `README.md` for a tour, `DESIGN.md` for
//! the system inventory and `examples/` for runnable entry points:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --release --example mixed_datacenter
//! cargo run --example job_scheduler
//! cargo run --release --example capacity_planning
//! cargo run --release --example run_scenario -- --preset paper-small
//! ```
//!
//! Layer map (bottom-up):
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `slaq-types` | units, time, ids, cluster spec |
//! | [`obs`] | `slaq-obs` | spans, counters, histograms, trace export |
//! | [`utility`] | `slaq-utility` | utility curves, SLA goals, equalizers |
//! | [`perfmodel`] | `slaq-perfmodel` | M/G/1-PS model, demand estimation |
//! | [`flow`] | `slaq-flow` | max-flow / min-cost-flow kernel |
//! | [`placement`] | `slaq-placement` | the placement controller (APC) |
//! | [`jobs`] | `slaq-jobs` | job lifecycle + hypothetical utility |
//! | [`workloads`] | `slaq-workloads` | arrival streams, intensity traces |
//! | [`sim`] | `slaq-sim` | the data-center simulator |
//! | [`routing`] | `slaq-routing` | request router + metrics aggregator |
//! | [`core`] | `slaq-core` | the paper's controller, baselines, scenarios |

#![warn(clippy::all)]

pub use slaq_core as core;
pub use slaq_flow as flow;
pub use slaq_jobs as jobs;
pub use slaq_obs as obs;
pub use slaq_perfmodel as perfmodel;
pub use slaq_placement as placement;
pub use slaq_routing as routing;
pub use slaq_sim as sim;
pub use slaq_types as types;
pub use slaq_utility as utility;
pub use slaq_workloads as workloads;

/// Commonly used items, importable with `use slaq::prelude::*`.
pub mod prelude {
    pub use slaq_core::scenario::PaperParams;
    pub use slaq_core::{
        AppSpec, ClusterTopology, ControllerKind, ControllerSpec, JobStreamSpec, NodePoolSpec,
        OutageSpec, Scenario, ScenarioApp, ScenarioSpec, ShardingSpec, StaticPartitionController,
        TimingSpec, TransactionalFirstController, UtilityController,
    };
    pub use slaq_jobs::{Job, JobManager, JobSpec, JobState, JobUtility};
    pub use slaq_perfmodel::{PsQueue, TransactionalModel, TransactionalSpec};
    pub use slaq_placement::{
        AppRequest, JobRequest, NodeCapacity, Placement, PlacementConfig, PlacementProblem,
        ShardMap, ShardPlan, ShardedSolver, Solver,
    };
    pub use slaq_routing::{Aggregator, RouteOutcome, Router, RouterConfig, RoutingTier};
    pub use slaq_sim::{
        Controller, MetricsSink, OverheadConfig, SimConfig, Simulator, TransactionalRuntime,
    };
    pub use slaq_types::{
        AppId, ClusterSpec, CpuMhz, EntityId, JobId, MemMb, NodeId, SimDuration, SimTime, Work,
    };
    pub use slaq_utility::{
        equalize_bisection, equalize_steal, CompletionGoal, EqEntity, EqualizeOptions,
        PiecewiseLinear, ResponseTimeGoal, UtilityOfCpu,
    };
    pub use slaq_workloads::{
        generate_job_stream, ArrivalProcess, IntensityTrace, JobMix, JobTemplate, RateSchedule,
        TemplateClass,
    };
}
