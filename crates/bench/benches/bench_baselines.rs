//! E3 — the controller ablation: utility-equalizing vs
//! transactional-first FCFS vs static partition, each on the identical
//! scaled paper workload.

use criterion::{criterion_group, criterion_main, Criterion};
use slaq_core::scenario::PaperParams;
use slaq_core::{StaticPartitionController, TransactionalFirstController, UtilityController};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let params = PaperParams::small();
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("utility_equalizing", |b| {
        b.iter(|| {
            let r = params
                .scenario()
                .run(&mut UtilityController::default())
                .unwrap();
            black_box(r.job_stats.completed)
        })
    });
    group.bench_function("transactional_first_fcfs", |b| {
        b.iter(|| {
            let r = params
                .scenario()
                .run(&mut TransactionalFirstController::default())
                .unwrap();
            black_box(r.job_stats.completed)
        })
    });
    group.bench_function("static_partition", |b| {
        b.iter(|| {
            let r = params
                .scenario()
                .run(&mut StaticPartitionController::new(0.36))
                .unwrap();
            black_box(r.job_stats.completed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
