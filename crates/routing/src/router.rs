//! The router: apportions one cycle's aggregated requests across an
//! app's live instances by score, in fixed-size chunks.
//!
//! Requests are never evented individually — the cycle's batch (easily
//! millions of requests) is split into [`RouterConfig::chunks`] equal
//! chunks, and each chunk is routed greedily to the instance with the
//! best score
//!
//! ```text
//! score_i = warm_gain · warmth_i − load_penalty · (routed_i − cap_i)
//! ```
//!
//! where `routed_i` is the share already assigned this cycle and `cap_i`
//! the instance's capacity share — so warmth attracts traffic while the
//! load penalty pushes the split back toward proportional-to-capacity.
//! At `temperature = 0` each chunk takes the argmax (ties: lowest node
//! id) — computed in closed form as a waterline projection rather than
//! chunk by chunk, since each pick drains only the picked score by a
//! fixed step; at `temperature > 0` a chunk samples the softmax of the
//! scores from the router's seeded ChaCha12 stream. Both paths are
//! bit-deterministic per (config, seed, input).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use slaq_perfmodel::warm_work_discount;
use slaq_types::NodeId;

/// Router tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Softmax temperature; `0` = deterministic argmax.
    pub temperature: f64,
    /// Fraction of per-request work a fully-warm instance saves
    /// (`[0, 1)`); also the warmth weight in the chunk score.
    pub warm_gain: f64,
    /// Warmth EWMA smoothing factor in `(0, 1]`.
    pub warm_alpha: f64,
    /// Weight of the overload term in the chunk score.
    pub load_penalty: f64,
    /// Chunks one cycle's batch is split into (≥ 1). More chunks =
    /// smoother splits; scoring work grows with the count only at
    /// `temperature > 0` (the argmax path is closed-form).
    pub chunks: u32,
    /// Seed of the router's ChaCha12 stream (used only at
    /// `temperature > 0`).
    pub seed: u64,
    /// `true` routes every chunk round-robin regardless of score — the
    /// uniform-routing baseline the affinity policy is measured against.
    pub uniform: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            temperature: 0.0,
            warm_gain: 0.5,
            warm_alpha: 0.3,
            load_penalty: 1.0,
            chunks: 128,
            seed: 0x51a9_0707,
            uniform: false,
        }
    }
}

/// How one cycle's batch was apportioned for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// Per-instance share of the batch, id-sorted, summing to 1 when any
    /// instance exists.
    pub shares: Vec<(NodeId, f64)>,
    /// Share-weighted warmth of the routed cycle (`[0, 1]`).
    pub warm_hit: f64,
    /// Effective-work multiplier for the routed load
    /// ([`warm_work_discount`]); exactly `1.0` when nothing was warm.
    pub discount: f64,
}

impl RouteOutcome {
    /// The no-instances / no-requests outcome: nothing routed, identity
    /// discount.
    pub fn idle() -> Self {
        RouteOutcome {
            shares: Vec::new(),
            warm_hit: 0.0,
            discount: 1.0,
        }
    }
}

/// Chunk-greedy request router with a seeded softmax exploration knob.
#[derive(Debug, Clone)]
pub struct Router {
    cfg: RouterConfig,
    rng: ChaCha12Rng,
    /// Scratch reused across calls (scores per instance).
    scores: Vec<f64>,
    assigned: Vec<u64>,
    order: Vec<usize>,
    fracs: Vec<f64>,
}

impl Router {
    /// Build from config; the RNG is seeded from `cfg.seed`.
    pub fn new(cfg: RouterConfig) -> Self {
        Router {
            rng: ChaCha12Rng::seed_from_u64(cfg.seed),
            cfg,
            scores: Vec::new(),
            assigned: Vec::new(),
            order: Vec::new(),
            fracs: Vec::new(),
        }
    }

    /// The config in force.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Route one application's cycle batch of `requests` across
    /// `instances` (id-sorted `(node, capacity-weight)` pairs; weights
    /// need not be normalized — non-positive totals fall back to equal
    /// capacity) given each instance's `warmth` (aligned with
    /// `instances`).
    pub fn route(
        &mut self,
        requests: u64,
        instances: &[(NodeId, f64)],
        warmth: &[f64],
    ) -> RouteOutcome {
        let k = instances.len();
        debug_assert_eq!(k, warmth.len());
        if k == 0 || requests == 0 {
            return RouteOutcome::idle();
        }
        let chunks = self.cfg.chunks.max(1) as usize;

        // Capacity shares (fallback: equal when no instance has weight).
        let total_cap: f64 = instances.iter().map(|&(_, c)| c.max(0.0)).sum();
        let cap = |i: usize| -> f64 {
            if total_cap > 0.0 {
                instances[i].1.max(0.0) / total_cap
            } else {
                1.0 / k as f64
            }
        };

        self.assigned.clear();
        self.assigned.resize(k, 0);
        if self.cfg.uniform {
            // Round-robin baseline: chunk c → instance c mod k.
            for c in 0..chunks {
                self.assigned[c % k] += 1;
            }
        } else if self.cfg.temperature > 0.0 {
            // Softmax exploration needs the whole score distribution per
            // draw, so each chunk recomputes and samples it.
            for _ in 0..chunks {
                self.scores.clear();
                for (i, &w) in warmth.iter().enumerate() {
                    let routed = self.assigned[i] as f64 / chunks as f64;
                    self.scores
                        .push(self.cfg.warm_gain * w - self.cfg.load_penalty * (routed - cap(i)));
                }
                let pick = softmax_draw(&self.scores, self.cfg.temperature, &mut self.rng);
                self.assigned[pick] += 1;
            }
        } else {
            // Zero temperature: the chunk-greedy argmax has a closed
            // form. Taking a chunk moves only the taker's score, and by
            // the fixed step `load_penalty / chunks`, so the greedy
            // drains scores down onto a common waterline θ: the active
            // instances end at `base_i − x_i·step = θ` with
            // `Σ x_i = chunks`. Project onto that simplex directly
            // (sort by base, walk the waterline down) and round the
            // fractional chunk counts by largest remainder, ties to the
            // lowest index — O(k log k), independent of the chunk count.
            self.scores.clear();
            for (i, &w) in warmth.iter().enumerate() {
                self.scores
                    .push(self.cfg.warm_gain * w + self.cfg.load_penalty * cap(i));
            }
            let step = self.cfg.load_penalty / chunks as f64;
            if step <= 0.0 {
                // No load penalty: nothing ever drains, every chunk goes
                // to the best base score (ties: lowest index).
                let mut best = 0;
                for i in 1..k {
                    if self.scores[i] > self.scores[best] {
                        best = i;
                    }
                }
                self.assigned[best] = chunks as u64;
            } else {
                self.order.clear();
                self.order.extend(0..k);
                let scores = &self.scores;
                self.order
                    .sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
                // Walk the waterline down while it still sits below the
                // next base (i.e. the next instance takes a positive
                // share). `budget` is the total score drained.
                let budget = chunks as f64 * step;
                let mut prefix = 0.0;
                let mut theta = 0.0;
                let mut active = 0usize;
                for (j, &i) in self.order.iter().enumerate() {
                    let base = self.scores[i];
                    prefix += base;
                    let t = (prefix - budget) / (j + 1) as f64;
                    if t < base {
                        theta = t;
                        active = j + 1;
                    } else {
                        break;
                    }
                }
                // Integer chunks: floors first, then the remainder by
                // largest fractional part (ties: lowest index).
                self.fracs.clear();
                self.fracs.resize(k, 0.0);
                let mut handed = 0u64;
                for &i in &self.order[..active] {
                    let x = ((self.scores[i] - theta) / step).min(chunks as f64);
                    let n = x.floor();
                    self.assigned[i] = n as u64;
                    self.fracs[i] = x - n;
                    handed += n as u64;
                }
                let rem = (chunks as u64).saturating_sub(handed) as usize;
                if rem > 0 {
                    let fracs = &self.fracs;
                    self.order[..active]
                        .sort_unstable_by(|&a, &b| fracs[b].total_cmp(&fracs[a]).then(a.cmp(&b)));
                    for r in 0..rem {
                        self.assigned[self.order[r % active]] += 1;
                    }
                }
            }
        }

        let mut shares = Vec::with_capacity(k);
        let mut warm_hit = 0.0;
        for i in 0..k {
            let share = self.assigned[i] as f64 / chunks as f64;
            warm_hit += share * warmth[i];
            shares.push((instances[i].0, share));
        }
        RouteOutcome {
            shares,
            warm_hit,
            discount: warm_work_discount(self.cfg.warm_gain, warm_hit),
        }
    }
}

/// Sample an index from the softmax of `scores / temperature` using one
/// uniform draw from `rng` (max-subtracted for numeric stability).
fn softmax_draw<R: rand::RngCore>(scores: &[f64], temperature: f64, rng: &mut R) -> usize {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores
        .iter()
        .map(|&s| ((s - max) / temperature).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(k: usize) -> Vec<(NodeId, f64)> {
        (0..k).map(|i| (NodeId::new(i as u32), 1.0)).collect()
    }

    #[test]
    fn idle_cases() {
        let mut r = Router::new(RouterConfig::default());
        assert_eq!(r.route(0, &nodes(3), &[0.0; 3]), RouteOutcome::idle());
        assert_eq!(r.route(100, &[], &[]), RouteOutcome::idle());
    }

    #[test]
    fn zero_temperature_with_no_warmth_balances_to_capacity() {
        let mut r = Router::new(RouterConfig::default());
        let out = r.route(1_000_000, &nodes(4), &[0.0; 4]);
        for &(_, s) in &out.shares {
            assert!((s - 0.25).abs() <= 1.0 / 128.0, "share {s}");
        }
        assert_eq!(out.discount, 1.0);
        assert_eq!(out.warm_hit, 0.0);
        let total: f64 = out.shares.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warm_instances_attract_traffic() {
        let cfg = RouterConfig {
            warm_gain: 0.8,
            load_penalty: 0.5,
            ..RouterConfig::default()
        };
        let mut r = Router::new(cfg);
        let out = r.route(1_000_000, &nodes(3), &[0.9, 0.1, 0.1]);
        assert!(out.shares[0].1 > out.shares[1].1);
        assert!(out.warm_hit > 0.3);
        assert!(out.discount < 1.0);
    }

    #[test]
    fn uniform_policy_round_robins() {
        let cfg = RouterConfig {
            uniform: true,
            chunks: 128,
            ..RouterConfig::default()
        };
        let mut r = Router::new(cfg);
        // Warmth must not matter.
        let out = r.route(1_000_000, &nodes(4), &[1.0, 0.0, 0.0, 0.0]);
        for &(_, s) in &out.shares {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn ties_break_to_lowest_id() {
        // Equal scores, one chunk: lowest node id wins.
        let mut r = Router::new(RouterConfig {
            chunks: 1,
            ..RouterConfig::default()
        });
        let out = r.route(1000, &nodes(3), &[0.4; 3]);
        assert_eq!(
            out.shares,
            vec![
                (NodeId::new(0), 1.0),
                (NodeId::new(1), 0.0),
                (NodeId::new(2), 0.0),
            ]
        );
        // No load penalty: everything rides the single warmest (ties:
        // lowest id again).
        let mut r = Router::new(RouterConfig {
            load_penalty: 0.0,
            ..RouterConfig::default()
        });
        let out = r.route(1000, &nodes(3), &[0.2, 0.9, 0.9]);
        assert_eq!(out.shares[1], (NodeId::new(1), 1.0));
        assert_eq!(out.warm_hit, 0.9);
    }

    #[test]
    fn softmax_runs_are_reproducible_per_seed() {
        let cfg = RouterConfig {
            temperature: 0.7,
            seed: 99,
            ..RouterConfig::default()
        };
        let mut a = Router::new(cfg);
        let mut b = Router::new(cfg);
        let w = [0.5, 0.2, 0.0];
        for _ in 0..5 {
            assert_eq!(
                a.route(10_000, &nodes(3), &w),
                b.route(10_000, &nodes(3), &w)
            );
        }
    }
}
