//! # slaq-placement — the Application Placement Controller
//!
//! The optimizer at the heart of the paper's system (the "APC" of the
//! authors' middleware, algorithmically the NOMS'08 placement heuristic
//! extended with long-running jobs). Every control cycle it receives:
//!
//! * per-entity **CPU targets** from the utility equalizer — how much CPU
//!   each transactional application and each job *should* get;
//! * node capacities (CPU MHz, memory MB) and the **previous placement**.
//!
//! and produces a placement that realizes those targets as closely as the
//! discrete constraints allow:
//!
//! * transactional applications are **fluid but clustered** — they may
//!   have at most one instance per node, each instance carries a memory
//!   footprint, and the cluster-wide allocation is the sum of per-node
//!   slices;
//! * jobs are **indivisible** — exactly one node, a memory footprint
//!   (three jobs per node in the paper's testbed), and an allocation
//!   capped by the job's maximum speed;
//! * **churn is bounded** — placements are sticky, and the number of
//!   disruptive actions per cycle (job starts/resumes/migrations/
//!   suspensions, instance starts/stops) can be capped.
//!
//! The allocation subproblem for a *fixed* placement is solved exactly as
//! a max-flow (`allocation` module, on top of `slaq-flow`); the discrete
//! placement search is the greedy-with-improvement heuristic in `solver`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod allocation;
pub mod placement;
pub mod problem;
#[doc(hidden)]
pub mod reference;
pub mod solver;

pub use allocation::{allocate, Allocator};
pub use placement::{Placement, PlacementChange};
pub use problem::{AppRequest, JobRequest, NodeCapacity, PlacementConfig, PlacementProblem};
pub use solver::{solve, PlacementOutcome, Solver};
