//! The scenario-corpus CI gate: every named preset must round-trip
//! through serde JSON unchanged, reproduce its pinned workload stream
//! bit-identically, and survive a brief end-to-end run — so spec drift
//! (a renamed field, a reordered variant, a changed generator draw)
//! fails loudly instead of silently shifting the regression corpus.

use slaq::core::spec::ScenarioSpec;

/// Golden pins per preset: (name, generated job count, first submission
/// instant, first job name). The instants are exact ChaCha12 draws —
/// any change to seeding, stream order, or schedule handling shows up
/// here as a bit-level diff.
const GOLDEN: &[(&str, usize, f64, &str)] = &[
    ("paper", 238, 223.83663736626536, "batch-0"),
    ("paper-small", 60, 206.61843449193728, "batch-0"),
    ("hetero-pool", 98, 189.40023161760917, "batch-0"),
    ("diurnal", 70, 258.27304311492156, "batch-0"),
    ("bursty-batch", 96, 94.70011580880458, "burst-0"),
    (
        "differentiation-mix",
        70,
        180.79113018044512,
        "gold-short-0",
    ),
    ("consolidation", 90, 206.61843449193728, "batch-0"),
    ("request-routing", 70, 206.61843449193728, "batch-0"),
    ("flash-crowd", 70, 206.61843449193728, "batch-0"),
    ("zone-storm", 80, 206.61843449193728, "batch-0"),
    ("node-flap", 90, 206.61843449193728, "batch-0"),
    ("antagonist-flood", 80, 258.27304311492156, "batch-0"),
];

#[test]
fn corpus_and_golden_table_cover_the_same_presets() {
    let names: Vec<&str> = GOLDEN.iter().map(|&(n, ..)| n).collect();
    assert_eq!(names, ScenarioSpec::preset_names());
}

#[test]
fn every_preset_round_trips_through_json_unchanged() {
    for spec in ScenarioSpec::corpus() {
        let json = spec.to_json().expect("serialize");
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", spec.name));
        assert_eq!(back, spec, "{} drifted through JSON", spec.name);
        // And the re-parsed spec still validates and serializes to the
        // same text (fixed-point, not just equality).
        back.validate().expect("round-tripped spec stays valid");
        assert_eq!(back.to_json().unwrap(), json);
    }
}

#[test]
fn every_preset_reproduces_its_pinned_workload() {
    for &(name, count, first_secs, first_name) in GOLDEN {
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let scenario = spec.materialize().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(scenario.jobs.len(), count, "{name}: job count drifted");
        let (t, job) = &scenario.jobs[0];
        // Exact equality on purpose: these are deterministic seeded
        // draws, and approximate matches would hide generator changes.
        assert_eq!(t.as_secs(), first_secs, "{name}: first arrival drifted");
        assert_eq!(job.name, first_name, "{name}: first job name drifted");
        // Twice-materialized must be bit-identical.
        let again = spec.materialize().unwrap();
        assert_eq!(scenario.jobs.len(), again.jobs.len());
        for (a, b) in scenario.jobs.iter().zip(&again.jobs) {
            assert_eq!(a.0, b.0, "{name}: submission instants drifted");
            assert_eq!(a.1.name, b.1.name);
        }
    }
}

#[test]
fn every_preset_runs_one_control_cycle_end_to_end() {
    for name in ScenarioSpec::preset_names() {
        // Specs are data: cap the horizon to a single control cycle and
        // run the full generation → placement → measurement path.
        let mut spec = ScenarioSpec::preset(name).expect("named preset");
        spec.timing.horizon_secs = spec.timing.control_period_secs;
        let report = spec.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.cycles >= 1, "{name}: no control cycle ran");
        assert!(
            !report.metrics.names().is_empty(),
            "{name}: no series recorded"
        );
    }
}

#[test]
fn importance_map_matches_the_simulators_actual_job_ids() {
    // `ScenarioSpec::materialize` predicts dense job ids by replicating
    // the simulator's arrival ordering. This pins the two against each
    // other through the *authoritative* path: run the simulator, then
    // check that exactly the gold-tier jobs (by name) carry weights.
    use slaq::prelude::EntityId;
    let spec = ScenarioSpec::preset("differentiation-mix").expect("named preset");
    let scenario = spec.materialize().expect("valid preset");
    let mut sim = scenario.build().expect("builds");
    let mut controller = scenario.controller();
    sim.run(controller.as_mut()).expect("runs");
    let mut weighted = 0usize;
    for job in sim.jobs().jobs() {
        let has_weight = scenario
            .controller
            .importance
            .contains_key(&EntityId::Job(job.id));
        assert_eq!(
            has_weight,
            job.spec.name.starts_with("gold-short"),
            "importance drifted from the simulator's id assignment at {} ({})",
            job.id,
            job.spec.name
        );
        weighted += usize::from(has_weight);
    }
    assert!(weighted > 0, "preset must exercise the gold tier");
    assert_eq!(weighted, scenario.controller.importance.len());
}

#[test]
fn external_scenarios_dir_specs_round_trip_and_run() {
    // Users pin their own fleet specs under `scenarios/*.json`; the gate
    // globs the directory so a stale spec (field rename, variant
    // reorder) fails CI instead of silently rotting. Absent directory =
    // nothing pinned = pass.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "scenarios/ exists but holds no *.json specs"
    );
    for path in paths {
        let label = path.display().to_string();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{label}: {e}"));
        let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{label}: parse: {e}"));
        spec.validate()
            .unwrap_or_else(|e| panic!("{label}: validate: {e}"));
        // Round-trip fixed point, same as the built-in corpus.
        let json = spec.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, spec, "{label} drifted through JSON");
        // And one control cycle end to end (specs are data: the horizon
        // cap is a field write).
        let mut brief = spec.clone();
        brief.timing.horizon_secs = brief.timing.control_period_secs;
        let report = brief.run().unwrap_or_else(|e| panic!("{label}: run: {e}"));
        assert!(report.cycles >= 1, "{label}: no control cycle ran");
    }
}

#[test]
fn spec_errors_name_their_section_for_file_authors() {
    // A file author who fat-fingers a field gets pointed at it.
    let mut spec = ScenarioSpec::preset("paper-small").unwrap();
    spec.timing.control_period_secs = -600.0;
    let e = spec.run().unwrap_err();
    assert!(e.to_string().contains("timing"), "{e}");

    let garbled = "{\"name\": \"x\", \"seed\": []}";
    let e = ScenarioSpec::from_json(garbled).unwrap_err();
    assert!(e.to_string().contains("scenario spec"), "{e}");
}
