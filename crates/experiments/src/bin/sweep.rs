//! E4: placement-solver scalability grid and workload-seed robustness.
//!
//! ```text
//! cargo run --release -p slaq-experiments --bin sweep
//! ```

use slaq_core::scenario::PaperParams;
use slaq_core::{PipelineSpec, RoutingSpec};
use slaq_experiments::sweeps::{
    corpus_sweep, format_corpus, format_routing, format_scalability, format_staleness,
    placement_scalability, routing_sweep, seed_sweep, staleness_sweep,
};

fn main() {
    println!("scenario corpus (each preset, first 12 control cycles):\n");
    let corpus = corpus_sweep(Some(12)).expect("corpus presets must run");
    println!("{}", format_corpus(&corpus));

    println!("control-plane staleness (corpus × pipeline mode, 12 cycles):\n");
    let modes = [
        PipelineSpec::Sync,
        PipelineSpec::overlap(1),
        PipelineSpec::overlap(2),
    ];
    let staleness = staleness_sweep(&modes, Some(12)).expect("staleness sweep must run");
    println!("{}", format_staleness(&staleness));

    println!("request routing policies (request-routing preset, full horizon):\n");
    let policies = [
        RoutingSpec::Off,
        RoutingSpec::Uniform {
            warm_gain: 0.5,
            warm_alpha: 0.5,
        },
        RoutingSpec::Affinity {
            temperature: 0.0,
            warm_gain: 0.5,
            warm_alpha: 0.5,
            load_penalty: 0.4,
            placement_bias: 600.0,
        },
    ];
    let routing =
        routing_sweep("request-routing", &policies, None).expect("routing sweep must run");
    println!("{}", format_routing(&routing));

    println!("placement solver scalability (cold placement, jobs-heavy mix):\n");
    let grid: Vec<(u32, u32)> = vec![(10, 30), (25, 120), (50, 300), (100, 600), (200, 1200)];
    let cells = placement_scalability(&grid, 1);
    println!("{}", format_scalability(&cells));

    println!("shape robustness across workload seeds (small paper variant):\n");
    let outcomes = seed_sweep(&PaperParams::small(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    println!("seed   crossover(s)   eq-gap    completed");
    for o in &outcomes {
        println!(
            "{:<6} {:<14} {:<9} {}",
            o.seed,
            o.crossover_secs
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "never".into()),
            o.equalization_gap
                .map(|g| format!("{g:.3}"))
                .unwrap_or_else(|| "-".into()),
            o.completed
        );
    }
    let crossed = outcomes
        .iter()
        .filter(|o| o.crossover_secs.is_some())
        .count();
    println!(
        "\n{}/{} seeds show the crossover→equalization shape",
        crossed,
        outcomes.len()
    );

    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write(
        "out/sweep.json",
        serde_json::to_string_pretty(&(corpus, staleness, routing, cells, outcomes))
            .expect("serialize"),
    )
    .expect("write out/sweep.json");
    println!("wrote out/sweep.json");
}
