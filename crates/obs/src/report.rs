//! Export formats for a [`Recorder`]'s registry: a human-readable
//! run-report table, Chrome trace-event JSON, and a Prometheus-style
//! text dump.

use crate::audit::audit_summary;
use crate::hist::Histogram;
use crate::recorder::{fmt_f64, Recorder};

/// Render the per-run phase breakdown: one row per span (sorted by
/// total time, descending) with count, total, self-time, and the
/// p50/p95/max of per-completion durations, followed by counters and
/// value histograms. Returns a placeholder line when the recorder is
/// off or empty.
pub fn run_report(rec: &Recorder) -> String {
    let Some(out) = rec.with_registry(|reg| {
        let mut rows: Vec<(String, crate::recorder::SpanStats)> = Vec::new();
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut hists: Vec<(String, Histogram)> = Vec::new();
        for name in reg_names(reg) {
            if let Some(st) = span_of(reg, &name) {
                rows.push((name.clone(), st));
            }
            let c = counter_of(reg, &name);
            if c > 0 {
                counters.push((name.clone(), c));
            }
            if let Some(h) = hist_of(reg, &name) {
                hists.push((name, h));
            }
        }
        rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(&b.0)));

        let mut s = String::new();
        s.push_str("== run report ==\n");
        if rows.is_empty()
            && counters.is_empty()
            && hists.is_empty()
            && reg.slos.is_empty()
            && reg.audit.is_empty()
        {
            s.push_str("(no samples recorded)\n");
            return s;
        }
        if !rows.is_empty() {
            s.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>12} {:>9} {:>9} {:>9}\n",
                "span", "count", "total(ms)", "self(ms)", "p50(us)", "p95(us)", "max(us)"
            ));
            for (name, st) in &rows {
                s.push_str(&format!(
                    "{:<28} {:>8} {:>12.3} {:>12.3} {:>9} {:>9} {:>9}\n",
                    name,
                    st.count,
                    st.total_us as f64 / 1e3,
                    st.self_us as f64 / 1e3,
                    st.hist.p50(),
                    st.hist.p95(),
                    st.max_us
                ));
            }
        }
        if !counters.is_empty() {
            s.push_str("\ncounters:\n");
            for (name, v) in &counters {
                s.push_str(&format!("  {name:<34} {v}\n"));
            }
        }
        if !hists.is_empty() {
            s.push_str("\nhistograms:\n");
            s.push_str(&format!(
                "  {:<28} {:>8} {:>10} {:>9} {:>9} {:>9}\n",
                "name", "count", "mean", "p50", "p95", "max"
            ));
            for (name, h) in &hists {
                s.push_str(&format!(
                    "  {:<28} {:>8} {:>10.1} {:>9} {:>9} {:>9}\n",
                    name,
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.max()
                ));
            }
        }
        if !reg.slos.is_empty() {
            s.push_str("\nper-app SLO compliance:\n");
            s.push_str(&format!(
                "  {:<16} {:>7} {:>7} {:>11} {:>6} {:>7} {:>12}  {}\n",
                "app",
                "cycles",
                "viol",
                "compliance",
                "burn",
                "worstW",
                "deficit(MHz)",
                "attribution (outage/route/stale/budget/overcommit/capacity MHz)"
            ));
            for (name, t) in &reg.slos {
                let a = t.attribution();
                s.push_str(&format!(
                    "  {:<16} {:>7} {:>7} {:>10.1}% {:>6.2} {:>7} {:>12.1}  {:.1}/{:.1}/{:.1}/{:.1}/{:.1}/{:.1}\n",
                    name,
                    t.cycles(),
                    t.violations(),
                    t.compliance() * 100.0,
                    t.burn_rate(),
                    t.worst_window(),
                    t.total_deficit_mhz(),
                    a.outage_mhz,
                    a.routing_mhz,
                    a.staleness_mhz,
                    a.budget_mhz,
                    a.overcommit_mhz,
                    a.capacity_mhz,
                ));
            }
        }
        if !reg.audit.is_empty() || reg.audit_dropped > 0 {
            s.push_str(&format!(
                "\naudit log: {} decisions ({} dropped)\n",
                reg.audit.len(),
                reg.audit_dropped
            ));
            s.push_str(&format!(
                "  {:<22} {:<22} {:>8}\n",
                "step", "reason", "count"
            ));
            for (step, reason, count) in audit_summary(&reg.audit) {
                s.push_str(&format!("  {step:<22} {reason:<22} {count:>8}\n"));
            }
        }
        s
    }) else {
        return "== run report ==\n(observability disabled)\n".to_string();
    };
    out
}

/// Render the buffered trace events as Chrome trace-event JSON
/// (`{"traceEvents": […]}`) — loadable in `chrome://tracing` or
/// Perfetto. Complete spans use phase `"X"` (ts + dur); instant events
/// from [`Recorder::emit`] use phase `"i"` with their fields as
/// `args`. Returns an empty trace when the recorder is off.
pub fn chrome_trace_json(rec: &Recorder) -> String {
    let Some(out) = rec.with_registry(|reg| {
        let mut s = String::from("{\"traceEvents\":[");
        for (i, ev) in reg.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":\"");
            escape_json_into(reg.name(ev.key), &mut s);
            s.push_str("\",\"ph\":\"");
            s.push_str(if ev.dur_us.is_some() { "X" } else { "i" });
            s.push_str("\",\"ts\":");
            s.push_str(&ev.ts_us.to_string());
            if let Some(dur) = ev.dur_us {
                s.push_str(",\"dur\":");
                s.push_str(&dur.to_string());
            } else {
                s.push_str(",\"s\":\"t\"");
            }
            s.push_str(",\"pid\":1,\"tid\":");
            s.push_str(&ev.tid.to_string());
            if let Some(args) = &ev.args {
                s.push_str(",\"args\":");
                s.push_str(args);
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }) else {
        return "{\"traceEvents\":[]}".to_string();
    };
    out
}

/// Render counters and histograms (including span-duration histograms,
/// suffixed `_us`) in the Prometheus text exposition format. Names are
/// sanitized (`.` and other non-identifier characters become `_`).
pub fn prometheus_text(rec: &Recorder) -> String {
    let Some(out) = rec.with_registry(|reg| {
        let mut s = String::new();
        for name in reg_names(reg) {
            let metric = sanitize(&name);
            let c = counter_of(reg, &name);
            if c > 0 {
                s.push_str(&format!("# TYPE {metric} counter\n{metric} {c}\n"));
            }
            if let Some(h) = hist_of(reg, &name) {
                push_prom_hist(&mut s, &metric, &h);
            }
            if let Some(st) = span_of(reg, &name) {
                push_prom_hist(&mut s, &format!("{metric}_us"), &st.hist);
            }
        }
        s
    }) else {
        return String::new();
    };
    out
}

fn push_prom_hist(s: &mut String, metric: &str, h: &Histogram) {
    s.push_str(&format!("# TYPE {metric} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let le = if i >= crate::hist::BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            fmt_f64((Histogram::bucket_upper(i) - 1) as f64)
        };
        s.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    s.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    s.push_str(&format!("{metric}_sum {}\n", h.sum()));
    s.push_str(&format!("{metric}_count {}\n", h.count()));
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape_json_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

// Small registry accessors kept here so `Registry` internals stay
// private to the crate.
use crate::recorder::Registry;

fn reg_names(reg: &Registry) -> Vec<String> {
    reg.sorted_names()
}

fn span_of(reg: &Registry, name: &str) -> Option<crate::recorder::SpanStats> {
    reg.span_by_name(name)
}

fn counter_of(reg: &Registry, name: &str) -> u64 {
    reg.counter_by_name(name)
}

fn hist_of(reg: &Registry, name: &str) -> Option<Histogram> {
    reg.hist_by_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_spans_counters_hists() {
        let r = Recorder::enabled();
        let s = r.key("solve");
        {
            let _g = r.span(s);
        }
        r.count(r.key("hits"), 3);
        r.observe(r.key("dirty"), 8);
        let report = run_report(&r);
        assert!(report.contains("solve"));
        assert!(report.contains("hits"));
        assert!(report.contains("dirty"));
        assert!(report.contains("p95(us)"));
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let r = Recorder::enabled();
        let k = r.key("cycle");
        {
            let _g = r.span(k);
        }
        r.emit(r.key("tick"), &[("now", 1.0)]);
        let json = chrome_trace_json(&r);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"cycle\""));
    }

    #[test]
    fn off_recorder_exports_empty() {
        let r = Recorder::off();
        assert_eq!(chrome_trace_json(&r), "{\"traceEvents\":[]}");
        assert!(run_report(&r).contains("disabled"));
        assert!(prometheus_text(&r).is_empty());
    }

    #[test]
    fn prometheus_dump_has_buckets() {
        let r = Recorder::enabled();
        r.observe(r.key("delta.dirty"), 4);
        r.observe(r.key("delta.dirty"), 4);
        r.count(r.key("delta.hits"), 7);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE delta_dirty histogram"));
        assert!(text.contains("delta_dirty_count 2"));
        assert!(text.contains("delta_dirty_sum 8"));
        assert!(text.contains("delta_hits 7"));
        assert!(text.contains("le=\"+Inf\""));
    }
}
