//! The placement data structure: which instances and jobs sit on which
//! nodes with what CPU allocation, plus change derivation and validation.

use crate::problem::{AppRequest, JobRequest, NodeCapacity};
use serde::{Deserialize, Serialize};
use slaq_types::{AppId, CpuMhz, JobId, MemMb, NodeId, SlaqError};
use std::collections::BTreeMap;

/// A complete placement: transactional instances with per-node CPU slices
/// and job assignments with allocations.
///
/// `BTreeMap`s keep iteration deterministic, which makes the solver
/// reproducible run-to-run (important for the experiments).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Placement {
    /// `apps[a][n]` = CPU slice of application `a` on node `n`. Presence
    /// of the key means an instance exists there (possibly with a zero
    /// slice, e.g. a warm min-instance).
    pub apps: BTreeMap<AppId, BTreeMap<NodeId, CpuMhz>>,
    /// `jobs[j]` = node and allocation of a *running* job. Jobs absent
    /// from the map are pending or suspended.
    pub jobs: BTreeMap<JobId, (NodeId, CpuMhz)>,
}

/// One disruptive action needed to move from one placement to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementChange {
    /// Start an application instance on a node.
    StartInstance {
        /// Application.
        app: AppId,
        /// Target node.
        node: NodeId,
    },
    /// Stop an application instance.
    StopInstance {
        /// Application.
        app: AppId,
        /// Node losing the instance.
        node: NodeId,
    },
    /// Start (or resume) a job on a node.
    StartJob {
        /// Job.
        job: JobId,
        /// Target node.
        node: NodeId,
    },
    /// Suspend a running job.
    SuspendJob {
        /// Job.
        job: JobId,
        /// Node it was running on.
        node: NodeId,
    },
    /// Move a running job between nodes.
    MigrateJob {
        /// Job.
        job: JobId,
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
}

impl PlacementChange {
    /// Lower this change to the audit log's
    /// `(subject, from, to)` triple — raw ids, `None` for the missing
    /// side of starts/stops. Used by every layer that tags committed
    /// changes into the [`slaq_obs::Recorder`] audit ring.
    pub fn audit_parts(&self) -> (slaq_obs::AuditSubject, Option<u32>, Option<u32>) {
        use slaq_obs::AuditSubject;
        match *self {
            PlacementChange::StartInstance { app, node } => {
                (AuditSubject::App(app.raw()), None, Some(node.raw()))
            }
            PlacementChange::StopInstance { app, node } => {
                (AuditSubject::App(app.raw()), Some(node.raw()), None)
            }
            PlacementChange::StartJob { job, node } => {
                (AuditSubject::Job(job.raw()), None, Some(node.raw()))
            }
            PlacementChange::SuspendJob { job, node } => {
                (AuditSubject::Job(job.raw()), Some(node.raw()), None)
            }
            PlacementChange::MigrateJob { job, from, to } => (
                AuditSubject::Job(job.raw()),
                Some(from.raw()),
                Some(to.raw()),
            ),
        }
    }
}

impl Placement {
    /// Empty placement (cold cluster).
    pub fn empty() -> Self {
        Placement::default()
    }

    /// Cluster-wide CPU granted to an application.
    pub fn app_alloc(&self, app: AppId) -> CpuMhz {
        self.apps
            .get(&app)
            .map(|m| m.values().copied().sum())
            .unwrap_or(CpuMhz::ZERO)
    }

    /// Number of instances an application currently has.
    pub fn app_instances(&self, app: AppId) -> usize {
        self.apps.get(&app).map_or(0, BTreeMap::len)
    }

    /// CPU granted to a job (zero when not running).
    pub fn job_alloc(&self, job: JobId) -> CpuMhz {
        self.jobs.get(&job).map(|&(_, c)| c).unwrap_or(CpuMhz::ZERO)
    }

    /// Node a job runs on, if placed.
    pub fn job_node(&self, job: JobId) -> Option<NodeId> {
        self.jobs.get(&job).map(|&(n, _)| n)
    }

    /// Total CPU handed to jobs.
    pub fn total_job_alloc(&self) -> CpuMhz {
        self.jobs.values().map(|&(_, c)| c).sum()
    }

    /// Total CPU handed to transactional applications.
    pub fn total_app_alloc(&self) -> CpuMhz {
        self.apps.values().flat_map(|m| m.values()).copied().sum()
    }

    /// CPU committed on one node (instances + jobs).
    pub fn node_cpu_used(&self, node: NodeId) -> CpuMhz {
        let apps: CpuMhz = self
            .apps
            .values()
            .filter_map(|m| m.get(&node))
            .copied()
            .sum();
        let jobs: CpuMhz = self
            .jobs
            .values()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, c)| c)
            .sum();
        apps + jobs
    }

    /// Jobs running on one node.
    pub fn jobs_on(&self, node: NodeId) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|&(_, &(n, _))| n == node)
            .map(|(&j, _)| j)
            .collect()
    }

    /// Check every capacity and structural constraint against the
    /// problem's nodes and footprints. Used by tests and by the simulator
    /// before enacting a plan.
    pub fn validate(
        &self,
        nodes: &[NodeCapacity],
        apps: &[AppRequest],
        jobs: &[JobRequest],
    ) -> Result<(), SlaqError> {
        let node_of = |id: NodeId| -> Result<&NodeCapacity, SlaqError> {
            nodes
                .iter()
                .find(|n| n.id == id)
                .ok_or(SlaqError::UnknownNode(id))
        };
        let app_req = |id: AppId| apps.iter().find(|a| a.id == id);
        let job_req = |id: JobId| jobs.iter().find(|j| j.id == id);

        // Per-node accumulation.
        let mut cpu_used: BTreeMap<NodeId, CpuMhz> = BTreeMap::new();
        let mut mem_used: BTreeMap<NodeId, MemMb> = BTreeMap::new();

        for (&app, slices) in &self.apps {
            let req = app_req(app).ok_or(SlaqError::UnknownApp(app))?;
            if slices.len() > req.max_instances as usize {
                return Err(SlaqError::InvalidSpec(format!(
                    "{app} has {} instances, max {}",
                    slices.len(),
                    req.max_instances
                )));
            }
            for (&node, &cpu) in slices {
                node_of(node)?;
                if cpu.as_f64() < -1e-9 {
                    return Err(SlaqError::InvalidSpec(format!(
                        "negative slice for {app} on {node}"
                    )));
                }
                *cpu_used.entry(node).or_insert(CpuMhz::ZERO) += cpu;
                *mem_used.entry(node).or_insert(MemMb::ZERO) += req.mem_per_instance;
            }
        }
        for (&job, &(node, cpu)) in &self.jobs {
            let req = job_req(job).ok_or(SlaqError::UnknownJob(job))?;
            node_of(node)?;
            if cpu.as_f64() < -1e-9 {
                return Err(SlaqError::InvalidSpec(format!("negative alloc for {job}")));
            }
            *cpu_used.entry(node).or_insert(CpuMhz::ZERO) += cpu;
            *mem_used.entry(node).or_insert(MemMb::ZERO) += req.mem;
        }

        for node in nodes {
            if let Some(&cpu) = cpu_used.get(&node.id) {
                if cpu.as_f64() > node.cpu.as_f64() + 1e-6 {
                    return Err(SlaqError::CapacityViolation {
                        node: node.id,
                        detail: format!("cpu {cpu} > {}", node.cpu),
                    });
                }
            }
            if let Some(&mem) = mem_used.get(&node.id) {
                if !node.mem.fits(mem) {
                    return Err(SlaqError::CapacityViolation {
                        node: node.id,
                        detail: format!("memory {mem} > {}", node.mem),
                    });
                }
            }
        }
        Ok(())
    }

    /// Derive the disruptive actions that transform `prev` into `self`.
    ///
    /// Allocation-only adjustments (same instance/node, different CPU) are
    /// free — hypervisor share changes, not placement churn.
    pub fn diff(&self, prev: &Placement) -> Vec<PlacementChange> {
        let mut changes = Vec::new();
        // Instances.
        for (&app, slices) in &self.apps {
            for &node in slices.keys() {
                let existed = prev.apps.get(&app).is_some_and(|m| m.contains_key(&node));
                if !existed {
                    changes.push(PlacementChange::StartInstance { app, node });
                }
            }
        }
        for (&app, slices) in &prev.apps {
            for &node in slices.keys() {
                let kept = self.apps.get(&app).is_some_and(|m| m.contains_key(&node));
                if !kept {
                    changes.push(PlacementChange::StopInstance { app, node });
                }
            }
        }
        // Jobs: both maps iterate id-sorted, so one lockstep merge
        // replaces the 2·J point lookups a naive double scan would pay —
        // the diff is a hot-path cost on every control cycle. Suspends
        // are buffered so the output order (starts/migrations in new-map
        // order, then suspends in old-map order) matches the lookup
        // formulation exactly.
        let mut suspends = Vec::new();
        let mut new_it = self.jobs.iter().peekable();
        let mut old_it = prev.jobs.iter().peekable();
        loop {
            match (new_it.peek(), old_it.peek()) {
                (Some(&(&job, &(node, _))), None) => {
                    changes.push(PlacementChange::StartJob { job, node });
                    new_it.next();
                }
                (None, Some(&(&job, &(node, _)))) => {
                    suspends.push(PlacementChange::SuspendJob { job, node });
                    old_it.next();
                }
                (Some(&(&job, &(node, _))), Some(&(&old_job, &(old_node, _)))) => {
                    match job.cmp(&old_job) {
                        std::cmp::Ordering::Less => {
                            changes.push(PlacementChange::StartJob { job, node });
                            new_it.next();
                        }
                        std::cmp::Ordering::Greater => {
                            suspends.push(PlacementChange::SuspendJob {
                                job: old_job,
                                node: old_node,
                            });
                            old_it.next();
                        }
                        std::cmp::Ordering::Equal => {
                            if node != old_node {
                                changes.push(PlacementChange::MigrateJob {
                                    job,
                                    from: old_node,
                                    to: node,
                                });
                            }
                            new_it.next();
                            old_it.next();
                        }
                    }
                }
                (None, None) => break,
            }
        }
        changes.extend(suspends);
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PlacementConfig;

    fn nodes(n: u32) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity {
                id: NodeId::new(i),
                cpu: CpuMhz::new(12_000.0),
                mem: MemMb::new(4096),
            })
            .collect()
    }

    fn app_req(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 1,
            max_instances: 10,
            affinity: Vec::new(),
        }
    }

    fn job_req(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    fn place(app_slices: &[(u32, u32, f64)], job_slots: &[(u32, u32, f64)]) -> Placement {
        let mut p = Placement::empty();
        for &(a, n, c) in app_slices {
            p.apps
                .entry(AppId::new(a))
                .or_default()
                .insert(NodeId::new(n), CpuMhz::new(c));
        }
        for &(j, n, c) in job_slots {
            p.jobs
                .insert(JobId::new(j), (NodeId::new(n), CpuMhz::new(c)));
        }
        p
    }

    #[test]
    fn accessors_aggregate_correctly() {
        let p = place(
            &[(0, 0, 4000.0), (0, 1, 2000.0), (1, 1, 1000.0)],
            &[(0, 0, 3000.0), (1, 1, 3000.0)],
        );
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(6000.0));
        assert_eq!(p.app_instances(AppId::new(0)), 2);
        assert_eq!(p.app_alloc(AppId::new(9)), CpuMhz::ZERO);
        assert_eq!(p.job_alloc(JobId::new(1)), CpuMhz::new(3000.0));
        assert_eq!(p.job_node(JobId::new(0)), Some(NodeId::new(0)));
        assert_eq!(p.job_node(JobId::new(7)), None);
        assert_eq!(p.total_job_alloc(), CpuMhz::new(6000.0));
        assert_eq!(p.total_app_alloc(), CpuMhz::new(7000.0));
        assert_eq!(p.node_cpu_used(NodeId::new(1)), CpuMhz::new(6000.0));
        assert_eq!(p.jobs_on(NodeId::new(0)), vec![JobId::new(0)]);
    }

    #[test]
    fn validate_accepts_a_legal_placement() {
        let p = place(&[(0, 0, 4000.0)], &[(0, 0, 3000.0), (1, 0, 3000.0)]);
        let apps = vec![app_req(0, 4000.0)];
        let jobs = vec![job_req(0, 3000.0), job_req(1, 3000.0)];
        p.validate(&nodes(1), &apps, &jobs).unwrap();
    }

    #[test]
    fn validate_rejects_cpu_overcommit() {
        let p = place(&[(0, 0, 10_000.0)], &[(0, 0, 3000.0)]);
        let err = p
            .validate(&nodes(1), &[app_req(0, 10_000.0)], &[job_req(0, 3000.0)])
            .unwrap_err();
        assert!(matches!(err, SlaqError::CapacityViolation { .. }), "{err}");
    }

    #[test]
    fn validate_rejects_memory_overcommit() {
        // 3 jobs fit (3840 MB), a 4th (5120 MB) does not.
        let p = place(
            &[],
            &[(0, 0, 100.0), (1, 0, 100.0), (2, 0, 100.0), (3, 0, 100.0)],
        );
        let jobs: Vec<JobRequest> = (0..4).map(|i| job_req(i, 100.0)).collect();
        let err = p.validate(&nodes(1), &[], &jobs).unwrap_err();
        assert!(matches!(err, SlaqError::CapacityViolation { .. }));
    }

    #[test]
    fn validate_rejects_unknown_entities() {
        let p = place(&[(0, 0, 1.0)], &[]);
        assert!(matches!(
            p.validate(&nodes(1), &[], &[]),
            Err(SlaqError::UnknownApp(_))
        ));
        let p = place(&[], &[(0, 5, 1.0)]);
        assert!(matches!(
            p.validate(&nodes(1), &[], &[job_req(0, 1.0)]),
            Err(SlaqError::UnknownNode(_))
        ));
    }

    #[test]
    fn validate_rejects_instance_count_above_max() {
        let mut req = app_req(0, 100.0);
        req.max_instances = 1;
        let p = place(&[(0, 0, 50.0), (0, 1, 50.0)], &[]);
        assert!(p.validate(&nodes(2), &[req], &[]).is_err());
    }

    #[test]
    fn diff_detects_all_change_kinds() {
        let prev = place(
            &[(0, 0, 1000.0), (0, 1, 1000.0)],
            &[(0, 0, 3000.0), (1, 1, 3000.0), (2, 2, 3000.0)],
        );
        let next = place(
            &[(0, 0, 2000.0), (0, 2, 500.0)], // node1 stopped, node2 started, node0 resized (free)
            &[(0, 0, 2000.0), (1, 2, 3000.0), (3, 1, 1000.0)], // job1 migrated, job2 suspended, job3 started
        );
        let changes = next.diff(&prev);
        assert!(changes.contains(&PlacementChange::StartInstance {
            app: AppId::new(0),
            node: NodeId::new(2)
        }));
        assert!(changes.contains(&PlacementChange::StopInstance {
            app: AppId::new(0),
            node: NodeId::new(1)
        }));
        assert!(changes.contains(&PlacementChange::MigrateJob {
            job: JobId::new(1),
            from: NodeId::new(1),
            to: NodeId::new(2)
        }));
        assert!(changes.contains(&PlacementChange::SuspendJob {
            job: JobId::new(2),
            node: NodeId::new(2)
        }));
        assert!(changes.contains(&PlacementChange::StartJob {
            job: JobId::new(3),
            node: NodeId::new(1)
        }));
        assert_eq!(
            changes.len(),
            5,
            "allocation resize must be free: {changes:?}"
        );
    }

    #[test]
    fn diff_of_identical_placements_is_empty() {
        let p = place(&[(0, 0, 1000.0)], &[(0, 1, 500.0)]);
        assert!(p.diff(&p.clone()).is_empty());
        let _ = PlacementConfig::default(); // silence unused-import lint path
    }
}
