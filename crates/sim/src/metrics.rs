//! Time-series metrics collection and CSV export.

use serde::{Deserialize, Serialize};
use slaq_types::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Named time series accumulated during a run.
///
/// Both the simulator (mechanical facts: allocations, response times,
/// completions) and the controller (model-side quantities: hypothetical
/// utility, demands, water level) write here; the experiment harness reads
/// series out to regenerate the paper's figures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSink {
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `(t, value)` to series `name` (created on first use).
    pub fn record(&mut self, name: &str, t: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((t.as_secs(), value));
    }

    /// Absorb another sink: every series of `other` is appended onto the
    /// series of the same name here (created on first use), points in
    /// `other`'s recorded order. Used by the pipelined control plane to
    /// fold a solve's buffered model-side series into the run's sink at
    /// actuation time; merging completed solves in dispatch order keeps
    /// each series time-sorted.
    pub fn merge(&mut self, other: MetricsSink) {
        for (name, mut pts) in other.series {
            self.series.entry(name).or_default().append(&mut pts);
        }
    }

    /// All points of one series.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Names of all series.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Last value of a series, if any.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series(name).last().map(|&(_, v)| v)
    }

    /// Mean of a series over `[from, to]` (`None` when empty there).
    pub fn mean_over(&self, name: &str, from: SimTime, to: SimTime) -> Option<f64> {
        let pts: Vec<f64> = self
            .series(name)
            .iter()
            .filter(|&&(t, _)| t >= from.as_secs() && t <= to.as_secs())
            .map(|&(_, v)| v)
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().sum::<f64>() / pts.len() as f64)
        }
    }

    /// Minimum of a series over its whole span.
    pub fn min(&self, name: &str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .min_by(|a, b| slaq_types::fcmp(*a, *b))
    }

    /// Maximum of a series over its whole span.
    pub fn max(&self, name: &str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| slaq_types::fcmp(*a, *b))
    }

    /// Render the given series as CSV with a shared time column.
    ///
    /// Series are sampled at the union of their timestamps; a series
    /// without a point at some instant carries its previous value forward
    /// (step interpolation — these are control-cycle samples).
    pub fn to_csv(&self, names: &[&str]) -> String {
        let mut times: Vec<f64> = names
            .iter()
            .flat_map(|n| self.series(n).iter().map(|&(t, _)| t))
            .collect();
        times.sort_by(|a, b| slaq_types::fcmp(*a, *b));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        out.push_str("time");
        for n in names {
            let _ = write!(out, ",{n}");
        }
        out.push('\n');
        let mut cursors = vec![0usize; names.len()];
        let mut last = vec![f64::NAN; names.len()];
        for &t in &times {
            let _ = write!(out, "{t}");
            for (i, n) in names.iter().enumerate() {
                let pts = self.series(n);
                while cursors[i] < pts.len() && pts[cursors[i]].0 <= t + 1e-9 {
                    last[i] = pts[cursors[i]].1;
                    cursors[i] += 1;
                }
                if last[i].is_nan() {
                    out.push(',');
                } else {
                    let _ = write!(out, ",{}", last[i]);
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_read_back() {
        let mut m = MetricsSink::new();
        m.record("u", t(0.0), 0.5);
        m.record("u", t(600.0), 0.7);
        assert_eq!(m.series("u"), &[(0.0, 0.5), (600.0, 0.7)]);
        assert_eq!(m.last("u"), Some(0.7));
        assert_eq!(m.series("missing"), &[] as &[(f64, f64)]);
        assert_eq!(m.names(), vec!["u"]);
    }

    #[test]
    fn merge_appends_series_in_order() {
        let mut a = MetricsSink::new();
        a.record("u", t(0.0), 1.0);
        a.record("only_a", t(0.0), 9.0);
        let mut b = MetricsSink::new();
        b.record("u", t(600.0), 2.0);
        b.record("only_b", t(600.0), 7.0);
        a.merge(b);
        assert_eq!(a.series("u"), &[(0.0, 1.0), (600.0, 2.0)]);
        assert_eq!(a.series("only_a"), &[(0.0, 9.0)]);
        assert_eq!(a.series("only_b"), &[(600.0, 7.0)]);
    }

    #[test]
    fn aggregations() {
        let mut m = MetricsSink::new();
        for (i, v) in [1.0, 3.0, 5.0, 7.0].iter().enumerate() {
            m.record("x", t(i as f64 * 100.0), *v);
        }
        assert_eq!(m.mean_over("x", t(0.0), t(300.0)), Some(4.0));
        assert_eq!(m.mean_over("x", t(100.0), t(200.0)), Some(4.0));
        assert_eq!(m.mean_over("x", t(1000.0), t(2000.0)), None);
        assert_eq!(m.min("x"), Some(1.0));
        assert_eq!(m.max("x"), Some(7.0));
    }

    #[test]
    fn csv_aligns_series_with_step_interpolation() {
        let mut m = MetricsSink::new();
        m.record("a", t(0.0), 1.0);
        m.record("a", t(200.0), 2.0);
        m.record("b", t(100.0), 10.0);
        let csv = m.to_csv(&["a", "b"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "100,1,10");
        assert_eq!(lines[3], "200,2,10");
    }

    #[test]
    fn csv_of_missing_series_is_header_only() {
        let m = MetricsSink::new();
        assert_eq!(m.to_csv(&["nope"]), "time,nope\n");
    }
}
