//! Transactional request-intensity traces λ(t).
//!
//! The paper's experiment applies "a constant transactional workload …
//! throughout"; the other shapes are the generator library used by
//! [`crate`]-level scenario corpora: stepped and diurnal curves, periodic
//! spikes, and sums of any of these for composite demand. Every trace is
//! a pure function of time, so scenarios that reference one are exactly
//! reproducible.

use serde::{Deserialize, Serialize};
use slaq_types::SimTime;

/// A deterministic request-rate trace.
///
/// Traces compose: [`IntensityTrace::Sum`] adds any number of component
/// traces, so "diurnal baseline plus lunchtime spikes" is
/// `Sum { parts: vec![Diurnal {..}, Spiky {..}] }`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntensityTrace {
    /// λ(t) = `rate` for all t.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// Piecewise-constant steps: `(start, rate)` with increasing starts.
    Steps {
        /// Segments in force from their start instant onward.
        steps: Vec<(SimTime, f64)>,
    },
    /// `base + amplitude · sin(2π (t − phase)/period)`, clamped at 0 —
    /// the classic diurnal curve.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Cycle length in seconds.
        period_secs: f64,
        /// Horizontal offset in seconds.
        phase_secs: f64,
    },
    /// Periodic flash crowds: `base` everywhere except during a recurring
    /// spike window of `spike_secs` at the head of every `period_secs`
    /// cycle (offset by `phase_secs`), where the rate is `base + surge`.
    Spiky {
        /// Quiet-phase rate.
        base: f64,
        /// Extra rate during a spike window.
        surge: f64,
        /// Spike recurrence period in seconds.
        period_secs: f64,
        /// Spike duration in seconds (< `period_secs`).
        spike_secs: f64,
        /// Offset of the first spike's start.
        phase_secs: f64,
    },
    /// Pointwise sum of component traces (composition).
    Sum {
        /// The component traces.
        parts: Vec<IntensityTrace>,
    },
    /// `factor · part(t)` — scale a child trace (e.g. reuse one diurnal
    /// shape across apps of different sizes).
    Scale {
        /// Non-negative multiplier.
        factor: f64,
        /// The trace being scaled.
        part: Box<IntensityTrace>,
    },
    /// `part(t)` clamped into `[min, max]` — cap a flash crowd at an
    /// ingress limit or keep a trough above a floor.
    Clamp {
        /// Lower bound (≥ 0).
        min: f64,
        /// Upper bound (≥ `min`).
        max: f64,
        /// The trace being clamped.
        part: Box<IntensityTrace>,
    },
}

impl IntensityTrace {
    /// Constant trace helper.
    pub fn constant(rate: f64) -> Self {
        IntensityTrace::Constant { rate }
    }

    /// Request rate at instant `t` (never negative).
    pub fn lambda(&self, t: SimTime) -> f64 {
        match self {
            IntensityTrace::Constant { rate } => rate.max(0.0),
            IntensityTrace::Steps { steps } => {
                let mut rate = steps.first().map(|&(_, r)| r).unwrap_or(0.0);
                for &(start, r) in steps {
                    if t >= start {
                        rate = r;
                    } else {
                        break;
                    }
                }
                rate.max(0.0)
            }
            IntensityTrace::Diurnal {
                base,
                amplitude,
                period_secs,
                phase_secs,
            } => {
                let x =
                    2.0 * std::f64::consts::PI * (t.as_secs() - phase_secs) / period_secs.max(1e-9);
                (base + amplitude * x.sin()).max(0.0)
            }
            IntensityTrace::Spiky {
                base,
                surge,
                period_secs,
                spike_secs,
                phase_secs,
            } => {
                let pos = (t.as_secs() - phase_secs).rem_euclid(period_secs.max(1e-9));
                let rate = if pos < *spike_secs {
                    base + surge
                } else {
                    *base
                };
                rate.max(0.0)
            }
            IntensityTrace::Sum { parts } => parts.iter().map(|p| p.lambda(t)).sum(),
            IntensityTrace::Scale { factor, part } => (factor * part.lambda(t)).max(0.0),
            IntensityTrace::Clamp { min, max, part } => part.lambda(t).clamp(*min, *max),
        }
    }

    /// Structural sanity of the trace parameters; returns a message
    /// naming the offending field on failure.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            IntensityTrace::Constant { rate } => {
                if !(rate.is_finite() && *rate >= 0.0) {
                    return Err("constant rate must be finite and non-negative".into());
                }
            }
            IntensityTrace::Steps { steps } => {
                if steps.is_empty() {
                    return Err("steps must have at least one segment".into());
                }
                for w in steps.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err("step starts must strictly increase".into());
                    }
                }
                if steps.iter().any(|&(_, r)| !(r.is_finite() && r >= 0.0)) {
                    return Err("step rates must be finite and non-negative".into());
                }
            }
            IntensityTrace::Diurnal {
                base,
                amplitude,
                period_secs,
                phase_secs,
            } => {
                if !(base.is_finite() && amplitude.is_finite() && phase_secs.is_finite()) {
                    return Err("diurnal parameters must be finite".into());
                }
                if !(period_secs.is_finite() && *period_secs > 0.0) {
                    return Err("diurnal period must be positive".into());
                }
            }
            IntensityTrace::Spiky {
                base,
                surge,
                period_secs,
                spike_secs,
                phase_secs,
            } => {
                if !(base.is_finite() && *base >= 0.0 && surge.is_finite() && *surge >= 0.0) {
                    return Err("spiky base and surge must be finite and non-negative".into());
                }
                if !phase_secs.is_finite() {
                    return Err("spike phase must be finite".into());
                }
                if !(period_secs.is_finite() && *period_secs > 0.0) {
                    return Err("spike period must be positive".into());
                }
                if !(*spike_secs >= 0.0 && spike_secs <= period_secs) {
                    return Err("spike duration must lie within the period".into());
                }
            }
            IntensityTrace::Sum { parts } => {
                for p in parts {
                    p.validate()?;
                }
            }
            IntensityTrace::Scale { factor, part } => {
                if !(factor.is_finite() && *factor >= 0.0) {
                    return Err("scale factor must be finite and non-negative".into());
                }
                part.validate()?;
            }
            IntensityTrace::Clamp { min, max, part } => {
                if !(min.is_finite() && *min >= 0.0) {
                    return Err("clamp min must be finite and non-negative".into());
                }
                if !(max.is_finite() && max >= min) {
                    return Err("clamp max must be finite and at least the min".into());
                }
                part.validate()?;
            }
        }
        Ok(())
    }

    /// Mean rate over `[from, to]` by midpoint sampling with `n` panels —
    /// what the simulator uses to integrate served requests over a cycle.
    pub fn mean_lambda(&self, from: SimTime, to: SimTime, n: usize) -> f64 {
        if to <= from || n == 0 {
            return self.lambda(from);
        }
        let span = (to - from).as_secs();
        let dt = span / n as f64;
        (0..n)
            .map(|i| {
                let mid = from.as_secs() + (i as f64 + 0.5) * dt;
                self.lambda(SimTime::from_secs(mid))
            })
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_constant() {
        let t = IntensityTrace::constant(50.0);
        assert_eq!(t.lambda(SimTime::ZERO), 50.0);
        assert_eq!(t.lambda(SimTime::from_secs(1e6)), 50.0);
        assert_eq!(
            t.mean_lambda(SimTime::ZERO, SimTime::from_secs(600.0), 8),
            50.0
        );
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let t = IntensityTrace::Steps {
            steps: vec![
                (SimTime::ZERO, 10.0),
                (SimTime::from_secs(100.0), 30.0),
                (SimTime::from_secs(200.0), 5.0),
            ],
        };
        assert_eq!(t.lambda(SimTime::from_secs(50.0)), 10.0);
        assert_eq!(t.lambda(SimTime::from_secs(100.0)), 30.0);
        assert_eq!(t.lambda(SimTime::from_secs(199.0)), 30.0);
        assert_eq!(t.lambda(SimTime::from_secs(10_000.0)), 5.0);
    }

    #[test]
    fn empty_steps_are_zero() {
        let t = IntensityTrace::Steps { steps: vec![] };
        assert_eq!(t.lambda(SimTime::ZERO), 0.0);
    }

    #[test]
    fn diurnal_oscillates_and_clamps() {
        let t = IntensityTrace::Diurnal {
            base: 10.0,
            amplitude: 20.0, // dips below zero: clamped
            period_secs: 86_400.0,
            phase_secs: 0.0,
        };
        // Peak at quarter period.
        assert!((t.lambda(SimTime::from_secs(21_600.0)) - 30.0).abs() < 1e-9);
        // Trough clamped at zero.
        assert_eq!(t.lambda(SimTime::from_secs(64_800.0)), 0.0);
        assert_eq!(t.lambda(SimTime::ZERO), 10.0);
    }

    #[test]
    fn spiky_surges_inside_the_window_only() {
        let t = IntensityTrace::Spiky {
            base: 10.0,
            surge: 40.0,
            period_secs: 3600.0,
            spike_secs: 300.0,
            phase_secs: 600.0,
        };
        assert_eq!(t.lambda(SimTime::ZERO), 10.0);
        assert_eq!(t.lambda(SimTime::from_secs(600.0)), 50.0);
        assert_eq!(t.lambda(SimTime::from_secs(899.0)), 50.0);
        assert_eq!(t.lambda(SimTime::from_secs(900.0)), 10.0);
        // Recurs every period.
        assert_eq!(t.lambda(SimTime::from_secs(3600.0 + 700.0)), 50.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn sum_composes_pointwise() {
        let t = IntensityTrace::Sum {
            parts: vec![
                IntensityTrace::constant(5.0),
                IntensityTrace::Spiky {
                    base: 0.0,
                    surge: 20.0,
                    period_secs: 1000.0,
                    spike_secs: 100.0,
                    phase_secs: 0.0,
                },
            ],
        };
        assert_eq!(t.lambda(SimTime::from_secs(50.0)), 25.0);
        assert_eq!(t.lambda(SimTime::from_secs(500.0)), 5.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn scale_multiplies_and_clamp_bounds() {
        let diurnal = IntensityTrace::Diurnal {
            base: 10.0,
            amplitude: 8.0,
            period_secs: 24_000.0,
            phase_secs: 0.0,
        };
        let scaled = IntensityTrace::Scale {
            factor: 2.5,
            part: Box::new(diurnal.clone()),
        };
        let t = SimTime::from_secs(6000.0); // diurnal peak: 18.0
        assert!((scaled.lambda(t) - 45.0).abs() < 1e-9);
        assert_eq!(
            IntensityTrace::Scale {
                factor: 0.0,
                part: Box::new(IntensityTrace::constant(50.0)),
            }
            .lambda(t),
            0.0
        );
        let clamped = IntensityTrace::Clamp {
            min: 4.0,
            max: 12.0,
            part: Box::new(diurnal),
        };
        assert_eq!(clamped.lambda(t), 12.0); // peak capped
        assert_eq!(clamped.lambda(SimTime::from_secs(18_000.0)), 4.0); // trough floored
        assert_eq!(clamped.lambda(SimTime::ZERO), 10.0); // passthrough inside
        assert!(clamped.validate().is_ok());
        // The wrappers compose with the rest of the algebra.
        let nested = IntensityTrace::Sum {
            parts: vec![
                IntensityTrace::Clamp {
                    min: 0.0,
                    max: 5.0,
                    part: Box::new(IntensityTrace::constant(9.0)),
                },
                IntensityTrace::Scale {
                    factor: 3.0,
                    part: Box::new(IntensityTrace::constant(2.0)),
                },
            ],
        };
        assert_eq!(nested.lambda(SimTime::ZERO), 11.0);
        assert!(nested.validate().is_ok());
    }

    #[test]
    fn scale_and_clamp_validate_their_parameters() {
        let inner = Box::new(IntensityTrace::constant(1.0));
        assert!(IntensityTrace::Scale {
            factor: -1.0,
            part: inner.clone(),
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Scale {
            factor: f64::NAN,
            part: inner.clone(),
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Clamp {
            min: 5.0,
            max: 1.0,
            part: inner.clone(),
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Clamp {
            min: -1.0,
            max: 1.0,
            part: inner,
        }
        .validate()
        .is_err());
        // Invalid children surface through the wrapper.
        assert!(IntensityTrace::Scale {
            factor: 1.0,
            part: Box::new(IntensityTrace::constant(-3.0)),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(IntensityTrace::Spiky {
            base: 1.0,
            surge: 1.0,
            period_secs: 100.0,
            spike_secs: 200.0,
            phase_secs: 0.0,
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Diurnal {
            base: 1.0,
            amplitude: 1.0,
            period_secs: 0.0,
            phase_secs: 0.0,
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Steps {
            steps: vec![(SimTime::from_secs(10.0), 1.0), (SimTime::ZERO, 2.0)],
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Sum {
            parts: vec![IntensityTrace::constant(f64::NAN)],
        }
        .validate()
        .is_err());
        // Sign typos and empty traces are what spec authors actually
        // fat-finger: a silently zero-load app must not pass validation.
        assert!(IntensityTrace::constant(-24.0).validate().is_err());
        assert!(IntensityTrace::Steps { steps: vec![] }.validate().is_err());
        assert!(IntensityTrace::Steps {
            steps: vec![(SimTime::ZERO, -5.0)],
        }
        .validate()
        .is_err());
        assert!(IntensityTrace::Spiky {
            base: -1.0,
            surge: 10.0,
            period_secs: 100.0,
            spike_secs: 10.0,
            phase_secs: 0.0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn mean_lambda_integrates_steps() {
        let t = IntensityTrace::Steps {
            steps: vec![(SimTime::ZERO, 0.0), (SimTime::from_secs(50.0), 100.0)],
        };
        let mean = t.mean_lambda(SimTime::ZERO, SimTime::from_secs(100.0), 1000);
        assert!((mean - 50.0).abs() < 1.0, "{mean}");
    }

    proptest! {
        #[test]
        fn prop_lambda_never_negative(
            base in -50.0..50.0f64,
            amplitude in 0.0..100.0f64,
            t in 0.0..1e6f64,
        ) {
            let trace = IntensityTrace::Diurnal {
                base,
                amplitude,
                period_secs: 3600.0,
                phase_secs: 0.0,
            };
            prop_assert!(trace.lambda(SimTime::from_secs(t)) >= 0.0);
        }

        #[test]
        fn prop_mean_within_range(
            rate in 0.0..100.0f64,
            span in 1.0..10_000.0f64,
        ) {
            let trace = IntensityTrace::constant(rate);
            let mean = trace.mean_lambda(SimTime::ZERO, SimTime::from_secs(span), 16);
            prop_assert!((mean - rate).abs() < 1e-9);
        }

        #[test]
        fn prop_scale_clamp_deterministic_and_bounded(
            base in 0.0..50.0f64,
            amplitude in 0.0..50.0f64,
            factor in 0.0..4.0f64,
            lo in 0.0..10.0f64,
            width in 0.0..40.0f64,
            t in 0.0..1e6f64,
        ) {
            // Traces are pure functions of time: the same wrapped trace
            // evaluated twice (and a structural clone) must agree bit for
            // bit, and the clamp bounds must hold for any t.
            let hi = lo + width;
            let trace = IntensityTrace::Clamp {
                min: lo,
                max: hi,
                part: Box::new(IntensityTrace::Scale {
                    factor,
                    part: Box::new(IntensityTrace::Diurnal {
                        base,
                        amplitude,
                        period_secs: 3600.0,
                        phase_secs: 0.0,
                    }),
                }),
            };
            trace.validate().unwrap();
            let at = SimTime::from_secs(t);
            let l1 = trace.lambda(at);
            let l2 = trace.lambda(at);
            let l3 = trace.clone().lambda(at);
            prop_assert_eq!(l1, l2);
            prop_assert_eq!(l1, l3);
            prop_assert!((lo..=hi).contains(&l1), "{l1} outside [{lo}, {hi}]");
            // Scaling commutes with the raw evaluation wherever the clamp
            // is not binding.
            let raw = IntensityTrace::Diurnal {
                base,
                amplitude,
                period_secs: 3600.0,
                phase_secs: 0.0,
            }
            .lambda(at);
            if l1 > lo && l1 < hi {
                prop_assert!((l1 - factor * raw).abs() < 1e-9);
            }
        }
    }
}
