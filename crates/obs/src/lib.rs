//! # slaq-obs — the unified observability plane
//!
//! One instrumentation surface for the whole control cycle: interned-key
//! **spans** (wall-clock phase timing with per-thread nesting and
//! self-time accounting), **counters**, and fixed-log-bucket
//! **histograms**, all behind a [`Recorder`] handle that is a no-op
//! enum variant when disabled — the hot path pays a single branch and
//! never formats a string.
//!
//! ## Contract
//!
//! - Components receive a `Recorder` clone at setup (`set_recorder`)
//!   and pre-intern their [`Key`]s once; recording via a key is
//!   string-free.
//! - The recorder observes, never steers: no simulation or solver
//!   decision may read it, which is what makes enabling observability
//!   bit-identical on every metric series (pinned in
//!   `tests/observability.rs`).
//! - `Recorder::off()` (the default) makes every call return
//!   immediately; the obs-off overhead pin in `bench_gate` holds the
//!   warm solve to the uninstrumented baseline.
//!
//! ## Exports
//!
//! - [`run_report`] — per-run phase-breakdown table (count, total,
//!   self-time, p50/p95/max per span) plus counters and histograms.
//! - [`chrome_trace_json`] — Chrome trace-event JSON (`ph:"X"` spans,
//!   `ph:"i"` instants), loadable in `chrome://tracing` / Perfetto.
//! - [`prometheus_text`] — Prometheus text exposition of counters and
//!   histograms.
//! - [`audit_jsonl`] — the placement decision audit log as
//!   deterministic JSON Lines.
//!
//! ## SLA observability
//!
//! On top of the raw plane sits the SLA layer: per-app [`SloSpec`]s
//! tracked cycle by cycle into compliance/burn/worst-window stats
//! ([`slo`]), a violation [`Attribution`] whose named causes sum
//! exactly to each cycle's deficit, and the bounded placement decision
//! audit ring ([`audit`]) every solver step, shard lane, and
//! reconciliation pass tags its changes into. All of it obeys the same
//! contract: observes, never steers.
//!
//! ```
//! use slaq_obs::{Recorder, run_report};
//!
//! let rec = Recorder::enabled();
//! let solve = rec.key("cycle.solve");
//! {
//!     let _span = rec.span(solve); // closed on drop
//! }
//! rec.count(rec.key("delta.hits"), 1);
//! assert!(run_report(&rec).contains("cycle.solve"));
//! ```

#![deny(missing_docs)]

pub mod audit;
pub mod hist;
pub mod recorder;
pub mod report;
pub mod slo;

pub use audit::{audit_jsonl, AuditEntry, AuditSubject};
pub use hist::Histogram;
pub use recorder::{Key, ObsSnapshot, Recorder, SloId, SpanGuard, SpanStats};
pub use report::{chrome_trace_json, prometheus_text, run_report};
pub use slo::{Attribution, SloSample, SloSpec, SloTracker};
