//! Workspace-wide error type.

use crate::ids::{AppId, JobId, NodeId};
use std::fmt;

/// Errors surfaced by the slaq workspace.
///
/// Kept as a single enum (rather than per-crate error types) because the
/// control loop composes every subsystem and callers almost always handle
/// these uniformly: log, skip the cycle, continue.
#[derive(Debug, Clone, PartialEq)]
pub enum SlaqError {
    /// An identifier referred to a node that does not exist.
    UnknownNode(NodeId),
    /// An identifier referred to an application that does not exist.
    UnknownApp(AppId),
    /// An identifier referred to a job that does not exist.
    UnknownJob(JobId),
    /// A specification was internally inconsistent (message explains).
    InvalidSpec(String),
    /// A declarative scenario spec failed validation or materialization;
    /// `section` names the offending part (`"cluster"`, `"apps[0]"`, …)
    /// so spec authors can find the field without a stack trace.
    Spec {
        /// The spec section at fault.
        section: String,
        /// What is wrong with it.
        detail: String,
    },
    /// A solver failed to converge or was handed an infeasible instance.
    Solver(String),
    /// A placement plan violated a capacity constraint when applied.
    CapacityViolation {
        /// Node where the violation occurred.
        node: NodeId,
        /// Human-readable description of the violated constraint.
        detail: String,
    },
    /// An operation was attempted in an illegal lifecycle state
    /// (e.g. resuming a job that never started).
    IllegalState(String),
    /// I/O error while writing experiment artifacts.
    Io(String),
}

impl fmt::Display for SlaqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlaqError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SlaqError::UnknownApp(a) => write!(f, "unknown application {a}"),
            SlaqError::UnknownJob(j) => write!(f, "unknown job {j}"),
            SlaqError::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
            SlaqError::Spec { section, detail } => {
                write!(f, "scenario spec: {section}: {detail}")
            }
            SlaqError::Solver(msg) => write!(f, "solver error: {msg}"),
            SlaqError::CapacityViolation { node, detail } => {
                write!(f, "capacity violation on {node}: {detail}")
            }
            SlaqError::IllegalState(msg) => write!(f, "illegal state: {msg}"),
            SlaqError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl SlaqError {
    /// Convenience constructor for [`SlaqError::Spec`].
    pub fn spec(section: impl Into<String>, detail: impl Into<String>) -> Self {
        SlaqError::Spec {
            section: section.into(),
            detail: detail.into(),
        }
    }
}

impl std::error::Error for SlaqError {}

impl From<std::io::Error> for SlaqError {
    fn from(e: std::io::Error) -> Self {
        SlaqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        assert_eq!(
            SlaqError::UnknownNode(NodeId::new(3)).to_string(),
            "unknown node node3"
        );
        assert_eq!(
            SlaqError::CapacityViolation {
                node: NodeId::new(1),
                detail: "memory 5000 MB > 4096 MB".into()
            }
            .to_string(),
            "capacity violation on node1: memory 5000 MB > 4096 MB"
        );
        assert!(SlaqError::Solver("no convergence".into())
            .to_string()
            .contains("no convergence"));
        assert_eq!(
            SlaqError::spec("apps[2]", "u_cap must lie in (0, 1)").to_string(),
            "scenario spec: apps[2]: u_cap must lie in (0, 1)"
        );
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SlaqError = io.into();
        assert!(matches!(e, SlaqError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SlaqError::IllegalState("x".into()));
    }
}
