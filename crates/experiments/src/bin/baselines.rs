//! E3: compare the utility-equalizing controller against the
//! transactional-first FCFS scheduler and a static cluster partition on
//! the paper's workload.
//!
//! ```text
//! cargo run --release -p slaq-experiments --bin baselines [-- --small]
//! ```

use slaq_core::scenario::PaperParams;
use slaq_experiments::comparison::{compare_controllers, format_table};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let params = if small {
        PaperParams::small()
    } else {
        PaperParams::default()
    };
    eprintln!("running 3 controllers on the paper workload…");
    let rows = compare_controllers(&params).expect("runs must succeed");
    println!("{}", format_table(&rows));

    std::fs::create_dir_all("out").expect("create out/");
    let json = serde_json::to_string_pretty(&rows).expect("serialize");
    std::fs::write("out/baselines.json", json).expect("write out/baselines.json");
    println!("wrote out/baselines.json");
}
