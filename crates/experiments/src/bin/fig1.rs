//! Regenerate **Figure 1**: actual utility of the transactional workload
//! and average hypothetical utility of the long-running workload vs time.
//!
//! ```text
//! cargo run --release -p slaq-experiments --bin fig1 [-- --small]
//! ```
//!
//! Writes `out/fig1.csv` and prints an ASCII rendition plus shape metrics.

use slaq_core::scenario::PaperParams;
use slaq_experiments::ascii::{downsample, plot, summary};
use slaq_experiments::{fig1_csv, run_paper_experiment, shape_metrics};
use slaq_types::SimTime;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let params = if small {
        PaperParams::small()
    } else {
        PaperParams::default()
    };
    eprintln!(
        "running paper experiment ({} nodes, horizon {} s)…",
        params.nodes, params.horizon_secs
    );
    let report = run_paper_experiment(&params).expect("simulation must succeed");

    std::fs::create_dir_all("out").expect("create out/");
    let csv = fig1_csv(&report);
    std::fs::write("out/fig1.csv", &csv).expect("write out/fig1.csv");

    let ut = report.metrics.series("trans_utility");
    let uj = report.metrics.series("jobs_hypo_utility");
    println!("Figure 1 — utility of both workloads over time\n");
    let ut_d = downsample(ut, 110);
    let uj_d = downsample(uj, 110);
    println!(
        "{}",
        plot(
            &[
                ("transactional (actual)", &ut_d),
                ("long-running (hypothetical)", &uj_d)
            ],
            110,
            20,
        )
    );
    println!("{}", summary("trans_utility", ut));
    println!("{}", summary("jobs_hypo_utility", uj));
    println!();
    println!(
        "{}",
        shape_metrics(
            &report,
            SimTime::from_secs(params.tail_start_secs),
            SimTime::from_secs(params.horizon_secs),
        )
    );
    println!("\nwrote out/fig1.csv ({} rows)", csv.lines().count() - 1);
    println!(
        "jobs: {} submitted, {} completed, {} met goals",
        report.job_stats.submitted, report.job_stats.completed, report.job_stats.goals_met
    );
}
