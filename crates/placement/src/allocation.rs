//! Exact CPU allocation for a *fixed* placement, via min-cost max-flow.
//!
//! Once the discrete decisions are made (which instances exist, which jobs
//! run where), distributing CPU is a transportation problem:
//!
//! ```text
//! source ──demand──▶ entity ──placed-edge──▶ node ──capacity──▶ sink
//! ```
//!
//! Max-flow maximizes total satisfied demand; when even the maximum flow
//! cannot satisfy every target (discreteness made some commitment
//! unrealizable), costs bias the shortfall onto the **jobs**: an
//! application's utility collapses catastrophically once its allocation
//! nears its offered load (response times diverge), while a shortchanged
//! job still makes progress on work-conserving spare capacity and merely
//! finishes later.

use crate::placement::Placement;
use crate::problem::{AppRequest, JobRequest, NodeCapacity};
use slaq_flow::FlowNetwork;
use slaq_types::{AppId, CpuMhz, JobId, NodeId};
use std::collections::BTreeMap;

/// Compute allocations for the given instance/job placement.
///
/// * `app_instances[a]` — nodes hosting an instance of `a`;
/// * `job_nodes[j]` — node hosting running job `j`.
///
/// Returns a [`Placement`] with CPU slices filled in. Entities receive at
/// most their demand; nodes are never overcommitted; total satisfied
/// demand is maximal for this placement (the flow optimum).
pub fn allocate(
    nodes: &[NodeCapacity],
    apps: &[AppRequest],
    app_instances: &BTreeMap<AppId, Vec<NodeId>>,
    jobs: &[JobRequest],
    job_nodes: &BTreeMap<JobId, NodeId>,
    mhz_unit: f64,
) -> Placement {
    let unit = if mhz_unit > 0.0 { mhz_unit } else { 1.0 };
    // Demands round down too: granting an entity a fraction of a unit
    // less than its target is harmless, while rounding *capacities* up
    // would overcommit nodes by up to one unit.
    let to_units = |c: CpuMhz| -> i64 { (c.as_f64() / unit).floor().max(0.0) as i64 };
    let to_mhz = |u: i64| -> CpuMhz { CpuMhz::new(u as f64 * unit) };

    let n_apps = apps.len();
    let n_jobs = jobs.len();
    let n_nodes = nodes.len();
    // Graph layout: 0 = source; 1..=A apps; A+1..=A+J jobs;
    // A+J+1..=A+J+N nodes; last = sink.
    let source = 0usize;
    let app_vx = |i: usize| 1 + i;
    let job_vx = |i: usize| 1 + n_apps + i;
    let node_vx = |i: usize| 1 + n_apps + n_jobs + i;
    let sink = 1 + n_apps + n_jobs + n_nodes;
    let mut g = FlowNetwork::new(sink + 1);

    let node_index: BTreeMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();

    // Apps saturate first (cost 0); jobs absorb shortfalls (cost 1).
    let mut job_edges = Vec::with_capacity(n_jobs);
    for (ji, job) in jobs.iter().enumerate() {
        let placed = job_nodes.get(&job.id).and_then(|n| node_index.get(n));
        let cap = to_units(job.demand);
        g.add_edge_with_cost(source, job_vx(ji), cap, 1);
        match placed {
            Some(&ni) => {
                let e = g.add_edge(job_vx(ji), node_vx(ni), cap);
                job_edges.push(Some((e, *job_nodes.get(&job.id).expect("checked"))));
            }
            None => job_edges.push(None),
        }
    }
    let mut app_edges: Vec<Vec<(slaq_flow::EdgeId, NodeId)>> = Vec::with_capacity(n_apps);
    for (ai, app) in apps.iter().enumerate() {
        let cap = to_units(app.demand);
        g.add_edge_with_cost(source, app_vx(ai), cap, 0);
        let mut edges = Vec::new();
        if let Some(hosts) = app_instances.get(&app.id) {
            for node in hosts {
                if let Some(&ni) = node_index.get(node) {
                    let e = g.add_edge(app_vx(ai), node_vx(ni), cap);
                    edges.push((e, *node));
                }
            }
        }
        app_edges.push(edges);
    }
    for (ni, node) in nodes.iter().enumerate() {
        g.add_edge(node_vx(ni), sink, to_units(node.cpu));
    }

    g.min_cost_flow(source, sink, i64::MAX / 8);

    // Read back the allocation.
    let mut placement = Placement::empty();
    for (ai, app) in apps.iter().enumerate() {
        let slices = placement.apps.entry(app.id).or_default();
        // Every host keeps its instance even at zero flow (warm instance).
        if let Some(hosts) = app_instances.get(&app.id) {
            for node in hosts {
                slices.insert(*node, CpuMhz::ZERO);
            }
        }
        for &(e, node) in &app_edges[ai] {
            let f = g.flow_on(e);
            if f > 0 {
                slices.insert(node, to_mhz(f));
            }
        }
    }
    for (ji, job) in jobs.iter().enumerate() {
        if let Some((e, node)) = job_edges[ji] {
            placement.jobs.insert(job.id, (node, to_mhz(g.flow_on(e))));
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::MemMb;

    fn node(id: u32, cpu: f64) -> NodeCapacity {
        NodeCapacity {
            id: NodeId::new(id),
            cpu: CpuMhz::new(cpu),
            mem: MemMb::new(4096),
        }
    }

    fn app(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 0,
            max_instances: 32,
        }
    }

    fn jobr(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    #[test]
    fn single_app_single_node_gets_its_demand() {
        let nodes = [node(0, 12_000.0)];
        let apps = [app(0, 5000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(5000.0));
    }

    #[test]
    fn app_spreads_across_nodes() {
        let nodes = [node(0, 4000.0), node(1, 4000.0), node(2, 4000.0)];
        let apps = [app(0, 10_000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(
            AppId::new(0),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        );
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(10_000.0));
        for n in 0..3 {
            assert!(p.node_cpu_used(NodeId::new(n)).as_f64() <= 4000.0 + 1e-6);
        }
    }

    #[test]
    fn jobs_win_contended_nodes_apps_recover_elsewhere() {
        // Node0: 3000 MHz, hosts a 3000-demand job AND an app instance.
        // Node1: 3000 MHz, app-only. App demand 3000.
        // The job must be satisfied on node0; the app shifts to node1.
        let nodes = [node(0, 3000.0), node(1, 3000.0)];
        let apps = [app(0, 3000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0), NodeId::new(1)]);
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        let p = allocate(&nodes, &apps, &inst, &jobs, &jn, 1.0);
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(
            p.apps[&AppId::new(0)][&NodeId::new(1)],
            CpuMhz::new(3000.0)
        );
    }

    #[test]
    fn shortfall_lands_on_the_job() {
        let nodes = [node(0, 4000.0)];
        let apps = [app(0, 3000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        let p = allocate(&nodes, &apps, &inst, &jobs, &jn, 1.0);
        // App saturates first (cost bias: its utility cliffs at its
        // offered load); the job absorbs the shortfall and will catch up
        // on work-conserving spare in the simulator.
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::new(1000.0));
    }

    #[test]
    fn unplaced_jobs_get_nothing() {
        let nodes = [node(0, 4000.0)];
        let jobs = [jobr(0, 3000.0)];
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &BTreeMap::new(), 1.0);
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::ZERO);
        assert!(p.job_node(JobId::new(0)).is_none());
    }

    #[test]
    fn warm_instances_survive_with_zero_flow() {
        let nodes = [node(0, 4000.0)];
        let apps = [app(0, 0.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_instances(AppId::new(0)), 1);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::ZERO);
    }

    #[test]
    fn multiple_jobs_on_one_node_share_capacity() {
        let nodes = [node(0, 5000.0)];
        let jobs = [jobr(0, 3000.0), jobr(1, 3000.0)];
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        jn.insert(JobId::new(1), NodeId::new(0));
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &jn, 1.0);
        let total = p.job_alloc(JobId::new(0)) + p.job_alloc(JobId::new(1));
        assert_eq!(total, CpuMhz::new(5000.0));
        assert!(p.job_alloc(JobId::new(0)).as_f64() <= 3000.0 + 1e-9);
        assert!(p.job_alloc(JobId::new(1)).as_f64() <= 3000.0 + 1e-9);
    }

    #[test]
    fn coarse_mhz_unit_still_respects_capacity() {
        let nodes = [node(0, 5000.0)];
        let jobs = [jobr(0, 3333.0), jobr(1, 3333.0)];
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        jn.insert(JobId::new(1), NodeId::new(0));
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &jn, 100.0);
        let total = p.job_alloc(JobId::new(0)) + p.job_alloc(JobId::new(1));
        assert!(total.as_f64() <= 5000.0 + 1e-6);
        assert!(total.as_f64() >= 4900.0);
    }
}
