//! Work-conserving per-node CPU sharing.
//!
//! The controller's placement carries *guarantees* (hypervisor minimum
//! shares). Real hypervisors are work-conserving: capacity a VM leaves
//! idle flows to its node-mates. This module computes the **effective
//! speeds** that result:
//!
//! 1. every placed entity receives its guarantee;
//! 2. node spare capacity (including guarantees of blocked VMs) is
//!    water-filled across *running jobs* first, each capped at its
//!    maximum speed — this is what lets SLA-hopeless jobs (zero demand,
//!    zero guarantee) still drain to completion;
//! 3. whatever remains goes to the node's transactional instances
//!    (proportional to their guarantees, evenly when all are zero).

use slaq_placement::problem::NodeCapacity;
use slaq_placement::Placement;
use slaq_types::{AppId, CpuMhz, JobId};
use std::collections::{BTreeMap, BTreeSet};

/// Compute effective speeds for every running job and every application
/// (cluster-wide aggregate over its instances).
///
/// * `job_caps` — per-job maximum speed;
/// * `blocked` — jobs currently paying a start/resume/migration latency:
///   they run at zero speed and their guarantee joins the spare pool;
/// * `cap_apps` — when `true`, transactional instances are *limited* to
///   their guarantees (the paper's middleware enforces the computed
///   fine-grained allocations as hypervisor limits, so the transactional
///   tier's delivered power equals the controller's decision exactly);
///   when `false` leftover spare flows to the instances (fully
///   work-conserving hypervisor). Jobs are always work-conserving up to
///   their speed caps — that is what drains SLA-hopeless jobs.
pub fn effective_speeds(
    nodes: &[NodeCapacity],
    placement: &Placement,
    job_caps: &BTreeMap<JobId, CpuMhz>,
    blocked: &BTreeSet<JobId>,
    cap_apps: bool,
) -> (BTreeMap<JobId, CpuMhz>, BTreeMap<AppId, CpuMhz>) {
    let mut job_speed: BTreeMap<JobId, CpuMhz> = BTreeMap::new();
    let mut app_speed: BTreeMap<AppId, CpuMhz> = BTreeMap::new();

    for node in nodes {
        // Gather entities on this node.
        let jobs_here: Vec<(JobId, CpuMhz)> = placement
            .jobs
            .iter()
            .filter(|&(_, &(n, _))| n == node.id)
            .map(|(&j, &(_, g))| (j, g))
            .collect();
        let apps_here: Vec<(AppId, CpuMhz)> = placement
            .apps
            .iter()
            .filter_map(|(&a, slices)| slices.get(&node.id).map(|&g| (a, g)))
            .collect();

        let mut used = CpuMhz::ZERO;
        // Guarantees (blocked jobs run at zero; their share is spare).
        let mut runnable: Vec<(JobId, CpuMhz, CpuMhz)> = Vec::new(); // (id, speed, cap)
        for &(j, g) in &jobs_here {
            if blocked.contains(&j) {
                job_speed.insert(j, CpuMhz::ZERO);
                continue;
            }
            let cap = job_caps.get(&j).copied().unwrap_or(g);
            let g = g.min(cap);
            used += g;
            runnable.push((j, g, cap));
        }
        for &(_, g) in &apps_here {
            used += g;
        }
        let mut spare = node.cpu.saturating_sub(used);

        // Water-fill spare across runnable jobs up to their caps.
        loop {
            let open: Vec<usize> = runnable
                .iter()
                .enumerate()
                .filter(|(_, (_, s, cap))| cap.as_f64() - s.as_f64() > 1e-9)
                .map(|(i, _)| i)
                .collect();
            if open.is_empty() || spare.as_f64() <= 1e-9 {
                break;
            }
            let share = spare / open.len() as f64;
            let mut granted_any = false;
            for i in open {
                let (_, s, cap) = runnable[i];
                let grant = (cap - s).min(share).max_zero();
                if grant.as_f64() > 0.0 {
                    runnable[i].1 += grant;
                    spare -= grant;
                    granted_any = true;
                }
            }
            if !granted_any {
                break;
            }
        }
        for (j, s, _) in &runnable {
            job_speed.insert(*j, *s);
        }

        // Remaining spare flows to transactional instances (unless the
        // controller's allocations are enforced as limits).
        if !cap_apps && !apps_here.is_empty() && spare.as_f64() > 1e-9 {
            let g_total: f64 = apps_here.iter().map(|(_, g)| g.as_f64()).sum();
            for &(a, g) in &apps_here {
                let bonus = if g_total > 1e-9 {
                    spare * (g.as_f64() / g_total)
                } else {
                    spare / apps_here.len() as f64
                };
                *app_speed.entry(a).or_insert(CpuMhz::ZERO) += g + bonus;
            }
        } else {
            for &(a, g) in &apps_here {
                *app_speed.entry(a).or_insert(CpuMhz::ZERO) += g;
            }
        }
    }

    (job_speed, app_speed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::{MemMb, NodeId};

    fn nodes(n: u32, cpu: f64) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity {
                id: NodeId::new(i),
                cpu: CpuMhz::new(cpu),
                mem: MemMb::new(4096),
            })
            .collect()
    }

    fn caps(ids: &[u32], cap: f64) -> BTreeMap<JobId, CpuMhz> {
        ids.iter()
            .map(|&i| (JobId::new(i), CpuMhz::new(cap)))
            .collect()
    }

    #[test]
    fn guarantees_are_enforced() {
        let mut p = Placement::empty();
        p.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(2000.0)));
        p.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(0), CpuMhz::new(10_000.0));
        let (js, asp) = effective_speeds(
            &nodes(1, 12_000.0),
            &p,
            &caps(&[0], 3000.0),
            &BTreeSet::new(),
            false,
        );
        // No spare: 2000 + 10 000 = 12 000 exactly.
        assert_eq!(js[&JobId::new(0)], CpuMhz::new(2000.0));
        assert_eq!(asp[&AppId::new(0)], CpuMhz::new(10_000.0));
    }

    #[test]
    fn spare_goes_to_jobs_first_capped_at_max_speed() {
        let mut p = Placement::empty();
        p.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(1000.0)));
        p.jobs
            .insert(JobId::new(1), (NodeId::new(0), CpuMhz::new(1000.0)));
        p.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(0), CpuMhz::new(2000.0));
        // Node 12 000: guarantees 4000, spare 8000. Jobs can absorb
        // 2000 each (cap 3000), leaving 4000 for the app.
        let (js, asp) = effective_speeds(
            &nodes(1, 12_000.0),
            &p,
            &caps(&[0, 1], 3000.0),
            &BTreeSet::new(),
            false,
        );
        assert_eq!(js[&JobId::new(0)], CpuMhz::new(3000.0));
        assert_eq!(js[&JobId::new(1)], CpuMhz::new(3000.0));
        assert_eq!(asp[&AppId::new(0)], CpuMhz::new(6000.0));
    }

    #[test]
    fn zero_guarantee_job_still_drains_via_spare() {
        // The "hopeless job" path: guarantee 0 but node has spare.
        let mut p = Placement::empty();
        p.jobs.insert(JobId::new(0), (NodeId::new(0), CpuMhz::ZERO));
        let (js, _) = effective_speeds(
            &nodes(1, 12_000.0),
            &p,
            &caps(&[0], 3000.0),
            &BTreeSet::new(),
            false,
        );
        assert_eq!(js[&JobId::new(0)], CpuMhz::new(3000.0));
    }

    #[test]
    fn blocked_jobs_run_at_zero_and_donate_their_guarantee() {
        let mut p = Placement::empty();
        p.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(3000.0)));
        p.jobs
            .insert(JobId::new(1), (NodeId::new(0), CpuMhz::new(3000.0)));
        let blocked: BTreeSet<JobId> = [JobId::new(0)].into();
        let (js, _) = effective_speeds(
            &nodes(1, 4000.0),
            &p,
            &caps(&[0, 1], 3000.0),
            &blocked,
            false,
        );
        assert_eq!(js[&JobId::new(0)], CpuMhz::ZERO);
        // Job1: guarantee 3000 (already at cap).
        assert_eq!(js[&JobId::new(1)], CpuMhz::new(3000.0));
    }

    #[test]
    fn water_fill_respects_unequal_headroom() {
        // Three jobs, guarantees 0, caps 1000/2000/3000; node 4500.
        let mut p = Placement::empty();
        for i in 0..3 {
            p.jobs.insert(JobId::new(i), (NodeId::new(0), CpuMhz::ZERO));
        }
        let mut caps_map = BTreeMap::new();
        caps_map.insert(JobId::new(0), CpuMhz::new(1000.0));
        caps_map.insert(JobId::new(1), CpuMhz::new(2000.0));
        caps_map.insert(JobId::new(2), CpuMhz::new(3000.0));
        let (js, _) = effective_speeds(&nodes(1, 4500.0), &p, &caps_map, &BTreeSet::new(), false);
        // Equal-share rounds: 1500 each → job0 capped at 1000, its 500
        // splits 250/250 → job1 1750, job2 1750.
        assert_eq!(js[&JobId::new(0)], CpuMhz::new(1000.0));
        assert!(js[&JobId::new(1)].approx_eq(CpuMhz::new(1750.0), 1e-6));
        assert!(js[&JobId::new(2)].approx_eq(CpuMhz::new(1750.0), 1e-6));
    }

    #[test]
    fn app_spans_nodes_and_aggregates() {
        let mut p = Placement::empty();
        p.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(0), CpuMhz::new(4000.0));
        p.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(1), CpuMhz::new(6000.0));
        let (_, asp) = effective_speeds(
            &nodes(2, 12_000.0),
            &p,
            &BTreeMap::new(),
            &BTreeSet::new(),
            false,
        );
        // Each node's full spare flows to the only instance there.
        assert_eq!(asp[&AppId::new(0)], CpuMhz::new(24_000.0));
    }

    #[test]
    fn zero_guarantee_instances_split_spare_evenly() {
        let mut p = Placement::empty();
        p.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(0), CpuMhz::ZERO);
        p.apps
            .entry(AppId::new(1))
            .or_default()
            .insert(NodeId::new(0), CpuMhz::ZERO);
        let (_, asp) = effective_speeds(
            &nodes(1, 8000.0),
            &p,
            &BTreeMap::new(),
            &BTreeSet::new(),
            false,
        );
        assert_eq!(asp[&AppId::new(0)], CpuMhz::new(4000.0));
        assert_eq!(asp[&AppId::new(1)], CpuMhz::new(4000.0));
    }

    #[test]
    fn empty_placement_produces_empty_maps() {
        let (js, asp) = effective_speeds(
            &nodes(3, 12_000.0),
            &Placement::empty(),
            &BTreeMap::new(),
            &BTreeSet::new(),
            false,
        );
        assert!(js.is_empty());
        assert!(asp.is_empty());
    }

    #[test]
    fn total_never_exceeds_node_capacity() {
        let mut p = Placement::empty();
        for i in 0..3 {
            p.jobs
                .insert(JobId::new(i), (NodeId::new(0), CpuMhz::new(1000.0)));
        }
        p.apps
            .entry(AppId::new(0))
            .or_default()
            .insert(NodeId::new(0), CpuMhz::new(500.0));
        let (js, asp) = effective_speeds(
            &nodes(1, 6000.0),
            &p,
            &caps(&[0, 1, 2], 3000.0),
            &BTreeSet::new(),
            false,
        );
        let total: f64 = js.values().map(|c| c.as_f64()).sum::<f64>()
            + asp.values().map(|c| c.as_f64()).sum::<f64>();
        assert!(total <= 6000.0 + 1e-6, "{total}");
        assert!(total >= 6000.0 - 1e-6, "work-conserving: {total}");
    }
}
