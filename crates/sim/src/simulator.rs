//! The simulation loop: events, placement enactment, measurement.
//!
//! A fluid discrete-event design: between events every running job
//! progresses at its effective speed and every application observes its
//! effective allocation. Events are job arrivals, control cycles, job
//! completions, overhead-unblock instants and the horizon. Effective
//! speeds are recomputed at every event, so the freed capacity of a
//! completed job is redistributed immediately.

use crate::apps::{AppObservation, TransactionalRuntime};
use crate::cluster::effective_speeds;
use crate::metrics::{MetricKey, MetricsSink};
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use slaq_jobs::{JobManager, JobSpec, JobState, JobStats};
use slaq_obs::Recorder;
use slaq_placement::problem::{AppRequest, JobRequest, NodeCapacity};
use slaq_placement::{Placement, PlacementChange};
use slaq_types::{ClusterSpec, CpuMhz, JobId, Result, SimDuration, SimTime, SlaqError};
use std::collections::{BTreeMap, BTreeSet};

/// Latencies paid by jobs for placement actions (the *cost* that makes
/// churn worth bounding).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadConfig {
    /// Cold start of a pending job's VM.
    pub start: SimDuration,
    /// Resume of a suspended image (disk → memory).
    pub resume: SimDuration,
    /// Live migration of a running VM.
    pub migrate: SimDuration,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            start: SimDuration::from_secs(30.0),
            resume: SimDuration::from_secs(60.0),
            migrate: SimDuration::from_secs(90.0),
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Controller invocation period (600 s in the paper).
    pub control_period: SimDuration,
    /// End of the experiment.
    pub horizon: SimTime,
    /// Placement action latencies.
    pub overheads: OverheadConfig,
    /// Enforce transactional allocations as hypervisor *limits* (the
    /// paper's middleware applies the computed fine-grained allocations,
    /// so the delivered power equals the controller's decision). When
    /// `false` the hypervisor is fully work-conserving and spare CPU also
    /// flows to transactional instances. Jobs always reuse spare up to
    /// their speed caps.
    pub cap_transactional: bool,
}

impl SimConfig {
    /// The paper's timing: 600 s cycles over a 72 000 s horizon, with
    /// transactional allocations enforced as limits.
    pub fn paper() -> Self {
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(72_000.0),
            overheads: OverheadConfig::default(),
            cap_transactional: true,
        }
    }
}

/// Everything a controller may observe at a control cycle.
pub struct ControlInputs<'a> {
    /// Current instant.
    pub now: SimTime,
    /// Node capacities.
    pub nodes: &'a [NodeCapacity],
    /// Placement currently in force.
    pub current: &'a Placement,
    /// The job manager (states, remaining work, SLAs).
    pub jobs: &'a JobManager,
    /// Per-application observations (spec + estimated intensity).
    pub apps: &'a [AppObservation],
}

/// A placement controller under test.
pub trait Controller {
    /// Produce the placement to enact for the next cycle. Controllers may
    /// record model-side series into `metrics`.
    fn control(&mut self, inputs: &ControlInputs<'_>, metrics: &mut MetricsSink) -> Placement;

    /// [`Controller::control`] with an advisory churn hint: what changed
    /// since the previous control cycle, as diffed by the simulator's
    /// [`DeltaTracker`](crate::snapshot::DeltaTracker). Delta-capable
    /// controllers forward the hint into their solver's incremental fast
    /// path; the default ignores it and solves as usual. The hint never
    /// affects correctness — the solver re-verifies every reuse
    /// precondition against the actual problem.
    fn control_delta(
        &mut self,
        inputs: &ControlInputs<'_>,
        delta: Option<&slaq_placement::SolveDelta>,
        metrics: &mut MetricsSink,
    ) -> Placement {
        let _ = delta;
        self.control(inputs, metrics)
    }

    /// Install an observability [`Recorder`]. The simulator forwards its
    /// recorder here at the start of a run so the controller (and
    /// whatever solver stack it wraps) records spans and counters into
    /// the same registry. The recorder observes, never steers: no
    /// controller decision may depend on it. The default ignores it.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }
}

/// Final report of a run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// All recorded series.
    pub metrics: MetricsSink,
    /// Job statistics at the horizon.
    pub job_stats: JobStats,
    /// Control cycles executed.
    pub cycles: usize,
    /// Total placement changes enacted.
    pub total_changes: usize,
}

/// A planned node outage (failure injection): the node contributes no
/// CPU or memory during `[from, to)`; running jobs on it are suspended
/// when it goes down and the controller sees a zero-capacity node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// The failing node.
    pub node: slaq_types::NodeId,
    /// Failure instant.
    pub from: SimTime,
    /// Recovery instant.
    pub to: SimTime,
}

/// The simulator.
pub struct Simulator {
    nodes: Vec<NodeCapacity>,
    job_mgr: JobManager,
    apps: Vec<TransactionalRuntime>,
    /// Pending arrivals, sorted by time *descending* (pop from the back).
    arrivals: Vec<(SimTime, JobSpec)>,
    placement: Placement,
    blocked_until: BTreeMap<JobId, SimTime>,
    metrics: MetricsSink,
    config: SimConfig,
    outages: Vec<NodeOutage>,
    /// Partial-capacity windows (chaos degradation): CPU scaled, node
    /// alive. Empty unless installed via [`Simulator::add_capacity_dip`].
    dips: Vec<crate::chaos::CapacityDip>,
    /// Overbooking model `(seed, spec)`: advertised capacities are the
    /// physical ones scaled by the overcommit ratios, and a seeded
    /// true-usage draw per `(cycle, node)` occasionally claws real CPU
    /// back. `None` leaves every code path and every float untouched.
    overcommit: Option<(u64, crate::chaos::OvercommitSpec)>,
    /// Vertical elasticity `(seed, spec)` plus the precomputed resize
    /// instants (ascending) and a cursor into them.
    elasticity: Option<(u64, crate::chaos::ElasticitySpec)>,
    resize_events: Vec<SimTime>,
    resize_at: usize,
    /// Diffs consecutive cycles' sensed inputs into the advisory
    /// [`SolveDelta`](slaq_placement::SolveDelta) hint for
    /// [`Controller::control_delta`].
    delta_tracker: crate::snapshot::DeltaTracker,
    /// Optional request-level routing tier, driven once per control
    /// cycle *before* sensing (sim-side, so pipelined controllers see
    /// identical router series). `None` leaves every series and every
    /// observation bit-identical to the routing-free simulator.
    routing: Option<slaq_routing::RoutingTier>,
    /// Observability plane (spans/counters/histograms). `Recorder::off`
    /// unless installed via [`Simulator::set_recorder`] or the
    /// `SLAQ_TRACE` env var; observes only, never steers.
    recorder: Recorder,
    obs: ObsKeys,
    /// Interned [`MetricKey`]s for the static per-cycle series.
    keys: SimSeriesKeys,
    /// Interned per-app rt/utility series keys, parallel to `apps`.
    app_keys: Vec<AppMetricKeys>,
    /// Interned routing warm/discount series keys per app, filled
    /// lazily on first route.
    route_keys: BTreeMap<slaq_types::AppId, (MetricKey, MetricKey)>,
    /// SLO board handles per app (registered via
    /// [`Simulator::register_slo`]; empty unless observability is on).
    slo_ids: BTreeMap<slaq_types::AppId, slaq_obs::SloId>,
    /// This cycle's flushed (rt secs, utility) per app, parallel to
    /// `apps`. Private sensing state — feeds only the SLO board, so it
    /// never steers the simulation.
    last_app_flush: Vec<Option<(f64, f64)>>,
    /// The controller's configured per-cycle change budget, for
    /// budget-exhaustion attribution (`None` = unlimited).
    change_budget: Option<usize>,
    now: SimTime,
    next_control: SimTime,
    cycles: usize,
    total_changes: usize,
}

/// Interned sink keys for the series the simulator records every
/// cycle, so the per-cycle hot path never looks up a name.
#[derive(Clone, Copy)]
struct SimSeriesKeys {
    route_requests: MetricKey,
    route_quality: MetricKey,
    route_discount: MetricKey,
    trans_utility: MetricKey,
    jobs_outlook: MetricKey,
    jobs_outlook_min: MetricKey,
    trans_alloc: MetricKey,
    jobs_alloc: MetricKey,
    changes: MetricKey,
    jobs_active: MetricKey,
    jobs_running: MetricKey,
    jobs_pending: MetricKey,
    jobs_suspended: MetricKey,
    jobs_completed: MetricKey,
}

impl SimSeriesKeys {
    fn intern(m: &mut MetricsSink) -> Self {
        SimSeriesKeys {
            route_requests: m.intern("route_requests"),
            route_quality: m.intern("route_quality"),
            route_discount: m.intern("route_discount"),
            trans_utility: m.intern("trans_utility"),
            jobs_outlook: m.intern("jobs_outlook"),
            jobs_outlook_min: m.intern("jobs_outlook_min"),
            trans_alloc: m.intern("trans_alloc"),
            jobs_alloc: m.intern("jobs_alloc"),
            changes: m.intern("changes"),
            jobs_active: m.intern("jobs_active"),
            jobs_running: m.intern("jobs_running"),
            jobs_pending: m.intern("jobs_pending"),
            jobs_suspended: m.intern("jobs_suspended"),
            jobs_completed: m.intern("jobs_completed"),
        }
    }
}

#[derive(Clone, Copy)]
struct AppMetricKeys {
    rt: MetricKey,
    utility: MetricKey,
}

/// Pre-interned observability keys for the simulator's own spans and
/// events (dummies while the recorder is off).
#[derive(Clone, Copy)]
struct ObsKeys {
    cycle: slaq_obs::Key,
    route: slaq_obs::Key,
    sense: slaq_obs::Key,
    solve: slaq_obs::Key,
    actuate: slaq_obs::Key,
    event: slaq_obs::Key,
    delta_dirty: slaq_obs::Key,
}

impl ObsKeys {
    fn intern(rec: &Recorder) -> Self {
        ObsKeys {
            cycle: rec.key("cycle"),
            route: rec.key("cycle.route"),
            sense: rec.key("cycle.sense"),
            solve: rec.key("cycle.solve"),
            actuate: rec.key("cycle.actuate"),
            event: rec.key("sim.event"),
            delta_dirty: rec.key("delta.dirty"),
        }
    }
}

impl Simulator {
    /// Create a simulator over `cluster`.
    pub fn new(cluster: &ClusterSpec, config: SimConfig) -> Self {
        let mut metrics = MetricsSink::new();
        let keys = SimSeriesKeys::intern(&mut metrics);
        let recorder = Recorder::off();
        let obs = ObsKeys::intern(&recorder);
        Simulator {
            nodes: NodeCapacity::from_cluster(cluster),
            job_mgr: JobManager::new(),
            apps: Vec::new(),
            arrivals: Vec::new(),
            placement: Placement::empty(),
            blocked_until: BTreeMap::new(),
            metrics,
            config,
            outages: Vec::new(),
            dips: Vec::new(),
            overcommit: None,
            elasticity: None,
            resize_events: Vec::new(),
            resize_at: 0,
            delta_tracker: crate::snapshot::DeltaTracker::default(),
            routing: None,
            recorder,
            obs,
            keys,
            app_keys: Vec::new(),
            route_keys: BTreeMap::new(),
            slo_ids: BTreeMap::new(),
            last_app_flush: Vec::new(),
            change_budget: None,
            now: SimTime::ZERO,
            next_control: SimTime::ZERO,
            cycles: 0,
            total_changes: 0,
        }
    }

    /// Install an observability [`Recorder`]. Forwarded to the routing
    /// tier immediately and to the controller at the start of
    /// [`Simulator::run`]. Recording never changes a metric series —
    /// enabling observability is bit-identical (pinned in
    /// `tests/observability.rs`).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = ObsKeys::intern(&recorder);
        if let Some(tier) = &mut self.routing {
            tier.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// The installed recorder (clone it to read reports after a run).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Register app `id` on the recorder's SLO board under `name`. Each
    /// control cycle the simulator measures the app's satisfied-CPU
    /// fraction, deficit and response time against `spec` and feeds the
    /// tracker, with the deficit decomposed into named causes. A no-op
    /// while the recorder is off.
    pub fn register_slo(&mut self, id: slaq_types::AppId, name: &str, spec: slaq_obs::SloSpec) {
        if self.recorder.is_enabled() {
            let slo_id = self.recorder.slo_register(name, spec);
            self.slo_ids.insert(id, slo_id);
        }
    }

    /// Declare the controller's per-cycle change budget so violation
    /// attribution can recognize budget-exhausted cycles. Purely
    /// observational — the simulator never enforces it.
    pub fn set_change_budget(&mut self, max_changes: Option<usize>) {
        self.change_budget = max_changes;
    }

    /// Schedule a node outage (failure injection). May be called multiple
    /// times, also for the same node.
    pub fn add_outage(&mut self, outage: NodeOutage) {
        self.outages.push(outage);
    }

    /// Schedule a partial-capacity window (chaos degradation): the
    /// node's CPU is scaled by the dip's factor during `[from, to)`
    /// while the node stays alive and keeps its memory.
    pub fn add_capacity_dip(&mut self, dip: crate::chaos::CapacityDip) {
        self.dips.push(dip);
    }

    /// Install the overbooking model. The controller is shown node
    /// capacities inflated by the overcommit ratios; each control
    /// cycle a seeded per-node draw ([`crate::chaos::bite_factor`])
    /// decides whether physical capacity bites, proportionally
    /// clipping everything granted on the affected node. Assumes
    /// transactional allocations are capped at their solver slices
    /// ([`SimConfig::cap_transactional`]).
    pub fn set_overcommit(&mut self, seed: u64, spec: crate::chaos::OvercommitSpec) {
        self.overcommit = Some((seed, spec));
    }

    /// Install the vertical-elasticity model: at seeded instants a
    /// random active job's remaining work grows or shrinks, surfacing
    /// to delta-aware controllers as resize churn through the
    /// [`DeltaTracker`](crate::snapshot::DeltaTracker).
    pub fn set_elasticity(&mut self, seed: u64, spec: crate::chaos::ElasticitySpec) {
        let mut events = Vec::new();
        let mut t = spec.first_secs;
        while (events.len() as u32) < spec.max_events && t < self.config.horizon.as_secs() {
            events.push(SimTime::from_secs(t));
            t += spec.period_secs;
        }
        self.resize_events = events;
        self.resize_at = 0;
        self.elasticity = Some((seed, spec));
    }

    /// Nodes with *physical* capacities at instant `t`: a node inside
    /// an outage window contributes zero CPU and zero memory; one
    /// inside a dip window contributes scaled CPU.
    fn physical_nodes(&self, t: SimTime) -> Vec<NodeCapacity> {
        self.nodes
            .iter()
            .map(|n| {
                let down = self
                    .outages
                    .iter()
                    .any(|o| o.node == n.id && o.from <= t && t < o.to);
                if down {
                    return NodeCapacity {
                        id: n.id,
                        cpu: CpuMhz::ZERO,
                        mem: slaq_types::MemMb::ZERO,
                    };
                }
                let dip = self
                    .dips
                    .iter()
                    .filter(|d| d.node == n.id && d.from <= t && t < d.to)
                    .map(|d| d.cpu_factor)
                    .fold(1.0, f64::min);
                if dip < 1.0 {
                    NodeCapacity {
                        id: n.id,
                        cpu: n.cpu * dip,
                        mem: n.mem,
                    }
                } else {
                    *n
                }
            })
            .collect()
    }

    /// Nodes with *advertised* capacities at instant `t`: the physical
    /// capacities, inflated by the overcommit ratios when overbooking
    /// is on. This is what the controller senses and what enacted
    /// placements are validated against.
    fn effective_nodes(&self, t: SimTime) -> Vec<NodeCapacity> {
        let mut nodes = self.physical_nodes(t);
        if let Some((_, oc)) = &self.overcommit {
            for n in &mut nodes {
                n.cpu = n.cpu * oc.cpu_ratio;
                n.mem = slaq_types::MemMb::new((n.mem.as_u64() as f64 * oc.mem_ratio) as u64);
            }
        }
        nodes
    }

    /// Earliest outage or capacity-dip boundary (start or end) after `t`.
    fn next_outage_event(&self, t: SimTime) -> SimTime {
        let mut earliest = SimTime::NEVER;
        for (from, to) in self
            .outages
            .iter()
            .map(|o| (o.from, o.to))
            .chain(self.dips.iter().map(|d| (d.from, d.to)))
        {
            if from > t {
                earliest = earliest.min(from);
            }
            if to > t {
                earliest = earliest.min(to);
            }
        }
        earliest
    }

    /// Next pending elasticity resize instant (`NEVER` if none).
    fn next_resize_event(&self) -> SimTime {
        self.resize_events
            .get(self.resize_at)
            .copied()
            .unwrap_or(SimTime::NEVER)
    }

    /// Apply every elasticity resize due at or before `now`: a seeded
    /// draw picks one active job and grows or shrinks its remaining
    /// work. Deterministic per event index, independent of controller
    /// choices only insofar as the active-job set is — which is exactly
    /// the churn signal the delta path must absorb.
    fn apply_resizes(&mut self) {
        let Some((seed, el)) = self.elasticity else {
            return;
        };
        while self.resize_at < self.resize_events.len()
            && self.resize_events[self.resize_at] <= self.now
        {
            let k = self.resize_at as u64;
            self.resize_at += 1;
            let active: Vec<JobId> = self
                .job_mgr
                .jobs()
                .iter()
                .filter(|j| j.is_active() && j.remaining.as_f64() > 0.0)
                .map(|j| j.id)
                .collect();
            if active.is_empty() {
                continue;
            }
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(
                seed ^ 0x5265_7369_7a65_4a6f ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15), // "ResizeJo"
            );
            let target = active[(rng.next_u64() % active.len() as u64) as usize];
            let factor = if rng.next_u64() & 1 == 0 {
                el.grow_factor
            } else {
                el.shrink_factor
            };
            if let Ok(job) = self.job_mgr.job_mut(target) {
                job.remaining = job.remaining * factor;
            }
        }
    }

    /// Strip the placement of anything on nodes that are down at `now`:
    /// running jobs are force-suspended (they lose their in-flight work's
    /// node but keep their progress), instances vanish.
    fn apply_outages(&mut self) -> Result<()> {
        let down: Vec<slaq_types::NodeId> = self
            .effective_nodes(self.now)
            .iter()
            .filter(|n| n.cpu.is_zero())
            .map(|n| n.id)
            .collect();
        if down.is_empty() {
            return Ok(());
        }
        let victims: Vec<JobId> = self
            .placement
            .jobs
            .iter()
            .filter(|&(_, &(n, _))| down.contains(&n))
            .map(|(&j, _)| j)
            .collect();
        for job in victims {
            self.job_mgr.job_mut(job)?.suspend()?;
            self.placement.jobs.remove(&job);
            self.blocked_until.remove(&job);
        }
        for slices in self.placement.apps.values_mut() {
            slices.retain(|n, _| !down.contains(n));
        }
        Ok(())
    }

    /// Register a transactional application.
    pub fn add_app(&mut self, app: TransactionalRuntime) {
        self.app_keys.push(AppMetricKeys {
            rt: self.metrics.intern(app.rt_metric_key()),
            utility: self.metrics.intern(app.utility_metric_key()),
        });
        self.last_app_flush.push(None);
        self.apps.push(app);
    }

    /// Install a request-level routing tier. Each control cycle the
    /// simulator batches every app's requests, routes them across the
    /// app's live instances, and feeds the resulting effective-work
    /// discount (and, for affinity-publishing tiers, per-node warmth)
    /// back into the sensed observations.
    pub fn set_routing(&mut self, mut tier: slaq_routing::RoutingTier) {
        if self.recorder.is_enabled() {
            tier.set_recorder(self.recorder.clone());
        }
        self.routing = Some(tier);
    }

    /// The routing tier, if one is installed (inspection in tests).
    pub fn routing(&self) -> Option<&slaq_routing::RoutingTier> {
        self.routing.as_ref()
    }

    /// Queue job arrivals (merged with any already queued).
    pub fn add_arrivals(&mut self, mut stream: Vec<(SimTime, JobSpec)>) {
        self.arrivals.append(&mut stream);
        self.arrivals
            .sort_by(|a, b| b.0.total_cmp(a.0).then(b.1.name.cmp(&a.1.name)));
    }

    /// Access the job manager (inspection in tests/experiments).
    pub fn jobs(&self) -> &JobManager {
        &self.job_mgr
    }

    /// The placement currently in force.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    fn blocked_set(&self) -> BTreeSet<JobId> {
        self.blocked_until
            .iter()
            .filter(|&(_, &t)| t > self.now)
            .map(|(&j, _)| j)
            .collect()
    }

    fn job_caps(&self) -> BTreeMap<JobId, CpuMhz> {
        self.job_mgr
            .jobs()
            .iter()
            .filter(|j| j.is_running())
            .map(|j| (j.id, j.spec.max_speed))
            .collect()
    }

    /// Validation requests reflecting the *current* entity population.
    fn validation_requests(&self, placement: &Placement) -> (Vec<AppRequest>, Vec<JobRequest>) {
        let apps: Vec<AppRequest> = self
            .apps
            .iter()
            .map(|a| AppRequest {
                id: a.id,
                demand: placement.app_alloc(a.id),
                mem_per_instance: a.spec.mem_per_instance,
                min_instances: 0,
                max_instances: a.spec.max_instances,
                affinity: Vec::new(),
            })
            .collect();
        let jobs: Vec<JobRequest> = self
            .job_mgr
            .jobs()
            .iter()
            .map(|j| JobRequest {
                id: j.id,
                demand: placement.job_alloc(j.id),
                mem: j.spec.mem,
                running_on: match j.state {
                    JobState::Running { node } => Some(node),
                    _ => None,
                },
                affinity: j.state.node(),
                priority: 0.0,
            })
            .collect();
        (apps, jobs)
    }

    /// Enact a controller-issued placement: validate, then apply the diff
    /// as job lifecycle transitions with their overheads.
    fn enact(&mut self, next: Placement, live_nodes: &[NodeCapacity]) -> Result<usize> {
        // Structural checks against live entities.
        for &job in next.jobs.keys() {
            let j = self.job_mgr.job(job)?;
            if !j.is_active() {
                return Err(SlaqError::IllegalState(format!(
                    "controller placed completed {job}"
                )));
            }
        }
        let (apps, jobs) = self.validation_requests(&next);
        next.validate(live_nodes, &apps, &jobs)?;

        let changes = next.diff(&self.placement);
        for change in &changes {
            match *change {
                PlacementChange::StartJob { job, node } => {
                    let j = self.job_mgr.job_mut(job)?;
                    let overhead = match j.state {
                        JobState::Pending => {
                            j.start(node, self.now)?;
                            self.config.overheads.start
                        }
                        JobState::Suspended { .. } => {
                            j.resume(node)?;
                            self.config.overheads.resume
                        }
                        _ => {
                            return Err(SlaqError::IllegalState(format!(
                                "{job} cannot start from {:?}",
                                j.state
                            )))
                        }
                    };
                    if !overhead.is_zero() {
                        self.blocked_until.insert(job, self.now + overhead);
                    }
                }
                PlacementChange::SuspendJob { job, .. } => {
                    self.job_mgr.job_mut(job)?.suspend()?;
                    self.blocked_until.remove(&job);
                }
                PlacementChange::MigrateJob { job, to, .. } => {
                    self.job_mgr.job_mut(job)?.migrate(to)?;
                    let overhead = self.config.overheads.migrate;
                    if !overhead.is_zero() {
                        self.blocked_until.insert(job, self.now + overhead);
                    }
                }
                // Instances are stateless in the simulator: the new
                // placement map is the whole truth.
                PlacementChange::StartInstance { .. } | PlacementChange::StopInstance { .. } => {}
            }
        }
        self.placement = next;
        Ok(changes.len())
    }

    /// Per-node clip factors (all `< 1`) for nodes whose granted CPU
    /// exceeds this cycle's *true* capacity under the overbooking
    /// model. Empty when overbooking is off or nothing bites — the
    /// common case, so callers can skip all clipping work.
    fn overcommit_node_clip(
        &self,
        job_speeds: &BTreeMap<JobId, CpuMhz>,
    ) -> BTreeMap<slaq_types::NodeId, f64> {
        let mut clip = BTreeMap::new();
        let Some((seed, oc)) = &self.overcommit else {
            return clip;
        };
        let mut granted: BTreeMap<slaq_types::NodeId, f64> = BTreeMap::new();
        for (j, &(n, _)) in &self.placement.jobs {
            *granted.entry(n).or_insert(0.0) += job_speeds.get(j).map_or(0.0, |s| s.as_f64());
        }
        for slices in self.placement.apps.values() {
            for (&n, g) in slices {
                *granted.entry(n).or_insert(0.0) += g.as_f64();
            }
        }
        for node in self.physical_nodes(self.now) {
            let g = granted.get(&node.id).copied().unwrap_or(0.0);
            if g <= 0.0 {
                continue;
            }
            let truth = node.cpu.as_f64()
                * crate::chaos::bite_factor(*seed, self.cycles as u64, node.id, oc);
            if g > truth {
                clip.insert(node.id, (truth / g).max(0.0));
            }
        }
        clip
    }

    /// Clip granted speeds to true per-node capacity when overbooking
    /// bites: every job grant and app slice on a bitten node is scaled
    /// by that node's clip factor. A no-op when nothing bites.
    fn apply_overcommit(
        &self,
        job_speeds: &mut BTreeMap<JobId, CpuMhz>,
        app_speeds: &mut BTreeMap<slaq_types::AppId, CpuMhz>,
    ) {
        let clip = self.overcommit_node_clip(job_speeds);
        if clip.is_empty() {
            return;
        }
        for (j, &(n, _)) in &self.placement.jobs {
            if let Some(&f) = clip.get(&n) {
                if let Some(s) = job_speeds.get_mut(j) {
                    *s = *s * f;
                }
            }
        }
        for (a, slices) in &self.placement.apps {
            if slices.keys().any(|n| clip.contains_key(n)) {
                let delivered: f64 = slices
                    .iter()
                    .map(|(n, g)| g.as_f64() * clip.get(n).copied().unwrap_or(1.0))
                    .sum();
                app_speeds.insert(*a, CpuMhz::new(delivered));
            }
        }
    }

    /// Next completion instant under current speeds (`NEVER` if none).
    fn next_completion(&self, speeds: &BTreeMap<JobId, CpuMhz>) -> SimTime {
        let mut earliest = SimTime::NEVER;
        for j in self.job_mgr.jobs() {
            if !j.is_running() {
                continue;
            }
            let speed = speeds.get(&j.id).copied().unwrap_or(CpuMhz::ZERO);
            if speed.is_zero() {
                continue;
            }
            let t = self.now + SimDuration::from_secs(j.remaining.secs_at(speed));
            earliest = earliest.min(t);
        }
        earliest
    }

    /// Run to the horizon under `controller`.
    pub fn run(&mut self, controller: &mut dyn Controller) -> Result<SimReport> {
        // `SLAQ_TRACE` is an alias for installing an echoing recorder:
        // the structured event log replaces the old ad-hoc eprintln
        // tracer. Resolved once per run, not per event.
        if std::env::var_os("SLAQ_TRACE").is_some() && !self.recorder.is_enabled() {
            self.set_recorder(Recorder::with_echo(true));
        }
        if self.recorder.is_enabled() {
            controller.set_recorder(self.recorder.clone());
        }
        loop {
            let blocked = self.blocked_set();
            let caps = self.job_caps();
            let live_nodes = self.effective_nodes(self.now);
            let (mut job_speeds, mut app_speeds) = effective_speeds(
                &live_nodes,
                &self.placement,
                &caps,
                &blocked,
                self.config.cap_transactional,
            );
            if self.overcommit.is_some() {
                self.apply_overcommit(&mut job_speeds, &mut app_speeds);
            }

            // Next event.
            let t_arrival = self
                .arrivals
                .last()
                .map(|&(t, _)| t)
                .unwrap_or(SimTime::NEVER);
            let t_done = self.next_completion(&job_speeds);
            let t_unblock = self
                .blocked_until
                .values()
                .filter(|&&t| t > self.now)
                .fold(SimTime::NEVER, |acc, &t| acc.min(t));
            let t_next = self
                .next_control
                .min(t_arrival)
                .min(t_done)
                .min(t_unblock)
                .min(self.next_outage_event(self.now))
                .min(self.next_resize_event())
                .min(self.config.horizon);
            if self.recorder.is_enabled() {
                self.recorder.emit(
                    self.obs.event,
                    &[
                        ("now", self.now.as_secs()),
                        ("next", t_next.as_secs()),
                        ("ctrl", self.next_control.as_secs()),
                        ("arr", t_arrival.as_secs()),
                        ("done", t_done.as_secs()),
                        ("unblk", t_unblock.as_secs()),
                    ],
                );
            }

            // Advance to t_next. Run the advance even for zero-length
            // intervals: sub-nanosecond work remainders complete through
            // the tolerance in `Job::advance` (otherwise the completion
            // event would re-fire at the same instant forever).
            let dt = t_next - self.now;
            let done = self.job_mgr.advance_running(self.now, dt, |id| {
                job_speeds.get(&id).copied().unwrap_or(CpuMhz::ZERO)
            });
            for (job, _) in done {
                self.placement.jobs.remove(&job);
                self.blocked_until.remove(&job);
            }
            if !dt.is_zero() {
                for app in &mut self.apps {
                    let alloc = app_speeds.get(&app.id).copied().unwrap_or(CpuMhz::ZERO);
                    app.observe_interval(self.now, dt, alloc);
                }
            }
            let prev_now = self.now;
            self.now = t_next;
            self.apply_outages()?;
            self.apply_resizes();

            if self.now >= self.config.horizon && prev_now >= self.config.horizon {
                break;
            }

            // Arrivals at or before now.
            while self.arrivals.last().is_some_and(|&(t, _)| t <= self.now) {
                let (t, spec) = self.arrivals.pop().expect("checked non-empty");
                self.job_mgr.submit(spec, t)?;
            }

            // Control cycle.
            if self.now >= self.next_control {
                self.run_control(controller)?;
                self.next_control = self.now + self.config.control_period;
            }

            // Drop stale unblock entries.
            let now = self.now;
            self.blocked_until.retain(|_, &mut t| t > now);

            if self.now >= self.config.horizon {
                break;
            }
        }

        Ok(SimReport {
            metrics: self.metrics.clone(),
            job_stats: self.job_mgr.stats(),
            cycles: self.cycles,
            total_changes: self.total_changes,
        })
    }

    /// One control cycle, staged as the control plane's pipeline:
    /// **sense** (flush cycle measurements, collect observations),
    /// **solve** (hand the inputs to the controller — synchronous
    /// controllers solve inline; a pipelined controller snapshots them
    /// via [`crate::SensingSnapshot`] and returns an earlier cycle's
    /// reconciled plan instead), and **actuate** (enact the returned
    /// placement and record the mechanical series).
    fn run_control(&mut self, controller: &mut dyn Controller) -> Result<()> {
        let _cycle = self.recorder.span(self.obs.cycle);
        // Stamp the audit ring before any stage runs, so decisions made
        // anywhere in this cycle (router, solver, reconcile) tag it.
        self.recorder.audit_begin_cycle(self.cycles as u64);
        // --- route ---
        {
            let _route = self.recorder.span(self.obs.route);
            self.route_cycle();
        }
        // --- sense ---
        let sense_span = self.recorder.span(self.obs.sense);
        let observations = self.sense();
        // Effective capacities are computed once here and lent to every
        // stage of the cycle (solve, enact's validation, the metric
        // series) instead of each re-deriving them from the outage table.
        let live_nodes = self.effective_nodes(self.now);
        let inputs = ControlInputs {
            now: self.now,
            nodes: &live_nodes,
            current: &self.placement,
            jobs: &self.job_mgr,
            apps: &observations,
        };
        let delta = self.delta_tracker.observe(&inputs);
        self.recorder
            .observe(self.obs.delta_dirty, delta.len() as u64);
        drop(sense_span);
        // --- solve ---
        let next = {
            let _solve = self.recorder.span(self.obs.solve);
            controller.control_delta(&inputs, Some(&delta), &mut self.metrics)
        };
        // --- actuate ---
        let actuate_span = self.recorder.span(self.obs.actuate);
        let n_changes = self.enact(next, &live_nodes)?;
        self.cycles += 1;
        self.total_changes += n_changes;
        self.record_cycle_series(n_changes, &live_nodes);
        if self.recorder.is_enabled() && !self.slo_ids.is_empty() {
            self.observe_slos(&live_nodes, n_changes);
        }
        drop(actuate_span);
        Ok(())
    }

    /// The SLO pass, run after actuation on observed runs only: measure
    /// each registered app's satisfied-CPU fraction against the work it
    /// offered this cycle, decompose any deficit into named causes, and
    /// feed the recorder's SLO board. Reads simulation state and writes
    /// only into the recorder — observes, never steers.
    ///
    /// Attribution is a sequential min-chain per app, in documented
    /// order — outage loss, routing-discount mismatch, pipeline
    /// staleness, change-budget exhaustion, overbooking clip — with the
    /// cluster-capacity cause taking the exact remainder, so the parts
    /// always sum to the deficit (`tests/slo_audit.rs` pins this on
    /// every preset).
    fn observe_slos(&self, live_nodes: &[NodeCapacity], n_changes: usize) {
        let t = self.now;
        // Cluster-level context shared by every app's chain.
        let offline_cpu: f64 = self
            .nodes
            .iter()
            .zip(live_nodes)
            .map(|(full, live)| (full.cpu.as_f64() - live.cpu.as_f64()).max(0.0))
            .sum();
        let online_cpu: f64 = live_nodes.iter().map(|n| n.cpu.as_f64()).sum();
        let total_alloc =
            self.placement.total_app_alloc().as_f64() + self.placement.total_job_alloc().as_f64();
        let spare = (online_cpu - total_alloc).max(0.0);
        // A pipelined controller stamps the enacted plan's staleness at
        // the enactment instant; any other cycle reads 0.
        let staleness = match self.metrics.series("pipeline_staleness_cycles").last() {
            Some(&(ts, v)) if ts == t.as_secs() => v,
            _ => 0.0,
        };
        let budget_hit = self.change_budget.is_some_and(|b| b > 0 && n_changes >= b);

        // When overbooking bites this cycle, apps deliver less than
        // their placed slices; the shortfall becomes the `overcommit`
        // cause. The clip map mirrors the run loop's upcoming interval
        // (same placement, same cycle key), and stays empty — changing
        // no float — whenever overbooking is off or nothing bites.
        let clip = if self.overcommit.is_some() {
            let (job_speeds, _) = effective_speeds(
                live_nodes,
                &self.placement,
                &self.job_caps(),
                &self.blocked_set(),
                self.config.cap_transactional,
            );
            self.overcommit_node_clip(&job_speeds)
        } else {
            BTreeMap::new()
        };

        // First pass: offered work and deficit per app, plus the total
        // deficit that proportions the shared causes.
        // Rows are (app ix, raw, offered, deficit, delivered).
        let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
        let mut total_deficit = 0.0;
        for (i, app) in self.apps.iter().enumerate() {
            if !self.slo_ids.contains_key(&app.id) {
                continue;
            }
            let raw = app.true_lambda(t) * app.spec.service_per_request.as_f64();
            let offered = raw * app.route_discount();
            let alloc = self.placement.app_alloc(app.id).as_f64();
            let delivered = if clip.is_empty() {
                alloc
            } else {
                self.placement.apps.get(&app.id).map_or(0.0, |slices| {
                    slices
                        .iter()
                        .map(|(n, g)| g.as_f64() * clip.get(n).copied().unwrap_or(1.0))
                        .sum()
                })
            };
            let deficit = (offered - delivered).max(0.0);
            total_deficit += deficit;
            rows.push((i, raw, offered, deficit, delivered));
        }

        for (i, raw, offered, deficit, delivered) in rows {
            let app = &self.apps[i];
            let Some(&slo_id) = self.slo_ids.get(&app.id) else {
                continue;
            };
            let alloc = self.placement.app_alloc(app.id).as_f64();
            let satisfied = if offered <= 0.0 {
                1.0
            } else {
                (delivered / offered).clamp(0.0, 1.0)
            };
            let (rt_secs, utility) = match self.last_app_flush[i] {
                Some((rt, u)) => (Some(rt), Some(u)),
                None => (None, None),
            };
            let sample = slaq_obs::SloSample {
                satisfied,
                deficit_mhz: deficit,
                rt_secs,
                utility,
            };
            let share = if total_deficit > 0.0 {
                deficit / total_deficit
            } else {
                0.0
            };
            let mut rem = deficit;
            let outage_mhz = rem.min(offline_cpu * share);
            rem -= outage_mhz;
            let routing_mhz = rem.min((raw - offered).max(0.0));
            rem -= routing_mhz;
            let staleness_mhz = if staleness >= 1.0 {
                rem * (staleness / (staleness + 1.0))
            } else {
                0.0
            };
            rem -= staleness_mhz;
            let budget_mhz = if budget_hit {
                rem.min(spare * share)
            } else {
                0.0
            };
            rem -= budget_mhz;
            let overcommit_mhz = if clip.is_empty() {
                0.0
            } else {
                rem.min((alloc - delivered).max(0.0))
            };
            rem -= overcommit_mhz;
            let attr = slaq_obs::Attribution {
                outage_mhz,
                routing_mhz,
                staleness_mhz,
                budget_mhz,
                overcommit_mhz,
                capacity_mhz: rem,
            };
            self.recorder.slo_observe(slo_id, &sample, &attr);
        }
    }

    /// The routing stage, run before sensing: batch each app's cycle
    /// requests (counts, never individual events), apportion them across
    /// the app's live instances, and install the resulting effective-
    /// work discount on the runtime for the coming interval. Records the
    /// per-app warmth/discount series under interned keys plus the
    /// aggregate `route_requests` / `route_quality` / `route_discount`
    /// series. A no-op without an installed tier.
    fn route_cycle(&mut self) {
        let Some(tier) = self.routing.as_mut() else {
            return;
        };
        let t = self.now;
        let window = self.config.control_period;
        let mut total_requests: u64 = 0;
        let mut hit_weighted = 0.0;
        let mut disc_weighted = 0.0;
        let mut instances: Vec<(slaq_types::NodeId, f64)> = Vec::new();
        for app in &mut self.apps {
            let batch = app.request_batch(t, window);
            instances.clear();
            if let Some(slices) = self.placement.apps.get(&app.id) {
                instances.extend(slices.iter().map(|(&n, &c)| (n, c.as_f64())));
            }
            let out = tier.route_app(app.id, batch.count, &instances);
            app.set_route_discount(out.discount);
            let (warm_key, disc_key) = match self.route_keys.get(&app.id) {
                Some(&ks) => ks,
                None => {
                    let keys = tier.series_keys(app.id);
                    let ks = (
                        self.metrics.intern(&keys.warm),
                        self.metrics.intern(&keys.discount),
                    );
                    self.route_keys.insert(app.id, ks);
                    ks
                }
            };
            self.metrics.record_key(warm_key, t, out.warm_hit);
            self.metrics.record_key(disc_key, t, out.discount);
            total_requests += batch.count;
            hit_weighted += out.warm_hit * batch.count as f64;
            disc_weighted += out.discount * batch.count as f64;
        }
        self.metrics
            .record_key(self.keys.route_requests, t, total_requests as f64);
        if total_requests > 0 {
            let n = total_requests as f64;
            self.metrics
                .record_key(self.keys.route_quality, t, hit_weighted / n);
            self.metrics
                .record_key(self.keys.route_discount, t, disc_weighted / n);
        }
    }

    /// The sensing stage: flush per-app measurements of the cycle that
    /// just ended (recording the measured series) and collect the
    /// observations the controller may see. With an affinity-publishing
    /// routing tier installed, each observation also carries the tier's
    /// per-node warmth scores as a placement hint.
    fn sense(&mut self) -> Vec<AppObservation> {
        for (i, app) in self.apps.iter_mut().enumerate() {
            let flushed = app.flush_cycle();
            self.last_app_flush[i] = flushed.map(|(rt, u)| (rt.as_secs(), u));
            if let Some((rt, u)) = flushed {
                let keys = self.app_keys[i];
                self.metrics.record_key(keys.rt, self.now, rt.as_secs());
                self.metrics.record_key(keys.utility, self.now, u);
                self.metrics
                    .record_key(self.keys.trans_utility, self.now, u);
            }
        }
        let mut observations: Vec<AppObservation> =
            self.apps.iter().map(|a| a.observation(self.now)).collect();
        if let Some(tier) = &self.routing {
            if tier.publishes_affinity() {
                for obs in &mut observations {
                    obs.affinity = tier.affinity(obs.id);
                }
            }
        }
        observations
    }

    /// Record the mechanical per-cycle series after actuation.
    fn record_cycle_series(&mut self, n_changes: usize, live_nodes: &[NodeCapacity]) {
        let t = self.now;
        // Controller-neutral job satisfaction: expected utility of every
        // active job at its *current* effective speed (pending and
        // suspended jobs project at zero speed, i.e. the SLA floor).
        // Unlike the controller's hypothetical utility this makes no
        // fluid-divisibility assumption, so it is recorded for baselines
        // too and lets experiment E3 compare worst-off-workload
        // protection across controllers.
        {
            // Blocking (start/resume/migration latency) is a transient of
            // the sampling instant, not a statement about a job's future;
            // project with an empty blocked set.
            let caps = self.job_caps();
            let (job_speeds, _) = effective_speeds(
                live_nodes,
                &self.placement,
                &caps,
                &BTreeSet::new(),
                self.config.cap_transactional,
            );
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            let mut n = 0usize;
            for job in self.job_mgr.jobs() {
                if !job.is_active() {
                    continue;
                }
                let speed = job_speeds.get(&job.id).copied().unwrap_or(CpuMhz::ZERO);
                let u = slaq_jobs::JobUtility::of(job, t).projected_completion(speed);
                let u = job.spec.goal.utility_at(u);
                sum += u;
                min = min.min(u);
                n += 1;
            }
            if n > 0 {
                self.metrics
                    .record_key(self.keys.jobs_outlook, t, sum / n as f64);
                self.metrics.record_key(self.keys.jobs_outlook_min, t, min);
            }
        }
        self.metrics.record_key(
            self.keys.trans_alloc,
            t,
            self.placement.total_app_alloc().as_f64(),
        );
        self.metrics.record_key(
            self.keys.jobs_alloc,
            t,
            self.placement.total_job_alloc().as_f64(),
        );
        self.metrics
            .record_key(self.keys.changes, t, n_changes as f64);
        let stats = self.job_mgr.stats();
        self.metrics.record_key(
            self.keys.jobs_active,
            t,
            (stats.pending + stats.running + stats.suspended) as f64,
        );
        self.metrics
            .record_key(self.keys.jobs_running, t, stats.running as f64);
        self.metrics
            .record_key(self.keys.jobs_pending, t, stats.pending as f64);
        self.metrics
            .record_key(self.keys.jobs_suspended, t, stats.suspended as f64);
        self.metrics
            .record_key(self.keys.jobs_completed, t, stats.completed as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::{AppId, MemMb, NodeId, Work};
    use slaq_utility::{CompletionGoal, ResponseTimeGoal};

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 4, CpuMhz::new(3000.0), MemMb::new(4096))
    }

    fn config(horizon: f64) -> SimConfig {
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(horizon),
            overheads: OverheadConfig {
                start: SimDuration::ZERO,
                resume: SimDuration::ZERO,
                migrate: SimDuration::ZERO,
            },
            cap_transactional: false,
        }
    }

    fn job_spec(work_secs: f64, submit: f64) -> JobSpec {
        JobSpec {
            name: format!("j@{submit}"),
            total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::from_secs(submit),
                SimDuration::from_secs(work_secs),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    /// Controller that keeps whatever runs and FCFS-places every pending
    /// job on the first node with memory room, giving each its max speed
    /// if CPU remains.
    struct FcfsController;

    impl Controller for FcfsController {
        fn control(&mut self, inputs: &ControlInputs<'_>, _m: &mut MetricsSink) -> Placement {
            let mut next = inputs.current.clone();
            for job in inputs.jobs.jobs() {
                if !job.is_active() || next.jobs.contains_key(&job.id) {
                    continue;
                }
                // Find a node with memory and CPU room.
                for node in inputs.nodes {
                    let mem_used: u64 = inputs
                        .jobs
                        .jobs()
                        .iter()
                        .filter(|j| next.job_node(j.id) == Some(node.id))
                        .map(|j| j.spec.mem.as_u64())
                        .sum();
                    let cpu_used = next.node_cpu_used(node.id);
                    if mem_used + job.spec.mem.as_u64() <= node.mem.as_u64()
                        && (node.cpu - cpu_used).as_f64() >= job.spec.max_speed.as_f64()
                    {
                        next.jobs.insert(job.id, (node.id, job.spec.max_speed));
                        break;
                    }
                }
            }
            next
        }
    }

    /// Controller that returns a fixed sequence of placements.
    struct Scripted {
        script: Vec<Placement>,
        at: usize,
    }

    impl Controller for Scripted {
        fn control(&mut self, inputs: &ControlInputs<'_>, _m: &mut MetricsSink) -> Placement {
            let p = self
                .script
                .get(self.at)
                .cloned()
                .unwrap_or_else(|| inputs.current.clone());
            self.at += 1;
            p
        }
    }

    #[test]
    fn single_job_runs_to_completion_at_full_speed() {
        let mut sim = Simulator::new(&cluster(), config(3000.0));
        sim.add_arrivals(vec![(SimTime::ZERO, job_spec(1000.0, 0.0))]);
        let report = sim.run(&mut FcfsController).unwrap();
        assert_eq!(report.job_stats.completed, 1);
        assert_eq!(report.job_stats.goals_met, 1);
        assert!((report.job_stats.mean_achieved_utility - 1.0).abs() < 1e-9);
        // Arrival at 0, first control at 0 places it, completes at 1000.
        let done = sim.jobs().job(JobId::new(0)).unwrap();
        assert!(
            matches!(done.state, JobState::Completed { at } if (at.as_secs() - 1000.0).abs() < 1e-6)
        );
    }

    #[test]
    fn start_overhead_delays_completion() {
        let mut cfg = config(3000.0);
        cfg.overheads.start = SimDuration::from_secs(100.0);
        let mut sim = Simulator::new(&cluster(), cfg);
        sim.add_arrivals(vec![(SimTime::ZERO, job_spec(1000.0, 0.0))]);
        sim.run(&mut FcfsController).unwrap();
        let done = sim.jobs().job(JobId::new(0)).unwrap();
        assert!(
            matches!(done.state, JobState::Completed { at } if (at.as_secs() - 1100.0).abs() < 1e-6),
            "{:?}",
            done.state
        );
    }

    #[test]
    fn arrival_mid_experiment_waits_for_next_cycle() {
        let mut sim = Simulator::new(&cluster(), config(3000.0));
        // Arrives at 650 s; cycles at 0/600/1200 ⇒ placed at 1200.
        sim.add_arrivals(vec![(SimTime::from_secs(650.0), job_spec(500.0, 650.0))]);
        sim.run(&mut FcfsController).unwrap();
        let done = sim.jobs().job(JobId::new(0)).unwrap();
        assert!(
            matches!(done.state, JobState::Completed { at } if (at.as_secs() - 1700.0).abs() < 1e-6),
            "{:?}",
            done.state
        );
    }

    #[test]
    fn memory_constrains_concurrent_jobs_fcfs_queues_rest() {
        // 2 nodes × 3 job slots = 6 concurrent; submit 8 equal jobs.
        let mut sim = Simulator::new(&cluster(), config(4000.0));
        let arrivals: Vec<(SimTime, JobSpec)> = (0..8)
            .map(|i| (SimTime::ZERO, job_spec(1000.0, 0.0 + i as f64 * 0.0)))
            .collect();
        sim.add_arrivals(arrivals);
        let report = sim.run(&mut FcfsController).unwrap();
        // 6 finish at ~1000; the 2 queued start at the 1200 cycle, done 2200.
        assert_eq!(report.job_stats.completed, 8);
        let completed_at: Vec<f64> = sim
            .jobs()
            .jobs()
            .iter()
            .filter_map(|j| match j.state {
                JobState::Completed { at } => Some(at.as_secs()),
                _ => None,
            })
            .collect();
        assert_eq!(
            completed_at.iter().filter(|&&t| t < 1100.0).count(),
            6,
            "{completed_at:?}"
        );
        assert_eq!(completed_at.iter().filter(|&&t| t > 2000.0).count(), 2);
    }

    #[test]
    fn scripted_suspension_pauses_progress() {
        let mut run_then_suspend = Vec::new();
        let mut p0 = Placement::empty();
        p0.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(3000.0)));
        run_then_suspend.push(p0.clone()); // t=0: run
        run_then_suspend.push(Placement::empty()); // t=600: suspend
        run_then_suspend.push(p0); // t=1200: resume
        let mut sim = Simulator::new(&cluster(), config(3000.0));
        sim.add_arrivals(vec![(SimTime::ZERO, job_spec(1000.0, 0.0))]);
        let mut ctrl = Scripted {
            script: run_then_suspend,
            at: 0,
        };
        let report = sim.run(&mut ctrl).unwrap();
        // 600 s done before suspend; 400 s left after resume at 1200 ⇒ 1600.
        let done = sim.jobs().job(JobId::new(0)).unwrap();
        assert!(
            matches!(done.state, JobState::Completed { at } if (at.as_secs() - 1600.0).abs() < 1e-6),
            "{:?}",
            done.state
        );
        assert_eq!(report.job_stats.disruptions, 1);
    }

    #[test]
    fn overcommitted_placement_is_rejected() {
        // 4 jobs on one node: 4×1280 MB > 4096 MB.
        let mut bad = Placement::empty();
        for i in 0..4 {
            bad.jobs
                .insert(JobId::new(i), (NodeId::new(0), CpuMhz::new(1000.0)));
        }
        let mut sim = Simulator::new(&cluster(), config(2000.0));
        sim.add_arrivals(
            (0..4)
                .map(|_| (SimTime::ZERO, job_spec(1000.0, 0.0)))
                .collect(),
        );
        let mut ctrl = Scripted {
            script: vec![bad],
            at: 0,
        };
        let err = sim.run(&mut ctrl).unwrap_err();
        assert!(matches!(err, SlaqError::CapacityViolation { .. }), "{err}");
    }

    #[test]
    fn transactional_app_measures_rt_and_utility() {
        struct AppOnly;
        impl Controller for AppOnly {
            fn control(&mut self, inputs: &ControlInputs<'_>, _m: &mut MetricsSink) -> Placement {
                // One instance on each node, guarantee = half the node.
                let mut p = Placement::empty();
                for node in inputs.nodes {
                    p.apps
                        .entry(AppId::new(0))
                        .or_default()
                        .insert(node.id, node.cpu * 0.5);
                }
                p
            }
        }
        let mut sim = Simulator::new(&cluster(), config(1800.0));
        let spec = slaq_perfmodel::TransactionalSpec {
            name: "shop".into(),
            service_per_request: Work::new(2000.0),
            rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
            mem_per_instance: MemMb::new(1024),
            max_instances: 2,
            min_instances: 1,
            u_cap: 0.9,
        };
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), spec, Box::new(|_| 5.0), 0.5).unwrap(),
        );
        let report = sim.run(&mut AppOnly).unwrap();
        // Effective alloc = full cluster (work-conserving spare): 24 000.
        // RT = 2000/(24 000 − 10 000) ≈ 0.1429 s ⇒ u ≈ 0.714.
        let u = report.metrics.last("trans_utility").unwrap();
        assert!((u - (1.0 - 0.14285714 / 0.5)).abs() < 1e-3, "{u}");
        let rt = report.metrics.last("trans_rt_app0").unwrap();
        assert!((rt - 0.14285714).abs() < 1e-3, "{rt}");
    }

    #[test]
    fn metrics_track_job_population() {
        let mut sim = Simulator::new(&cluster(), config(2500.0));
        sim.add_arrivals(
            (0..3)
                .map(|i| {
                    (
                        SimTime::from_secs(100.0 * i as f64),
                        job_spec(5000.0, 100.0 * i as f64),
                    )
                })
                .collect(),
        );
        let report = sim.run(&mut FcfsController).unwrap();
        assert_eq!(report.metrics.last("jobs_running"), Some(3.0));
        assert!(report.cycles >= 4);
        assert!(report.total_changes >= 3);
    }
}
