//! # slaq-routing — the request-level routing tier
//!
//! The subsystem between workload generation and the placement layer:
//! where the placement controller decides *where instances sit*, this
//! crate decides *where requests land* — and feeds what it learns back
//! into the control cycle.
//!
//! Dataflow, mirroring the publisher → indexer → router split of
//! KV-cache-aware LLM routers (see ROADMAP.md):
//!
//! 1. **Publishers** — each placed instance publishes one
//!    [`InstanceReport`] per control cycle: the traffic share it just
//!    served and its utilization.
//! 2. **[`Aggregator`]** — the metrics plane. Folds the reports into
//!    per-instance *warmth* scores (an EWMA of routed share, a proxy for
//!    cache/data locality) and current load; drops state for vanished
//!    instances.
//! 3. **[`Router`]** — apportions a cycle's *aggregated* request batch
//!    (`slaq_workloads::RequestBatch`-scale counts, never individual
//!    requests) across live instances in fixed-size chunks, scoring
//!    each instance `warm_gain · warmth − load_penalty · overload`. At
//!    `temperature = 0` the choice is a pure argmax with an id
//!    tie-break; at `temperature > 0` it is a seeded softmax draw —
//!    deterministic per seed either way.
//! 4. **Feedback** — the share-weighted warmth of the routed cycle
//!    yields an effective-work multiplier
//!    ([`slaq_perfmodel::warm_work_discount`]) that the simulator feeds
//!    into the demand/SLA signal the utility controller optimizes, and
//!    the warmth scores surface as per-node affinity bonuses in the
//!    placement solver's candidate ordering.
//!
//! [`RoutingTier`] bundles the three stages plus interned metric-key
//! strings into the single object the simulator owns.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregator;
pub mod router;
pub mod tier;

pub use aggregator::{Aggregator, InstanceReport};
pub use router::{RouteOutcome, Router, RouterConfig};
pub use tier::{AppSeriesKeys, RoutingTier};
