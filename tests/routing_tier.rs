//! Gates for the request-level routing tier.
//!
//! 1. **Temperature 0 is a pure argmax.** With a single chunk the
//!    router must pick exactly the instance maximizing
//!    `warm_gain·warmth + load_penalty·capacity_share`, ties breaking
//!    to the lowest index (and instances arrive id-sorted, so the
//!    lowest node id). A deterministic case pins the multi-chunk
//!    tie-break order too.
//! 2. **Seeded reproducibility.** Two routers built from the same
//!    config — argmax *or* softmax — produce bit-identical outcomes
//!    over the same call sequence; the softmax stream comes from the
//!    config seed, never ambient entropy.
//! 3. **Pipelining composes.** On the `request-routing` preset under
//!    `Overlap{1}`, the router series are bit-identical between the
//!    batch and delta solver engines and across repeat runs. (Sync
//!    delta ≡ batch for the preset rides the corpus loop in
//!    `tests/delta_solve.rs`.)
//! 4. **Neutral routing is a no-op.** With `warm_gain = 0` (so the
//!    warm-work discount is exactly 1.0) and `placement_bias = 0`,
//!    every series the routing-off run records is reproduced bit for
//!    bit — the tier only *adds* its own `route_*` series.
//! 5. **The payoff invariant.** On the `request-routing` preset,
//!    affinity-aware routing beats uniform round-robin in the same
//!    run: higher warm-hit quality, lower work discount, more jobs
//!    finished, and more CPU released to the job tier.

use slaq::core::spec::{PipelineSpec, RoutingSpec, ScenarioSpec};
use slaq::prelude::{NodeId, SimTime};
use slaq::routing::{RouteOutcome, Router, RouterConfig};
use slaq::sim::SimReport;

/// Run a preset with the given routing override, capped to `cycles`
/// control cycles (`None` = the preset's full horizon).
fn run_preset(
    name: &str,
    routing: Option<RoutingSpec>,
    pipeline: PipelineSpec,
    delta: bool,
    cycles: Option<usize>,
) -> SimReport {
    let mut spec = ScenarioSpec::preset(name).expect("named preset");
    if let Some(r) = routing {
        spec.controller.routing = r;
    }
    spec.controller.pipeline = pipeline;
    if delta {
        spec.controller.solve = slaq::placement::SolveMode::Delta;
    }
    if let Some(c) = cycles {
        spec.timing.cap_to_cycles(c);
    }
    spec.run().unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Mean of a series over the report's whole recorded span.
fn mean(report: &SimReport, series: &str) -> f64 {
    report
        .metrics
        .mean_over(series, SimTime::ZERO, SimTime::from_secs(f64::INFINITY))
        .unwrap_or_else(|| panic!("series {series} missing"))
}

fn outcomes_identical(a: &RouteOutcome, b: &RouteOutcome) -> bool {
    a.shares == b.shares && a.warm_hit == b.warm_hit && a.discount == b.discount
}

mod argmax {
    use super::*;
    use proptest::prelude::*;

    // One chunk, zero temperature: the router is literally
    // `argmax_i (warm_gain·warmth_i + load_penalty·cap_share_i)` with
    // ties to the lowest index.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn single_chunk_zero_temperature_is_argmax(
            pairs in proptest::collection::vec((0.0f64..1.0, 0.5f64..4.0), 1..10),
        ) {
            let cfg = RouterConfig {
                temperature: 0.0,
                chunks: 1,
                ..RouterConfig::default()
            };
            let instances: Vec<(NodeId, f64)> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(_, cap))| (NodeId::new(i as u32), cap))
                .collect();
            let warmth: Vec<f64> = pairs.iter().map(|&(w, _)| w).collect();
            let total_cap: f64 = instances.iter().map(|&(_, c)| c).sum();

            let mut expect = 0usize;
            let mut best = f64::NEG_INFINITY;
            for i in 0..pairs.len() {
                let score =
                    cfg.warm_gain * warmth[i] + cfg.load_penalty * (instances[i].1 / total_cap);
                // Strict `>`: ties stay with the earlier (lower-id) index.
                if score > best {
                    best = score;
                    expect = i;
                }
            }

            let out = Router::new(cfg).route(1_000, &instances, &warmth);
            let winner = out
                .shares
                .iter()
                .find(|&&(_, s)| s > 0.0)
                .map(|&(n, _)| n)
                .expect("one instance takes the chunk");
            prop_assert_eq!(winner, NodeId::new(expect as u32));
            prop_assert_eq!(out.warm_hit, warmth[expect]);
        }
    }

    /// Fully tied scores spread chunk by chunk in id order: the load
    /// penalty pushes each successive chunk to the next instance, and
    /// the remainder chunks land on the lowest ids.
    #[test]
    fn tied_scores_spread_in_id_order() {
        let cfg = RouterConfig {
            temperature: 0.0,
            chunks: 5,
            ..RouterConfig::default()
        };
        let instances: Vec<(NodeId, f64)> = (0..3).map(|i| (NodeId::new(i), 1.0)).collect();
        let out = Router::new(cfg).route(500, &instances, &[0.25; 3]);
        let shares: Vec<f64> = out.shares.iter().map(|&(_, s)| s).collect();
        assert_eq!(shares, vec![2.0 / 5.0, 2.0 / 5.0, 1.0 / 5.0]);
    }
}

mod reproducibility {
    use super::*;
    use proptest::prelude::*;

    // Drive two routers built from the same config through the same
    // call sequence and demand bit-identical outcomes — at temperature
    // zero and with a seeded softmax alike.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn same_config_same_calls_same_outcomes(
            temperature in 0.0f64..1.5,
            seed in 0u64..1_000_000,
            calls in proptest::collection::vec(
                proptest::collection::vec((0.0f64..1.0, 0.5f64..4.0), 1..8),
                3..8,
            ),
        ) {
            // Snap sub-0.1 draws to exact zero so the argmax branch is
            // exercised too, not just small-temperature softmax.
            let temperature = if temperature < 0.1 { 0.0 } else { temperature };
            let cfg = RouterConfig {
                temperature,
                seed,
                ..RouterConfig::default()
            };
            let mut a = Router::new(cfg);
            let mut b = Router::new(cfg);
            for (requests, pairs) in calls.iter().enumerate() {
                let instances: Vec<(NodeId, f64)> = pairs
                    .iter()
                    .enumerate()
                    .map(|(i, &(_, cap))| (NodeId::new(i as u32), cap))
                    .collect();
                let warmth: Vec<f64> = pairs.iter().map(|&(w, _)| w).collect();
                let requests = 1 + requests as u64 * 37;
                let oa = a.route(requests, &instances, &warmth);
                let ob = b.route(requests, &instances, &warmth);
                prop_assert!(
                    outcomes_identical(&oa, &ob),
                    "diverged: {:?} vs {:?}",
                    oa,
                    ob
                );
            }
        }
    }
}

#[test]
fn route_series_identical_across_engines_and_repeats_under_overlap() {
    // Batch vs delta under Overlap{1}: the routing tier sits upstream
    // of the solver, so swapping the solve engine must not move a
    // single router sample (nor any other series — wall-clock excepted).
    let batch = run_preset(
        "request-routing",
        None,
        PipelineSpec::overlap(1),
        false,
        Some(5),
    );
    let delta = run_preset(
        "request-routing",
        None,
        PipelineSpec::overlap(1),
        true,
        Some(5),
    );
    for series in batch.metrics.names() {
        if series == "pipeline_solve_micros" {
            continue;
        }
        assert_eq!(
            batch.metrics.series(series),
            delta.metrics.series(series),
            "series {series} diverged between batch and delta under overlap"
        );
    }
    // And a repeat run reproduces the pipelined router series bit for
    // bit — the seeded softmax stream owes nothing to wall time.
    let again = run_preset(
        "request-routing",
        None,
        PipelineSpec::overlap(1),
        false,
        Some(5),
    );
    for series in ["route_requests", "route_quality", "route_discount"] {
        assert!(
            !batch.metrics.series(series).is_empty(),
            "router recorded no {series} samples"
        );
        assert_eq!(
            batch.metrics.series(series),
            again.metrics.series(series),
            "series {series} drifted across repeat runs"
        );
    }
}

#[test]
fn neutral_routing_reproduces_the_off_series_bit_for_bit() {
    // `warm_gain = 0` makes the warm-work discount exactly 1.0 and
    // `placement_bias = 0` keeps the solver affinity-free, so the tier
    // may only *add* `route_*` series — everything the routing-off run
    // records must come back bit-identical.
    let neutral = [
        RoutingSpec::Uniform {
            warm_gain: 0.0,
            warm_alpha: 0.3,
        },
        RoutingSpec::Affinity {
            temperature: 0.0,
            warm_gain: 0.0,
            warm_alpha: 0.3,
            load_penalty: 0.4,
            placement_bias: 0.0,
        },
    ];
    for preset in ["paper-small", "request-routing"] {
        let off = run_preset(
            preset,
            Some(RoutingSpec::Off),
            PipelineSpec::Sync,
            false,
            Some(4),
        );
        for spec in neutral {
            let on = run_preset(preset, Some(spec), PipelineSpec::Sync, false, Some(4));
            assert_eq!(off.cycles, on.cycles, "{preset}: cycle count");
            assert_eq!(
                off.job_stats.completed, on.job_stats.completed,
                "{preset}: completions"
            );
            for series in off.metrics.names() {
                assert_eq!(
                    off.metrics.series(series),
                    on.metrics.series(series),
                    "{preset}: series {series} perturbed by neutral {} routing",
                    spec.label()
                );
            }
            for series in on.metrics.names() {
                assert!(
                    series.starts_with("route_") || !off.metrics.series(series).is_empty(),
                    "{preset}: neutral routing invented non-router series {series}"
                );
            }
        }
    }
}

#[test]
fn affinity_routing_beats_uniform_on_the_request_routing_preset() {
    // The preset's acceptance invariant, same-run rather than golden:
    // on the skewed-affinity fleet, concentrating each app's requests
    // on warm instances shrinks per-request work, which lowers the
    // transactional demand the controller must satisfy and releases
    // CPU to the starved job tier.
    let affinity = run_preset("request-routing", None, PipelineSpec::Sync, false, None);
    let uniform = run_preset(
        "request-routing",
        Some(RoutingSpec::Uniform {
            warm_gain: 0.5,
            warm_alpha: 0.5,
        }),
        PipelineSpec::Sync,
        false,
        None,
    );

    let (aq, uq) = (
        mean(&affinity, "route_quality"),
        mean(&uniform, "route_quality"),
    );
    assert!(
        aq > uq + 0.1,
        "affinity warm-hit quality should clearly beat round-robin: {aq:.4} vs {uq:.4}"
    );
    let (ad, ud) = (
        mean(&affinity, "route_discount"),
        mean(&uniform, "route_discount"),
    );
    assert!(
        ad < ud,
        "affinity routing should save more per-request work: discount {ad:.4} vs {ud:.4}"
    );
    assert!(
        affinity.job_stats.completed > uniform.job_stats.completed,
        "released CPU should finish more jobs: {} vs {}",
        affinity.job_stats.completed,
        uniform.job_stats.completed
    );
    let (aj, uj) = (mean(&affinity, "jobs_alloc"), mean(&uniform, "jobs_alloc"));
    assert!(
        aj > uj * 1.2,
        "the job tier should gain CPU under affinity routing: {aj:.1} vs {uj:.1} MHz"
    );
    // The gain must not come out of the transactional tier's hide.
    let au = mean(&affinity, "trans_utility");
    assert!(
        au > 0.6,
        "transactional utility collapsed under affinity routing: {au:.4}"
    );
}
