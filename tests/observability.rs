//! The observability gate: turning the instrumentation plane on must be
//! invisible to the simulation — every metric series and job statistic
//! stays bit-identical across all corpus presets — while the exports
//! (run report, Chrome trace, Prometheus text) actually cover the
//! control cycle's phases. The recorder observes, never steers; this
//! gate is what keeps that contract honest.

use slaq::core::spec::{ObserveSpec, ScenarioSpec};
use slaq::obs::{chrome_trace_json, prometheus_text, run_report};
use slaq::sim::{SimReport, Simulator};

/// Run `cycles` control cycles of a preset with the given observability
/// setting, returning the report and the simulator (whose recorder
/// holds everything the run recorded).
fn run(name: &str, observe: ObserveSpec, cycles: u32) -> (SimReport, Simulator) {
    let mut spec = ScenarioSpec::preset(name).expect("named preset");
    spec.timing.horizon_secs = spec.timing.control_period_secs * cycles as f64;
    spec.controller.observe = observe;
    let scenario = spec.materialize().unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut controller = scenario.controller();
    let mut sim = scenario.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    let report = sim
        .run(controller.as_mut())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    (report, sim)
}

/// The tentpole pin: observation changes nothing. Metric series, job
/// statistics, cycle and change counts are bit-identical with the
/// recorder on and off, for every corpus preset.
#[test]
fn observation_is_bit_identical_on_every_preset() {
    for name in ScenarioSpec::preset_names() {
        let (off, off_sim) = run(name, ObserveSpec::Off, 3);
        let (on, on_sim) = run(name, ObserveSpec::On, 3);
        assert!(!off_sim.recorder().is_enabled());
        assert!(on_sim.recorder().is_enabled());
        assert_eq!(
            off.metrics, on.metrics,
            "{name}: metric series diverged under observation"
        );
        assert_eq!(off.job_stats, on.job_stats, "{name}: job stats diverged");
        assert_eq!(off.cycles, on.cycles, "{name}: cycle count diverged");
        assert_eq!(
            off.total_changes, on.total_changes,
            "{name}: change count diverged"
        );
        // And the observed run actually recorded something.
        assert!(
            !on_sim.recorder().names().is_empty(),
            "{name}: recorder enabled but empty"
        );
    }
}

#[test]
fn chrome_trace_is_valid_json_covering_the_control_phases() {
    let (_, sim) = run("paper-small", ObserveSpec::On, 4);
    let json = chrome_trace_json(sim.recorder());
    let v: serde::Value = serde_json::from_str(&json).expect("trace must parse as JSON");
    let events = serde::obj_get(&v, "traceEvents").expect("traceEvents key");
    let serde::Value::Arr(events) = events else {
        panic!("traceEvents must be an array, got {events:?}");
    };
    assert!(!events.is_empty(), "trace has no events");

    let str_of = |e: &serde::Value, key: &str| -> Option<String> {
        match serde::obj_get(e, key) {
            Ok(serde::Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };
    let mut complete_spans = 0usize;
    for e in events {
        let name = str_of(e, "name").expect("every event is named");
        assert!(!name.is_empty());
        // Mandatory trace-event fields.
        for key in ["ts", "pid", "tid"] {
            assert!(
                matches!(
                    serde::obj_get(e, key),
                    Ok(serde::Value::Int(_) | serde::Value::Float(_))
                ),
                "event {name}: missing numeric {key}"
            );
        }
        match str_of(e, "ph").expect("every event has a phase").as_str() {
            "X" => {
                assert!(
                    matches!(
                        serde::obj_get(e, "dur"),
                        Ok(serde::Value::Int(_) | serde::Value::Float(_))
                    ),
                    "complete event {name} lacks a duration"
                );
                complete_spans += 1;
            }
            "i" => {}
            other => panic!("unexpected phase {other:?} on {name}"),
        }
    }
    assert!(complete_spans > 0, "no complete (ph=X) spans in the trace");
    for span in ["cycle", "cycle.sense", "cycle.solve", "cycle.actuate"] {
        assert!(
            events
                .iter()
                .any(|e| str_of(e, "name").as_deref() == Some(span)),
            "trace is missing the {span} phase"
        );
    }
}

#[test]
fn run_report_covers_cycle_phases_and_solver_steps() {
    let (_, sim) = run("paper-small", ObserveSpec::On, 4);
    let report = run_report(sim.recorder());
    for needle in [
        "p50(us)",
        "p95(us)",
        "cycle.sense",
        "cycle.solve",
        "cycle.actuate",
        "control.equalize",
        "solve.step0",
        "solve.step1",
        "solve.step2",
        "solve.step3",
        "solve.step4",
        "solve.step5",
        "solve.step6",
        "solve.step7",
        "alloc.flow",
        "delta.dirty",
    ] {
        assert!(
            report.contains(needle),
            "run report missing {needle}:\n{report}"
        );
    }
}

#[test]
fn prometheus_dump_exposes_spans_as_histograms() {
    let (_, sim) = run("paper-small", ObserveSpec::On, 4);
    let text = prometheus_text(sim.recorder());
    // Span durations surface as `_us` histograms with cumulative buckets.
    assert!(text.contains("# TYPE cycle_solve_us histogram"), "{text}");
    assert!(text.contains("cycle_solve_us_bucket{le=\"+Inf\"}"));
    assert!(text.contains("cycle_solve_us_count"));
    // Value histograms keep their own name.
    assert!(text.contains("# TYPE delta_dirty histogram"));
}

/// The pipelined control plane records its own spans and forwards the
/// recorder through the worker into the wrapped controller's solver
/// stack.
#[test]
fn pipelined_runs_record_pipeline_and_solver_spans() {
    let mut spec = ScenarioSpec::preset("paper-small").expect("named preset");
    spec.timing.horizon_secs = spec.timing.control_period_secs * 4.0;
    spec.controller.pipeline = slaq::core::PipelineSpec::overlap(1);
    spec.controller.observe = ObserveSpec::On;
    let scenario = spec.materialize().unwrap();
    let mut controller = scenario.controller();
    let mut sim = scenario.build().unwrap();
    sim.run(controller.as_mut()).unwrap();
    let names = sim.recorder().names();
    for span in [
        "pipeline.solve",
        "pipeline.reconcile",
        "solve.step7.allocate",
    ] {
        assert!(
            names.iter().any(|n| n == span),
            "pipelined run missing {span}; recorded: {names:?}"
        );
    }
}

/// The `controller.observe` knob round-trips through spec JSON and old
/// spec files (no `observe` key) keep parsing with the default.
#[test]
fn observe_knob_round_trips_and_defaults_off() {
    let mut spec = ScenarioSpec::preset("paper-small").expect("named preset");
    spec.controller.observe = ObserveSpec::On;
    let json = spec.to_json().expect("serialize");
    let back = ScenarioSpec::from_json(&json).expect("reparse");
    assert_eq!(back.controller.observe, ObserveSpec::On);
    // A pre-knob spec file reads the key as absent (`obj_get` maps
    // missing keys to null): nulling it out must fall back to Off.
    let stripped = json.replace("\"observe\": \"On\"", "\"observe\": null");
    assert_ne!(stripped, json, "expected the knob in the serialized spec");
    let old = ScenarioSpec::from_json(&stripped).expect("pre-knob spec parses");
    assert_eq!(old.controller.observe, ObserveSpec::Off);
}
