//! Dense interning of sparse identifiers.
//!
//! The placement solver runs every control cycle over hundreds of nodes
//! and thousands of entities. Keying its hot state by [`crate::NodeId`] /
//! [`crate::AppId`] / [`crate::JobId`] forces tree lookups or `O(n)`
//! position scans inside inner loops; an [`Interner`] instead assigns each
//! id a contiguous `usize` *dense index* once, at problem-build time, so
//! all per-entity state lives in flat `Vec`s indexed by plain integers.
//!
//! Lookups from id → dense index happen only at the problem boundary
//! (translating the previous cycle's placement) and use binary search over
//! a sorted table — `O(log n)` with no hashing and no per-lookup
//! allocation. Dense → id is an array read.

/// Maps a set of ids to dense indices `0..len` (in first-seen order) and
/// back.
///
/// Duplicate ids keep their **first** occurrence's dense index; later
/// occurrences still consume an index (so dense indices always mirror the
/// source collection's positions) but are unreachable via [`Interner::dense`].
/// Placement problems never contain duplicates — the tolerance just keeps
/// the boundary total.
#[derive(Debug, Clone)]
pub struct Interner<I> {
    /// Dense index → id (source order).
    ids: Vec<I>,
    /// Sorted `(id, dense)` table for binary-search lookups.
    sorted: Vec<(I, u32)>,
}

// Manual impl: an empty interner needs no `I: Default`, unlike the
// derive's over-constrained bound.
impl<I> Default for Interner<I> {
    fn default() -> Self {
        Interner {
            ids: Vec::new(),
            sorted: Vec::new(),
        }
    }
}

impl<I: Copy + Ord> Interner<I> {
    /// Intern the given ids in iteration order.
    pub fn new(ids: impl IntoIterator<Item = I>) -> Self {
        let ids: Vec<I> = ids.into_iter().collect();
        assert!(ids.len() <= u32::MAX as usize, "interner overflow");
        let mut sorted: Vec<(I, u32)> = ids
            .iter()
            .enumerate()
            .map(|(dense, &id)| (id, dense as u32))
            .collect();
        // Stable order: by id, then by dense index, so duplicates resolve
        // to their first occurrence.
        sorted.sort_unstable();
        Interner { ids, sorted }
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id at a dense index. Panics on out-of-range indices (caller
    /// bugs: dense indices only come from this interner).
    #[inline]
    pub fn id(&self, dense: usize) -> I {
        self.ids[dense]
    }

    /// The dense index of an id, if interned.
    #[inline]
    pub fn dense(&self, id: I) -> Option<usize> {
        let at = self.sorted.partition_point(|&(k, _)| k < id);
        match self.sorted.get(at) {
            Some(&(k, dense)) if k == id => Some(dense as usize),
            _ => None,
        }
    }

    /// Iterate ids in dense order.
    pub fn iter(&self) -> impl Iterator<Item = I> + '_ {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn dense_indices_follow_source_order() {
        let ix = Interner::new([NodeId::new(9), NodeId::new(2), NodeId::new(5)]);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.id(0), NodeId::new(9));
        assert_eq!(ix.id(2), NodeId::new(5));
        assert_eq!(ix.dense(NodeId::new(9)), Some(0));
        assert_eq!(ix.dense(NodeId::new(2)), Some(1));
        assert_eq!(ix.dense(NodeId::new(5)), Some(2));
        assert_eq!(ix.dense(NodeId::new(7)), None);
        assert_eq!(ix.iter().collect::<Vec<_>>().len(), 3);
    }

    #[test]
    fn empty_interner() {
        let ix: Interner<NodeId> = Interner::new([]);
        assert!(ix.is_empty());
        assert_eq!(ix.dense(NodeId::new(0)), None);
    }

    #[test]
    fn duplicates_resolve_to_first_occurrence() {
        let ix = Interner::new([NodeId::new(3), NodeId::new(3), NodeId::new(1)]);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.dense(NodeId::new(3)), Some(0));
        assert_eq!(ix.dense(NodeId::new(1)), Some(2));
    }

    #[test]
    fn scales_to_large_sparse_id_spaces() {
        let ids: Vec<NodeId> = (0..10_000u32).map(|i| NodeId::new(i * 17 + 3)).collect();
        let ix = Interner::new(ids.iter().copied());
        for (dense, &id) in ids.iter().enumerate() {
            assert_eq!(ix.dense(id), Some(dense));
            assert_eq!(ix.id(dense), id);
        }
        assert_eq!(ix.dense(NodeId::new(1)), None);
    }
}
