//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the slaq benches use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `iter`,
//! `criterion_group!`/`criterion_main!` — as a simple wall-clock harness:
//! per benchmark it warms up, picks an iteration count targeting a fixed
//! measurement window, then reports mean/min time per iteration. Passing
//! `--test` (what `cargo test` does for harness-less bench targets) runs
//! every body exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
    }
}

/// Identifier combining a function name and a parameter rendering.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples (kept for API compatibility;
    /// the harness scales its measurement window with it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.label(&id.to_string());
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.label(&id.to_string());
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Close the group (no-op; println output is immediate).
    pub fn finish(self) {}

    fn label(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// Measurement result for one benchmark.
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure a closure. The routine's return value is passed through
    /// `black_box` so the optimizer cannot elide the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: find an iteration count that runs for
        // at least ~25 ms, then take several timed samples.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(25) || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample *= 2;
        }
        let samples = (self.sample_size / 10).clamp(3, 10);
        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += ns * iters_per_sample as f64;
            min_ns = min_ns.min(ns);
            total_iters += iters_per_sample;
        }
        self.result = Some(Measurement {
            mean_ns: total_ns / total_iters as f64,
            min_ns,
            iters: total_iters,
        });
    }

    fn report(&self, label: &str) {
        match &self.result {
            None => println!("{label:<48} (ran once, test mode)"),
            Some(m) => println!(
                "{label:<48} time: [mean {} min {}] ({} iters)",
                fmt_ns(m.mean_ns),
                fmt_ns(m.min_ns),
                m.iters
            ),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
