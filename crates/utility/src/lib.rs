//! # slaq-utility — utility functions and utility-equalization solvers
//!
//! The paper's central mechanism: *"We use monotonic and continuous utility
//! functions to represent the satisfaction of both transactional and
//! long-running workloads"*, and the allocation algorithm *"operates by
//! continuously stealing resources \[from\] the more satisfied applications to
//! later be given to the less satisfied applications"* until utility is
//! equalized.
//!
//! This crate provides:
//!
//! * [`PiecewiseLinear`] — monotone, continuous piecewise-linear curves with
//!   exact inverses, the representation used for every utility function in
//!   the system (`curve` module).
//! * SLA goal vocabulary (`goal` module): [`CompletionGoal`] for
//!   long-running jobs (utility of completion time) and
//!   [`ResponseTimeGoal`] for transactional applications (utility of
//!   response time), each compiling to a [`PiecewiseLinear`].
//! * The [`UtilityOfCpu`] abstraction (`entity` module): a monotone
//!   non-decreasing mapping from allocated CPU power to utility, with an
//!   inverse demand query ("how much CPU to reach utility *u*?"). Every
//!   transactional application and every long-running job is presented to
//!   the equalizer as one such entity.
//! * The equalization solvers (`equalize` module):
//!   [`equalize_bisection`] (exact max–min via bisection on the common
//!   utility level) and [`equalize_steal`] (the paper's iterative
//!   steal-from-the-most-satisfied loop). Tests assert they agree.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod curve;
pub mod entity;
pub mod equalize;
pub mod goal;

pub use curve::PiecewiseLinear;
pub use entity::{CappedLinearUtility, TabulatedUtility, UtilityOfCpu};
pub use equalize::{
    equalize_bisection, equalize_steal, equalize_weighted, EntityAllocation, EqEntity,
    EqualizeOptions, EqualizedAllocation,
};
pub use goal::{CompletionGoal, ResponseTimeGoal};

/// Utilities live in `[U_MIN, U_MAX]` across the workspace.
pub const U_MIN: f64 = -1.0;
/// See [`U_MIN`].
pub const U_MAX: f64 = 1.0;
