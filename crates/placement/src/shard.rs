//! Zone-partitioned (sharded) placement: parallel per-shard solves with a
//! cross-shard rebalance pass.
//!
//! One global [`Solver`] run works the whole fleet in a single lane —
//! historically `O(jobs × nodes)` scans (the ceiling PR 1's measurements
//! hit at 500 nodes / 3000 jobs), now `O(jobs · log nodes)` through the
//! [`CandidateHeap`], but still one sequential problem. Real fleets are
//! partitioned already (racks, availability zones, edge sites), and the
//! dense-index solver state makes per-partition problem *slices* cheap to
//! build. This module exploits that structure:
//!
//! 1. A [`ShardMap`] partitions the problem's nodes into shards according
//!    to a [`ShardPlan`] — per-zone labels, a fixed shard count, or the
//!    single global shard (the default, which preserves the unsharded
//!    behavior bit for bit).
//! 2. [`ShardedSolver`] assigns every job to one shard (running and
//!    affine jobs follow their node; pending jobs spread across shards by
//!    residual capacity), builds one sub-problem per shard, and solves
//!    the shards **in parallel** with per-shard long-lived
//!    [`Solver`]s (warm scratch + allocation-network reuse
//!    per shard; the `rayon` stand-in degrades to sequential offline, so
//!    parallelism returns for free on the real-crate swap).
//! 3. A **cross-shard rebalance pass** then migrates the most unsatisfied
//!    jobs — unplaced ones first, then running jobs short of their target
//!    — from over-subscribed shards onto nodes of shards with residual
//!    capacity, bounded by a configurable migration budget. Targets are
//!    selected through a shard-labeled [`CandidateHeap`] whose queries
//!    exclude the job's home shard (bit-identical to the scan it
//!    replaced).
//!
//! ### Fidelity vs. the global solver
//!
//! With one shard the sub-problem *is* the global problem and the
//! rebalance pass has no foreign shard to move anything to, so the
//! outcome is **bit-identical** to [`Solver::solve`](crate::Solver::solve)
//! (pinned by differential tests). With `k > 1` shards the engine trades
//! a bounded amount of placement quality for `k×` smaller lane problems
//! (and their allocation flows): applications split their fluid demand
//! across shards proportionally to shard capacity, and a job confined to
//! an over-subscribed shard is only rescued by the (budgeted) rebalance
//! pass. The corpus tests pin that gap. Under the sequential `rayon`
//! stand-in the lanes run one after another, so at the bench shapes the
//! heap-backed global solve is currently the faster engine; the sharded
//! engine's payoff is zone isolation and the thread parallelism that
//! returns with the real crate.

use crate::delta::{DeltaStats, SolveDelta};
use crate::heap::CandidateHeap;
use crate::placement::{Placement, PlacementChange};
use crate::problem::{AppRequest, PlacementProblem};
use crate::solver::{PlacementOutcome, SolveMode, Solver};
use rayon::prelude::*;
use slaq_obs::Recorder;
use slaq_types::{fcmp, AppId, CpuMhz, Interner, JobId, MemMb, NodeId, ShardId, ZoneId};
use std::collections::BTreeMap;

/// How to partition a problem's nodes into shards.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ShardPlan {
    /// One global shard: the unsharded solver path, bit for bit.
    #[default]
    Single,
    /// `k` contiguous, size-balanced shards (capped at the node count).
    Fixed(u32),
    /// One shard per distinct zone: `zone_of[node.id.raw()]` labels each
    /// node; ids beyond the table fall into `ZoneId(0)`.
    Zones(Vec<ZoneId>),
}

impl ShardPlan {
    /// `true` when this plan can only ever produce the single global
    /// shard (callers may then skip the sharded engine entirely).
    pub fn is_single(&self) -> bool {
        match self {
            ShardPlan::Single => true,
            ShardPlan::Fixed(k) => *k <= 1,
            ShardPlan::Zones(zones) => {
                let mut distinct = zones.iter().collect::<Vec<_>>();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() <= 1
            }
        }
    }
}

/// A concrete partition of one problem's nodes into shards.
///
/// Built per solve (node sets change under outages); all indices are
/// *dense* node indices, i.e. positions in `problem.nodes`.
#[derive(Debug, Clone, Default)]
pub struct ShardMap {
    /// Per dense node index: its shard.
    shard_of: Vec<ShardId>,
    /// Per shard: member dense node indices, in problem order.
    members: Vec<Vec<usize>>,
}

impl ShardMap {
    /// Partition `n_nodes` according to `plan`. Always yields at least
    /// one shard (possibly empty, for empty problems); node ids are
    /// looked up through `node_id` for zone labeling.
    pub fn build(plan: &ShardPlan, node_ids: &[NodeId]) -> ShardMap {
        let n = node_ids.len();
        match plan {
            ShardPlan::Single => ShardMap::contiguous(n, 1),
            ShardPlan::Fixed(k) => ShardMap::contiguous(n, (*k).max(1) as usize),
            ShardPlan::Zones(zone_of) => {
                let zone = |id: NodeId| -> ZoneId {
                    zone_of
                        .get(id.index())
                        .copied()
                        .unwrap_or_else(|| ZoneId::new(0))
                };
                // Distinct zones present, ascending: shard rank = zone rank.
                let mut zones: Vec<ZoneId> = node_ids.iter().map(|&id| zone(id)).collect();
                zones.sort_unstable();
                zones.dedup();
                if zones.is_empty() {
                    return ShardMap::contiguous(0, 1);
                }
                let rank =
                    |z: ZoneId| -> usize { zones.binary_search(&z).expect("zone collected above") };
                let mut members = vec![Vec::new(); zones.len()];
                let mut shard_of = Vec::with_capacity(n);
                for (ni, &id) in node_ids.iter().enumerate() {
                    let s = rank(zone(id));
                    shard_of.push(ShardId::new(s as u32));
                    members[s].push(ni);
                }
                ShardMap { shard_of, members }
            }
        }
    }

    /// `k` contiguous shards over `0..n`, sizes differing by at most one.
    fn contiguous(n: usize, k: usize) -> ShardMap {
        let k = k.clamp(1, n.max(1));
        let mut members = Vec::with_capacity(k);
        let mut shard_of = vec![ShardId::new(0); n];
        for s in 0..k {
            let lo = s * n / k;
            let hi = (s + 1) * n / k;
            members.push((lo..hi).collect::<Vec<usize>>());
            for slot in &mut shard_of[lo..hi] {
                *slot = ShardId::new(s as u32);
            }
        }
        ShardMap { shard_of, members }
    }

    /// Number of shards (≥ 1).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the map holds no shards. A built map always holds at
    /// least one, so this only reads `true` on a default-constructed
    /// value (the method exists to satisfy the `len`/`is_empty` pairing
    /// convention); single-shard detection belongs to
    /// [`ShardPlan::is_single`].
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Shard of a dense node index.
    #[inline]
    pub fn shard_of(&self, dense_node: usize) -> ShardId {
        self.shard_of[dense_node]
    }

    /// Member dense node indices of one shard, in problem order.
    #[inline]
    pub fn members(&self, shard: ShardId) -> &[usize] {
        &self.members[shard.index()]
    }
}

/// One shard's long-lived solve lane: its persistent warm [`Solver`] and
/// the sub-problem buffer rebuilt (in place) every cycle.
#[derive(Debug, Clone, Default)]
struct Lane {
    solver: Solver,
    problem: PlacementProblem,
    /// Dense job index (in the *outer* problem) of each lane job, parallel
    /// to `problem.jobs`.
    job_src: Vec<usize>,
}

/// A sharded drop-in for [`Solver`]: same `solve(problem, prev) →
/// PlacementOutcome` interface, internally zone-partitioned.
///
/// Construct once per controller with a [`ShardPlan`] and a rebalance
/// budget, then call [`ShardedSolver::solve`] every cycle; per-shard
/// solvers stay warm across cycles exactly like a long-lived global
/// [`Solver`] does.
#[derive(Debug, Clone, Default)]
pub struct ShardedSolver {
    plan: ShardPlan,
    /// Max cross-shard migrations/placements per cycle (the rebalance
    /// pass's change budget, on top of the per-shard budgets).
    rebalance_budget: usize,
    /// Solve mode applied to every lane solver (lanes are created lazily
    /// as the shard count settles, so the mode is re-asserted per solve).
    mode: SolveMode,
    lanes: Vec<Lane>,
    // ---- per-cycle scratch ----
    job_lane: Vec<usize>,
    lane_free: Vec<f64>,
    lane_weight: Vec<usize>,
    ordered_jobs: Vec<usize>,
    cpu_free: Vec<f64>,
    mem_free: Vec<MemMb>,
    /// Rebalance-pass candidate heap over *all* nodes, shard-labeled so
    /// a job's home shard can be excluded per query (warm-reused like
    /// the lane solvers' heaps).
    heap: CandidateHeap,
    /// Observability handle: phase spans over split/solve/merge/rebalance
    /// plus a cross-shard migration counter. Observes only — sharding
    /// decisions never read it.
    recorder: Recorder,
    obs: ShardObsKeys,
}

/// Interned span/counter keys for the sharded engine's phases.
#[derive(Debug, Clone, Copy, Default)]
struct ShardObsKeys {
    split: slaq_obs::Key,
    lanes: slaq_obs::Key,
    merge: slaq_obs::Key,
    rebalance: slaq_obs::Key,
    migrations: slaq_obs::Key,
}

impl ShardObsKeys {
    fn intern(recorder: &Recorder) -> Self {
        ShardObsKeys {
            split: recorder.key("shard.split"),
            lanes: recorder.key("shard.lanes"),
            merge: recorder.key("shard.merge"),
            rebalance: recorder.key("shard.rebalance"),
            migrations: recorder.key("shard.migrations"),
        }
    }
}

impl ShardedSolver {
    /// A sharded solver following `plan`, with at most `rebalance_budget`
    /// cross-shard moves per cycle.
    pub fn new(plan: ShardPlan, rebalance_budget: usize) -> Self {
        ShardedSolver {
            plan,
            rebalance_budget,
            ..ShardedSolver::default()
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Same sharded solver, in the given [`SolveMode`] (builder form).
    pub fn with_mode(mut self, mode: SolveMode) -> Self {
        self.set_mode(mode);
        self
    }

    /// Switch the solve mode; applied to every lane solver, including
    /// lanes created later when the shard count changes.
    pub fn set_mode(&mut self, mode: SolveMode) {
        self.mode = mode;
        for lane in &mut self.lanes {
            lane.solver.set_mode(mode);
        }
    }

    /// The mode in force.
    pub fn mode(&self) -> SolveMode {
        self.mode
    }

    /// Install an observability [`Recorder`]: the sharded engine times
    /// its split/solve/merge/rebalance phases (`shard.*` spans) and
    /// counts cross-shard migrations (`shard.migrations`). The handle is
    /// forwarded to every lane solver, including lanes minted later as
    /// the shard count settles. Observes only — sharding decisions never
    /// read the recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = ShardObsKeys::intern(&recorder);
        for lane in &mut self.lanes {
            lane.solver.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Aggregated fast-path diagnostics across all lane solvers.
    pub fn delta_stats(&self) -> DeltaStats {
        let mut stats = DeltaStats::default();
        for lane in &self.lanes {
            stats.absorb(lane.solver.delta_stats());
        }
        stats
    }

    /// Solve one cycle. Same contract as [`Solver::solve`]; with a
    /// single-shard plan the outcome is bit-identical to it.
    pub fn solve(&mut self, problem: &PlacementProblem, prev: &Placement) -> PlacementOutcome {
        self.solve_with_delta(problem, prev, None)
    }

    /// [`ShardedSolver::solve`] with an advisory churn hint (see
    /// [`Solver::solve_with_delta`]): the hint is forwarded to every lane
    /// — each lane's own reuse audit decides whether its sub-problem can
    /// actually ride the incremental path, so a hint describing foreign
    /// lanes' churn costs at most a wasted audit, never a wrong placement.
    pub fn solve_with_delta(
        &mut self,
        problem: &PlacementProblem,
        prev: &Placement,
        delta: Option<&SolveDelta>,
    ) -> PlacementOutcome {
        let node_ids: Vec<NodeId> = problem.nodes.iter().map(|n| n.id).collect();
        let map = ShardMap::build(&self.plan, &node_ids);
        let k = map.len();

        let prev_lanes = self.lanes.len();
        self.lanes.resize_with(k, Lane::default);
        // `resize_with` may have minted fresh Batch-mode lanes: re-assert
        // the engine mode (and the recorder, when one is installed) on
        // every lane before any of them solves.
        let mode = self.mode;
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            lane.solver.set_mode(mode);
            if i >= prev_lanes && self.recorder.is_enabled() {
                lane.solver.set_recorder(self.recorder.clone());
            }
        }

        if k == 1 {
            // The global path, through the lane's warm solver, on the
            // caller's problem directly: the outcome is bit-identical to
            // an unsharded `Solver` with zero partitioning overhead.
            return self.lanes[0].solver.solve_with_delta(problem, prev, delta);
        }

        let node_ix = Interner::new(node_ids.iter().copied());
        let n_jobs = problem.jobs.len();
        let span_split = self.recorder.span(self.obs.split);

        // ------------------------------------------------------------
        // 1. Assign jobs to shards: pinned jobs (running or affine)
        // follow their node; pending jobs spread over the shards with
        // the most uncommitted capacity, in priority order.
        // ------------------------------------------------------------
        let shard_cpu: Vec<f64> = (0..k)
            .map(|s| {
                map.members(ShardId::new(s as u32))
                    .iter()
                    .map(|&ni| problem.nodes[ni].cpu.as_f64())
                    .sum()
            })
            .collect();
        let cluster_cpu: f64 = shard_cpu.iter().sum();
        self.lane_free.clear();
        self.lane_free.extend_from_slice(&shard_cpu);
        self.job_lane.clear();
        self.job_lane.resize(n_jobs, usize::MAX);
        for (ji, job) in problem.jobs.iter().enumerate() {
            let pinned = job
                .running_on
                .and_then(|n| node_ix.dense(n))
                .or_else(|| job.affinity.and_then(|n| node_ix.dense(n)));
            if let Some(ni) = pinned {
                let s = map.shard_of(ni).index();
                self.job_lane[ji] = s;
                self.lane_free[s] -= job.demand.as_f64();
            }
        }
        self.ordered_jobs.clear();
        self.ordered_jobs
            .extend((0..n_jobs).filter(|&ji| self.job_lane[ji] == usize::MAX));
        {
            let jobs = &problem.jobs;
            self.ordered_jobs.sort_by(|&a, &b| {
                fcmp(jobs[b].priority, jobs[a].priority).then(jobs[a].id.cmp(&jobs[b].id))
            });
        }
        for idx in 0..self.ordered_jobs.len() {
            let ji = self.ordered_jobs[idx];
            let best = (0..k)
                .max_by(|&a, &b| fcmp(self.lane_free[a], self.lane_free[b]).then(b.cmp(&a)))
                .expect("k >= 1");
            self.job_lane[ji] = best;
            self.lane_free[best] -= problem.jobs[ji].demand.as_f64();
        }

        // ------------------------------------------------------------
        // 2. Build per-shard sub-problems. Nodes slice by shard
        // membership; apps split their fluid demand (and instance
        // quotas) proportionally to shard capacity; jobs go to their
        // assigned shard. The change budget splits proportionally to
        // per-shard entity counts.
        // ------------------------------------------------------------
        self.lane_weight.clear();
        self.lane_weight.resize(k, 0);
        for &lane in self.job_lane.iter() {
            self.lane_weight[lane] += 1;
        }
        for s in 0..k {
            self.lane_weight[s] += map.members(ShardId::new(s as u32)).len();
        }
        let budgets = split_budget(problem.config.max_changes, &self.lane_weight);

        let cluster_nodes = problem.nodes.len();
        let mut nodes_before = 0usize;
        for (s, lane) in self.lanes.iter_mut().enumerate() {
            let shard = ShardId::new(s as u32);
            lane.problem.config = problem.config;
            lane.problem.config.max_changes = budgets[s];
            lane.problem.nodes.clear();
            lane.problem
                .nodes
                .extend(map.members(shard).iter().map(|&ni| problem.nodes[ni]));

            lane.problem.apps.clear();
            let frac = if cluster_cpu > 0.0 {
                shard_cpu[s] / cluster_cpu
            } else {
                1.0 / k as f64
            };
            let shard_nodes = map.members(shard).len();
            let nodes_through = nodes_before + shard_nodes;
            for app in &problem.apps {
                let max_instances = quota(
                    app.max_instances,
                    nodes_before,
                    nodes_through,
                    cluster_nodes,
                    shard_nodes,
                );
                // quota() is not monotone in its total (the two cumulative
                // roundings can land on different shards), so clamp the
                // min share under the max share — a lane must never be
                // forced to grow past its own instance cap.
                let min_instances = quota(
                    app.min_instances,
                    nodes_before,
                    nodes_through,
                    cluster_nodes,
                    shard_nodes,
                )
                .min(max_instances);
                lane.problem.apps.push(AppRequest {
                    id: app.id,
                    demand: CpuMhz::new(app.demand.as_f64() * frac),
                    mem_per_instance: app.mem_per_instance,
                    min_instances,
                    max_instances,
                    // Whole-fleet affinity travels with every lane; the
                    // lane solver's dense lookup simply ignores foreign
                    // nodes.
                    affinity: app.affinity.clone(),
                });
            }
            nodes_before = nodes_through;

            lane.problem.jobs.clear();
            lane.job_src.clear();
            for (ji, job) in problem.jobs.iter().enumerate() {
                if self.job_lane[ji] == s {
                    lane.problem.jobs.push(job.clone());
                    lane.job_src.push(ji);
                }
            }
        }

        drop(span_split);

        // ------------------------------------------------------------
        // 3. Solve every shard (parallel under real rayon; the offline
        // stand-in degrades to sequential with identical results).
        // ------------------------------------------------------------
        let span_lanes = self.recorder.span(self.obs.lanes);
        let mut outcomes: Vec<PlacementOutcome> = self
            .lanes
            .par_iter_mut()
            .map(|lane| lane.solver.solve_with_delta(&lane.problem, prev, delta))
            .collect();

        // ------------------------------------------------------------
        // 3b. Work-stealing budget pass: the proportional split can
        // starve a shard whose churn is concentrated (a burst of
        // arrivals in one zone) while another shard's share idles. Any
        // lane that exhausted its budget — or had none and still left
        // jobs unplaced — steals the pooled headroom the other lanes
        // left unused and re-solves with it. The global cap holds: the
        // stolen budget is exactly the unused remainder of the same
        // split, so Σ per-lane changes can never exceed `max_changes`.
        // ------------------------------------------------------------
        if problem.config.max_changes.is_some() {
            // A lane's outcome diffs against the *global* prev, so it
            // also lists phantom suspends of foreign lanes' jobs; only
            // changes touching the lane's own entities spent its budget.
            // Classify by lane through the dense tables already in hand
            // (job → lane, node → shard) — no per-lane sets.
            let job_ix = Interner::new(problem.jobs.iter().map(|j| j.id));
            let used: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .map(|(s, o)| {
                    o.changes
                        .iter()
                        .filter(|c| match c {
                            PlacementChange::StartJob { job, .. }
                            | PlacementChange::SuspendJob { job, .. }
                            | PlacementChange::MigrateJob { job, .. } => {
                                job_ix.dense(*job).is_some_and(|ji| self.job_lane[ji] == s)
                            }
                            PlacementChange::StartInstance { node, .. }
                            | PlacementChange::StopInstance { node, .. } => node_ix
                                .dense(*node)
                                .is_some_and(|ni| map.shard_of(ni).index() == s),
                        })
                        .count()
                })
                .collect();
            let mut surplus = 0usize;
            let mut starved: Vec<usize> = Vec::new();
            for s in 0..k {
                let b = budgets[s].expect("split of Some is Some");
                // Starved = budget-bound: either the share is exhausted,
                // or jobs are left unplaced with a leftover too small
                // for the solver's costliest action (an eviction spends
                // 2 changes). A lane with ≥ 2 budget left and still-
                // unplaced jobs is capacity-bound — more budget cannot
                // help, so it donates instead of re-solving for nothing.
                // A starved lane keeps its own headroom: only donors
                // feed the surplus pool.
                let remaining = b.saturating_sub(used[s]);
                let pending = !outcomes[s].unplaced_jobs.is_empty();
                if (b > 0 && used[s] >= b) || (pending && remaining < 2) {
                    starved.push(s);
                } else {
                    surplus += remaining;
                }
            }
            if surplus > 0 && !starved.is_empty() {
                let weights: Vec<usize> = starved.iter().map(|&s| self.lane_weight[s]).collect();
                let extras = split_budget(Some(surplus), &weights);
                for (&s, extra) in starved.iter().zip(extras) {
                    let extra = extra.expect("split of Some is Some");
                    if extra == 0 {
                        continue;
                    }
                    let lane = &mut self.lanes[s];
                    lane.problem.config.max_changes =
                        Some(budgets[s].expect("split of Some is Some") + extra);
                    // Same-cycle re-solve with a bigger budget: if the
                    // budget changes the discrete outcome the signature
                    // audit falls back to the full path; if it doesn't,
                    // the dirty set is empty and the stored placement is
                    // exactly the recompute. Either way the result stays
                    // exact, so the hint can ride along.
                    outcomes[s] = lane.solver.solve_with_delta(&lane.problem, prev, delta);
                }
            }
        }

        drop(span_lanes);

        // ------------------------------------------------------------
        // 4. Merge shard placements (node sets are disjoint).
        // ------------------------------------------------------------
        let span_merge = self.recorder.span(self.obs.merge);
        let mut placement = Placement::empty();
        for mut out in outcomes {
            for (app, mut slices) in std::mem::take(&mut out.placement.apps) {
                placement.apps.entry(app).or_default().append(&mut slices);
            }
            placement.jobs.append(&mut out.placement.jobs);
        }
        drop(span_merge);

        // ------------------------------------------------------------
        // 5. Cross-shard rebalance: budgeted, priority-ordered moves of
        // the most unsatisfied jobs into shards with residual capacity.
        // The pass honours the problem's overall change cap: it may only
        // spend whatever headroom the per-shard solves left under
        // `max_changes`, so a frozen placement (cap 0) stays frozen.
        // (The headroom diff is kept and reused as the outcome's change
        // list whenever the rebalance pass ends up moving nothing.)
        // ------------------------------------------------------------
        let mut pre_changes = None;
        let headroom = match problem.config.max_changes {
            None => usize::MAX,
            Some(cap) => {
                let d = placement.diff(prev);
                let h = cap.saturating_sub(d.len());
                pre_changes = Some(d);
                h
            }
        };
        let rebalance_budget = self.rebalance_budget.min(headroom);
        let moved = if rebalance_budget > 0 {
            let _span = self.recorder.span(self.obs.rebalance);
            self.rebalance(problem, &map, &node_ix, &mut placement, rebalance_budget)
        } else {
            0
        };
        self.recorder.count(self.obs.migrations, moved as u64);

        // ------------------------------------------------------------
        // 6. Bookkeeping identical to the global solver's tail.
        // ------------------------------------------------------------
        let changes = match pre_changes {
            Some(d) if moved == 0 => d,
            _ => placement.diff(prev),
        };
        let satisfied_apps: BTreeMap<AppId, CpuMhz> = problem
            .apps
            .iter()
            .map(|a| (a.id, placement.app_alloc(a.id)))
            .collect();
        let satisfied_jobs: BTreeMap<JobId, CpuMhz> =
            placement.jobs.iter().map(|(&j, &(_, c))| (j, c)).collect();
        let unplaced_jobs: Vec<JobId> = problem
            .jobs
            .iter()
            .filter(|j| !j.demand.is_zero() && !placement.jobs.contains_key(&j.id))
            .map(|j| j.id)
            .collect();

        PlacementOutcome {
            placement,
            changes,
            satisfied_apps,
            satisfied_jobs,
            unplaced_jobs,
        }
    }

    /// The cross-shard rebalance pass: move the top unsatisfied jobs onto
    /// foreign-shard nodes with room, spending at most `budget` moves
    /// (the rebalance knob, already capped to the change-budget headroom
    /// by the caller). Grants come strictly from residual capacity, so
    /// the merged placement stays feasible without a global
    /// re-allocation flow. Returns the number of moves made.
    fn rebalance(
        &mut self,
        problem: &PlacementProblem,
        map: &ShardMap,
        node_ix: &Interner<NodeId>,
        placement: &mut Placement,
        mut budget: usize,
    ) -> usize {
        let n = problem.nodes.len();
        self.cpu_free.clear();
        self.mem_free.clear();
        for node in &problem.nodes {
            self.cpu_free.push(node.cpu.as_f64());
            self.mem_free.push(node.mem);
        }
        let app_ix = Interner::new(problem.apps.iter().map(|a| a.id));
        for (&app, slices) in &placement.apps {
            let Some(ai) = app_ix.dense(app) else {
                continue;
            };
            let mem = problem.apps[ai].mem_per_instance;
            for (&node, &cpu) in slices {
                if let Some(ni) = node_ix.dense(node) {
                    self.cpu_free[ni] -= cpu.as_f64();
                    self.mem_free[ni] = self.mem_free[ni].saturating_sub(mem);
                }
            }
        }
        let job_ix = Interner::new(problem.jobs.iter().map(|j| j.id));
        for (&job, &(node, cpu)) in &placement.jobs {
            let Some(ji) = job_ix.dense(job) else {
                continue;
            };
            if let Some(ni) = node_ix.dense(node) {
                self.cpu_free[ni] -= cpu.as_f64();
                self.mem_free[ni] = self.mem_free[ni].saturating_sub(problem.jobs[ji].mem);
            }
        }
        for f in &mut self.cpu_free {
            *f = f.max(0.0);
        }
        // Candidate heap over the residual trackers, shard-labeled: the
        // per-move target query excludes the job's home shard and prunes
        // by the same memory/CPU filters the scan applied.
        self.heap.assign((0..n).map(|ni| {
            (
                problem.nodes[ni].id,
                map.shard_of(ni).raw(),
                self.cpu_free[ni],
                self.mem_free[ni],
            )
        }));

        // Candidates: positive-demand jobs, unsatisfied beyond the same
        // 25 % threshold the in-shard rebalance step uses; unplaced jobs
        // sort ahead of shortchanged ones, then priority-descending.
        self.ordered_jobs.clear();
        self.ordered_jobs.extend(0..problem.jobs.len());
        {
            let jobs = &problem.jobs;
            let placed = &placement.jobs;
            self.ordered_jobs.retain(|&ji| {
                let job = &jobs[ji];
                if job.demand.is_zero() {
                    return false;
                }
                match placed.get(&job.id) {
                    None => true,
                    Some(&(_, got)) => {
                        job.demand.as_f64() - got.as_f64() > job.demand.as_f64() * 0.25
                    }
                }
            });
            self.ordered_jobs.sort_by(|&a, &b| {
                let pa = placed.contains_key(&jobs[a].id);
                let pb = placed.contains_key(&jobs[b].id);
                pa.cmp(&pb)
                    .then(fcmp(jobs[b].priority, jobs[a].priority))
                    .then(jobs[a].id.cmp(&jobs[b].id))
            });
        }

        let mut moved = 0usize;
        for idx in 0..self.ordered_jobs.len() {
            if budget == 0 {
                break;
            }
            let ji = self.ordered_jobs[idx];
            let job = &problem.jobs[ji];
            let current = placement.jobs.get(&job.id).copied();
            let home = match current {
                Some((node, _)) => node_ix.dense(node).map(|ni| map.shard_of(ni)),
                None => Some(ShardId::new(self.job_lane[ji] as u32)),
            };
            let got = current.map(|(_, c)| c.as_f64()).unwrap_or(0.0);
            let deficit = job.demand.as_f64() - got;
            // Target: a foreign-shard node that improves the job by at
            // least half its deficit (hysteresis against churny moves),
            // best residual CPU first (saturating at the job's demand);
            // ties prefer more free memory, then the lower node id —
            // the heap's saturating order, bit-identical to the scan it
            // replaced.
            let target = self.heap.best_saturating(
                job.demand.as_f64(),
                job.mem,
                got + deficit * 0.5,
                home.map(ShardId::raw),
            );
            let Some(t) = target else { continue };
            if let Some((old, alloc)) = current {
                if let Some(oi) = node_ix.dense(old) {
                    self.cpu_free[oi] += alloc.as_f64();
                    self.mem_free[oi] += job.mem;
                    self.heap.update(oi, self.cpu_free[oi], self.mem_free[oi]);
                }
            }
            let grant = job.demand.as_f64().min(self.cpu_free[t]);
            self.cpu_free[t] -= grant;
            self.mem_free[t] = self.mem_free[t].saturating_sub(job.mem);
            self.heap.update(t, self.cpu_free[t], self.mem_free[t]);
            placement
                .jobs
                .insert(job.id, (problem.nodes[t].id, CpuMhz::new(grant)));
            budget -= 1;
            moved += 1;
            self.recorder.audit(
                slaq_obs::AuditSubject::Job(job.id.raw()),
                current.map(|(old, _)| old.raw()),
                Some(problem.nodes[t].id.raw()),
                "shard.rebalance",
                "cross-shard-move",
            );
        }
        moved
    }
}

/// Distribute an optional change budget over lanes proportionally to
/// their weights (largest-remainder rounding; the shares sum to the
/// original budget). `None` stays unbounded everywhere.
fn split_budget(total: Option<usize>, weights: &[usize]) -> Vec<Option<usize>> {
    let Some(total) = total else {
        return vec![None; weights.len()];
    };
    let wsum: usize = weights.iter().sum();
    if weights.len() <= 1 || wsum == 0 {
        return weights.iter().map(|_| Some(total)).collect();
    }
    let mut shares: Vec<usize> = weights.iter().map(|&w| total * w / wsum).collect();
    let mut rema: Vec<(usize, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| ((total * w) % wsum, i))
        .collect();
    rema.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let assigned: usize = shares.iter().sum();
    for &(_, i) in rema.iter().take(total - assigned) {
        shares[i] += 1;
    }
    shares.into_iter().map(Some).collect()
}

/// One shard's share of an app instance quota, proportional to its node
/// count via cumulative rounding: shard shares are differences of the
/// running floor `⌊total·nodes_through/cluster⌋`, so they always sum to
/// exactly `total` across shards (no instance cap is lost or duplicated),
/// and each share is additionally capped at the shard's node count (one
/// instance per node).
fn quota(
    total: u32,
    nodes_before: usize,
    nodes_through: usize,
    cluster_nodes: usize,
    shard_nodes: usize,
) -> u32 {
    if cluster_nodes == 0 {
        return total;
    }
    let t = total as u64;
    let hi = t * nodes_through as u64 / cluster_nodes as u64;
    let lo = t * nodes_before as u64 / cluster_nodes as u64;
    ((hi - lo) as u32).min(shard_nodes as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobRequest, NodeCapacity, PlacementConfig};
    use crate::solver::solve;
    use proptest::prelude::*;
    use slaq_types::MemMb;

    fn nodes(n: u32, cpu: f64, mem: u64) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity {
                id: NodeId::new(i),
                cpu: CpuMhz::new(cpu),
                mem: MemMb::new(mem),
            })
            .collect()
    }

    fn jobr(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    fn appr(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 1,
            max_instances: 32,
            affinity: Vec::new(),
        }
    }

    fn problem(
        nodes: Vec<NodeCapacity>,
        apps: Vec<AppRequest>,
        jobs: Vec<JobRequest>,
    ) -> PlacementProblem {
        PlacementProblem {
            nodes,
            apps,
            jobs,
            config: PlacementConfig::default(),
        }
    }

    #[test]
    fn shard_map_contiguous_partitions_evenly() {
        let ids: Vec<NodeId> = (0..10).map(NodeId::new).collect();
        let map = ShardMap::build(&ShardPlan::Fixed(3), &ids);
        assert_eq!(map.len(), 3);
        let sizes: Vec<usize> = (0..3).map(|s| map.members(ShardId::new(s)).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
        // Every node in exactly one shard, consistent with shard_of.
        for s in 0..3u32 {
            for &ni in map.members(ShardId::new(s)) {
                assert_eq!(map.shard_of(ni), ShardId::new(s));
            }
        }
    }

    #[test]
    fn shard_map_caps_k_at_node_count() {
        let ids: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        let map = ShardMap::build(&ShardPlan::Fixed(8), &ids);
        assert_eq!(map.len(), 2);
        let map = ShardMap::build(&ShardPlan::Fixed(3), &[]);
        assert_eq!(map.len(), 1);
        assert!(map.members(ShardId::new(0)).is_empty());
    }

    #[test]
    fn shard_map_groups_by_zone_in_zone_order() {
        // Nodes 0,1 → zone 5; node 2 → zone 1; node 3 beyond table → zone 0.
        let zones = vec![ZoneId::new(5), ZoneId::new(5), ZoneId::new(1)];
        let ids: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let map = ShardMap::build(&ShardPlan::Zones(zones), &ids);
        assert_eq!(map.len(), 3);
        assert_eq!(map.members(ShardId::new(0)), &[3]); // zone 0
        assert_eq!(map.members(ShardId::new(1)), &[2]); // zone 1
        assert_eq!(map.members(ShardId::new(2)), &[0, 1]); // zone 5
    }

    #[test]
    fn plan_is_single_detection() {
        assert!(ShardPlan::Single.is_single());
        assert!(ShardPlan::Fixed(1).is_single());
        assert!(!ShardPlan::Fixed(2).is_single());
        assert!(ShardPlan::Zones(vec![ZoneId::new(3); 4]).is_single());
        assert!(!ShardPlan::Zones(vec![ZoneId::new(0), ZoneId::new(1)]).is_single());
    }

    #[test]
    fn split_budget_conserves_total() {
        assert_eq!(split_budget(None, &[1, 2, 3]), vec![None, None, None]);
        let shares = split_budget(Some(10), &[5, 3, 2]);
        assert_eq!(
            shares.iter().map(|s| s.unwrap()).sum::<usize>(),
            10,
            "{shares:?}"
        );
        assert_eq!(split_budget(Some(7), &[4]), vec![Some(7)]);
        let zero = split_budget(Some(4), &[0, 0]);
        assert_eq!(zero, vec![Some(4), Some(4)]);
    }

    #[test]
    fn single_shard_is_bit_identical_to_global_solver() {
        let p = problem(
            nodes(4, 12_000.0, 4096),
            vec![appr(0, 9000.0)],
            (0..8).map(|i| jobr(i, 1500.0 + 250.0 * i as f64)).collect(),
        );
        let global = solve(&p, &Placement::empty());
        for plan in [ShardPlan::Single, ShardPlan::Fixed(1)] {
            let mut sharded = ShardedSolver::new(plan, 8);
            let got = sharded.solve(&p, &Placement::empty());
            assert_eq!(got, global);
        }
    }

    #[test]
    fn sharded_solver_respects_capacity_constraints() {
        let p = problem(
            nodes(8, 12_000.0, 4096),
            vec![appr(0, 24_000.0)],
            (0..24)
                .map(|i| jobr(i, 2000.0 + 100.0 * (i % 7) as f64))
                .collect(),
        );
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(4), 8);
        let out = sharded.solve(&p, &Placement::empty());
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn rebalance_rescues_jobs_from_a_crowded_shard() {
        // Shard 0 = node 0 only, shard 1 = node 1. Two running jobs pin
        // themselves to node 0 (6000 demand on a 3000 node); node 1 idle.
        // Without rebalance one job starves; with it, the worse-off job
        // migrates across the shard boundary.
        let mut j0 = jobr(0, 3000.0);
        j0.running_on = Some(NodeId::new(0));
        let mut j1 = jobr(1, 3000.0);
        j1.running_on = Some(NodeId::new(0));
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(1500.0)));
        prev.jobs
            .insert(JobId::new(1), (NodeId::new(0), CpuMhz::new(1500.0)));
        let p = problem(nodes(2, 3000.0, 4096), vec![], vec![j0, j1]);

        let mut starved = ShardedSolver::new(ShardPlan::Fixed(2), 0);
        let out = starved.solve(&p, &prev);
        assert!(out.total_job_satisfied().as_f64() < 4000.0);

        let mut rescued = ShardedSolver::new(ShardPlan::Fixed(2), 4);
        let out = rescued.solve(&p, &prev);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(6000.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn rebalance_places_unplaced_jobs_into_foreign_shards() {
        // Shard 0's single node has memory for one job; three pending
        // jobs land there by capacity. The rebalance pass spills the
        // extras into shard 1.
        let caps = vec![
            NodeCapacity {
                id: NodeId::new(0),
                cpu: CpuMhz::new(12_000.0),
                mem: MemMb::new(1500),
            },
            NodeCapacity {
                id: NodeId::new(1),
                cpu: CpuMhz::new(6000.0),
                mem: MemMb::new(4096),
            },
        ];
        let p = problem(caps, vec![], (0..3).map(|i| jobr(i, 2000.0)).collect());
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(2), 8);
        let out = sharded.solve(&p, &Placement::empty());
        assert_eq!(out.placement.jobs.len(), 3, "{:?}", out.unplaced_jobs);
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn rebalance_respects_the_change_cap() {
        // Same crowded-shard setup as above, but the placement is frozen
        // (max_changes = 0): the rebalance pass must not move anything —
        // the cap covers cross-shard migrations too.
        let mut j0 = jobr(0, 3000.0);
        j0.running_on = Some(NodeId::new(0));
        let mut j1 = jobr(1, 3000.0);
        j1.running_on = Some(NodeId::new(0));
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(1500.0)));
        prev.jobs
            .insert(JobId::new(1), (NodeId::new(0), CpuMhz::new(1500.0)));
        let mut p = problem(nodes(2, 3000.0, 4096), vec![], vec![j0, j1]);
        p.config.max_changes = Some(0);
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(2), 4);
        let out = sharded.solve(&p, &prev);
        assert!(out.changes.is_empty(), "frozen: {:?}", out.changes);
        // And with a small positive cap, total changes stay within it.
        p.config.max_changes = Some(1);
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(2), 4);
        let out = sharded.solve(&p, &prev);
        assert!(out.changes.len() <= 1, "{:?}", out.changes);
    }

    #[test]
    fn stolen_budget_rescues_churn_confined_to_one_shard() {
        // Shard 0 (nodes 0–1) is steady: two running jobs already placed,
        // zero pending churn. Shard 1 (nodes 2–3) holds all the churn:
        // four suspended jobs affine to its nodes, each needing a start.
        // The proportional split of max_changes = 4 gives shard 1 only 2
        // (weights 4 vs 6, largest remainder favours shard 0), so without
        // work stealing two jobs starve while shard 0's share idles. The
        // stealing pass must hand shard 0's unused budget over and start
        // all four — still within the global cap.
        let mut prev = Placement::empty();
        let mut jobs = Vec::new();
        for i in 0..2 {
            let mut j = jobr(i, 3000.0);
            j.running_on = Some(NodeId::new(i));
            prev.jobs
                .insert(JobId::new(i), (NodeId::new(i), CpuMhz::new(3000.0)));
            jobs.push(j);
        }
        for i in 2..6 {
            let mut j = jobr(i, 3000.0);
            j.affinity = Some(NodeId::new(2 + (i % 2)));
            jobs.push(j);
        }
        let mut p = problem(nodes(4, 12_000.0, 4096), vec![], jobs);
        p.config.max_changes = Some(4);
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(2), 0);
        let out = sharded.solve(&p, &prev);
        assert!(
            out.changes.len() <= 4,
            "global cap violated: {:?}",
            out.changes
        );
        for i in 2..6 {
            assert!(
                out.placement.jobs.contains_key(&JobId::new(i)),
                "job {i} starved despite idle budget elsewhere: {:?}",
                out.unplaced_jobs
            );
        }
        // Steady shard stays steady.
        assert_eq!(out.placement.job_node(JobId::new(0)), Some(NodeId::new(0)));
        assert_eq!(out.placement.job_node(JobId::new(1)), Some(NodeId::new(1)));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn lane_quotas_never_invert_min_above_max() {
        // 5 nodes / 5 shards with min_instances=2, max_instances=3 used
        // to produce a lane with min=1 > max=0 (cumulative roundings of
        // the two totals land on different shards); the merged placement
        // must stay within the app's global instance cap.
        let mut app = appr(0, 30_000.0);
        app.min_instances = 2;
        app.max_instances = 3;
        let p = problem(nodes(5, 12_000.0, 4096), vec![app], vec![]);
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(5), 4);
        let out = sharded.solve(&p, &Placement::empty());
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
        assert!(out.placement.app_instances(AppId::new(0)) <= 3);
    }

    #[test]
    fn warm_sharded_solver_is_stable_across_cycles() {
        let p = problem(
            nodes(6, 12_000.0, 4096),
            vec![appr(0, 20_000.0)],
            (0..12)
                .map(|i| jobr(i, 1500.0 + 200.0 * (i % 4) as f64))
                .collect(),
        );
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(3), 4);
        let first = sharded.solve(&p, &Placement::empty());
        let mut p2 = p.clone();
        for j in &mut p2.jobs {
            j.running_on = first.placement.job_node(j.id);
            j.affinity = j.running_on;
        }
        let second = sharded.solve(&p2, &first.placement);
        assert!(
            second.changes.is_empty(),
            "steady state must not churn: {:?}",
            second.changes
        );
        assert_eq!(second.placement.jobs, first.placement.jobs);
    }

    #[test]
    fn delta_mode_lanes_match_batch_lanes_across_churn() {
        // Two solvers with identical plans, one per mode, driven through
        // drifting jobs-only cycles: outcomes must stay bit-identical and
        // the delta lanes must actually take the fast path once the
        // placements settle.
        for plan in [ShardPlan::Fixed(1), ShardPlan::Fixed(2)] {
            let mut batch = ShardedSolver::new(plan.clone(), 4);
            let mut delta = ShardedSolver::new(plan.clone(), 4).with_mode(SolveMode::Delta);
            assert_eq!(delta.mode(), SolveMode::Delta);
            let fleet = nodes(6, 12_000.0, 4096);
            let n_jobs = 18usize;
            let mut demands: Vec<f64> = (0..n_jobs)
                .map(|i| 900.0 + ((i * 769) % 1800) as f64)
                .collect();
            let mut running: Vec<Option<NodeId>> = vec![None; n_jobs];
            let mut prev_b = Placement::empty();
            let mut prev_d = Placement::empty();
            for cycle in 0..8usize {
                if cycle > 0 {
                    demands[(cycle * 5) % n_jobs] = 700.0 + ((cycle * 431) % 1900) as f64;
                }
                let jobs: Vec<JobRequest> = (0..n_jobs)
                    .map(|i| JobRequest {
                        running_on: running[i],
                        affinity: running[i],
                        ..jobr(i as u32, demands[i])
                    })
                    .collect();
                let p = problem(fleet.clone(), vec![], jobs);
                let out_b = batch.solve(&p, &prev_b);
                let out_d = delta.solve(&p, &prev_d);
                assert_eq!(out_b, out_d, "plan {plan:?} diverged at cycle {cycle}");
                for (i, j) in p.jobs.iter().enumerate() {
                    running[i] = out_b.placement.job_node(j.id);
                }
                prev_b = out_b.placement;
                prev_d = out_d.placement;
            }
            let stats = delta.delta_stats();
            assert!(
                stats.hits > 0,
                "plan {plan:?}: lanes never hit the fast path: {stats:?}"
            );
            assert_eq!(batch.delta_stats(), DeltaStats::default());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn prop_single_shard_matches_global_warm_and_cold(
            n_nodes in 1u32..7,
            node_cpu in 3000.0..16_000.0f64,
            node_mem in 1024u64..8192,
            app_demands in proptest::collection::vec(0.0..40_000.0f64, 0..3),
            job_demands in proptest::collection::vec(0.0..3000.0f64, 0..12),
            budget in proptest::option::of(0usize..8),
            gap in 0.0..500.0f64,
        ) {
            let apps: Vec<AppRequest> = app_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut a = appr(i as u32, d);
                    a.min_instances = (i % 3) as u32;
                    a
                })
                .collect();
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut j = jobr(i as u32, d);
                    j.priority = d * if i % 2 == 0 { 1.0 } else { 0.5 };
                    j
                })
                .collect();
            let mut p = problem(nodes(n_nodes, node_cpu, node_mem), apps, jobs);
            p.config.max_changes = budget;
            p.config.evict_priority_gap = gap;
            let mut sharded = ShardedSolver::new(ShardPlan::Fixed(1), 8);
            let mut global = Solver::new();
            let s1 = sharded.solve(&p, &Placement::empty());
            let g1 = global.solve(&p, &Placement::empty());
            prop_assert_eq!(&s1, &g1, "cold cycle diverged");
            let mut p2 = p.clone();
            for j in &mut p2.jobs {
                j.running_on = g1.placement.job_node(j.id);
                j.affinity = j.running_on;
            }
            let s2 = sharded.solve(&p2, &g1.placement);
            let g2 = global.solve(&p2, &g1.placement);
            prop_assert_eq!(&s2, &g2, "warm cycle diverged");
        }

        #[test]
        fn prop_multi_shard_outcome_is_valid_and_near_global(
            n_nodes in 2u32..9,
            k in 2u32..5,
            node_cpu in 6000.0..16_000.0f64,
            job_demands in proptest::collection::vec(100.0..3000.0f64, 0..16),
        ) {
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| jobr(i as u32, d))
                .collect();
            let p = problem(nodes(n_nodes, node_cpu, 4096), vec![appr(0, node_cpu)], jobs);
            let mut sharded = ShardedSolver::new(ShardPlan::Fixed(k), 8);
            let out = sharded.solve(&p, &Placement::empty());
            // Structural validity: per-node capacity, instance caps.
            out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
            // Nobody exceeds their demand.
            for a in &p.apps {
                prop_assert!(out.satisfied_apps[&a.id].as_f64() <= a.demand.as_f64() + 1.0);
            }
            for j in &p.jobs {
                if let Some(&got) = out.satisfied_jobs.get(&j.id) {
                    prop_assert!(got.as_f64() <= j.demand.as_f64() + 1.0);
                }
            }
            // Fidelity floor vs. the global solver on these easy shapes.
            let global = solve(&p, &Placement::empty());
            let g = global.total_job_satisfied().as_f64() + global.total_app_satisfied().as_f64();
            let s = out.total_job_satisfied().as_f64() + out.total_app_satisfied().as_f64();
            prop_assert!(s + 1e-6 >= 0.7 * g, "sharded {s} vs global {g}");
        }
    }
}
