//! Cross-crate invariants of the full control loop: capacity respect,
//! target sanity, liveness under light load, determinism.

use slaq::prelude::*;
use slaq_experiments::run_paper_experiment;

#[test]
fn targets_never_exceed_cluster_capacity() {
    let params = PaperParams::small();
    let report = run_paper_experiment(&params).unwrap();
    let total = params.nodes as f64 * params.cpus_per_node as f64 * params.core_mhz;
    for name in ["trans_target", "jobs_target", "trans_alloc", "jobs_alloc"] {
        for &(t, v) in report.metrics.series(name) {
            assert!(v <= total + 1.0, "{name} at t={t}: {v} > {total}");
            assert!(v >= -1e-6, "{name} at t={t}: negative {v}");
        }
    }
    // Combined allocations also respect capacity.
    let ta = report.metrics.series("trans_alloc");
    let ja = report.metrics.series("jobs_alloc");
    for (&(t, a), &(_, b)) in ta.iter().zip(ja) {
        assert!(a + b <= total + 1.0, "t={t}: {a}+{b} > {total}");
    }
}

#[test]
fn utilities_stay_in_range() {
    let report = run_paper_experiment(&PaperParams::small()).unwrap();
    for name in ["trans_utility", "jobs_hypo_utility", "water_level"] {
        for &(t, v) in report.metrics.series(name) {
            assert!((-1.0..=1.0).contains(&v), "{name} at t={t}: {v}");
        }
    }
}

#[test]
fn light_load_completes_everything_on_time() {
    // Few long jobs, light transactional traffic: every SLA must hold.
    let mut params = PaperParams::small();
    params.total_jobs = 12;
    params.mean_interarrival_secs = 800.0;
    params.tail_start_secs = 10_000.0;
    params.tail_interarrival_secs = 900.0;
    params.lambda = 6.0;
    let report = run_paper_experiment(&params).unwrap();
    let s = report.job_stats;
    assert_eq!(s.completed, s.submitted, "all jobs must finish: {s:?}");
    assert!(
        s.goals_met as f64 >= 0.9 * s.completed as f64,
        "goals met {} of {}",
        s.goals_met,
        s.completed
    );
    assert!(
        s.mean_achieved_utility > 0.8,
        "mean achieved utility {}",
        s.mean_achieved_utility
    );
}

#[test]
fn run_is_deterministic_for_a_seed() {
    let params = PaperParams::small();
    let a = run_paper_experiment(&params).unwrap();
    let b = run_paper_experiment(&params).unwrap();
    for name in [
        "trans_utility",
        "jobs_hypo_utility",
        "trans_alloc",
        "jobs_alloc",
    ] {
        assert_eq!(
            a.metrics.series(name),
            b.metrics.series(name),
            "series {name} must be bit-identical"
        );
    }
    assert_eq!(a.job_stats, b.job_stats);
}

#[test]
fn different_seeds_differ_but_share_the_shape() {
    let mut p1 = PaperParams::small();
    let mut p2 = PaperParams::small();
    p1.seed = 11;
    p2.seed = 12;
    let a = run_paper_experiment(&p1).unwrap();
    let b = run_paper_experiment(&p2).unwrap();
    assert_ne!(
        a.metrics.series("jobs_alloc"),
        b.metrics.series("jobs_alloc"),
        "different workloads must differ"
    );
    // Both still complete a similar volume of work.
    let ca = a.job_stats.completed as f64;
    let cb = b.job_stats.completed as f64;
    assert!(
        (ca - cb).abs() / ca.max(cb) < 0.3,
        "completions diverge wildly: {ca} vs {cb}"
    );
}

#[test]
fn churn_is_bounded_by_config() {
    // Same scenario but with a hard change budget per cycle.
    let params = PaperParams::small();
    let scenario = params.scenario();
    let mut controller = UtilityController::default();
    controller.config.placement.max_changes = Some(5);
    let report = scenario.run(&mut controller).unwrap();
    for &(t, v) in report.metrics.series("changes") {
        assert!(v <= 5.0, "cycle at t={t} enacted {v} changes");
    }
    // The system still makes progress.
    assert!(report.job_stats.completed > 0);
}
