//! The headline integration test: the Figure 1 / Figure 2 **shape
//! contract** from DESIGN.md §4, on the scaled-down paper scenario.
//!
//! 1. Early phase: the transactional workload is satisfied (allocation ≈
//!    demand) and the job pool is happier than the transactional app.
//! 2. Crowding: the jobs' hypothetical utility decays and crosses below
//!    the transactional utility before the submission-rate tail.
//! 3. Contention: utilities are equalized (small gap) while the CPU split
//!    is strongly uneven — even utility from uneven MHz.
//! 4. Tail: once the submission rate drops, CPU flows back to the
//!    transactional workload.

use slaq::prelude::*;
use slaq_experiments::{run_paper_experiment, shape_metrics};

fn small_report() -> (PaperParams, slaq_sim::SimReport) {
    let params = PaperParams::small();
    let report = run_paper_experiment(&params).expect("scenario must simulate");
    (params, report)
}

#[test]
fn phase1_early_transactional_is_satisfied() {
    let (params, report) = small_report();
    let shape = shape_metrics(
        &report,
        SimTime::from_secs(params.tail_start_secs),
        SimTime::from_secs(params.horizon_secs),
    );
    // Allocation tracks demand in the uncontended window (within 25%:
    // the first cycle starts cold and jobs trickle in).
    assert!(
        shape.early_trans_alloc > 0.7 * shape.early_trans_demand,
        "early alloc {} vs demand {}",
        shape.early_trans_alloc,
        shape.early_trans_demand
    );
    // The job pool starts happy.
    assert!(
        shape.early_jobs_utility > 0.7,
        "early jobs utility {}",
        shape.early_jobs_utility
    );
}

#[test]
fn phase2_crowding_causes_crossover() {
    let (params, report) = small_report();
    let shape = shape_metrics(
        &report,
        SimTime::from_secs(params.tail_start_secs),
        SimTime::from_secs(params.horizon_secs),
    );
    let x = shape
        .crossover_secs
        .expect("jobs must eventually dip below the transactional utility");
    assert!(
        x > params.control_period_secs && x < params.tail_start_secs,
        "crossover at {x}, expected inside (one cycle, tail start)"
    );
    // Jobs' demand for maximum utility must have grown well beyond the
    // transactional demand at its peak (Fig. 2's dominant curve).
    assert!(
        shape.peak_jobs_demand > 1.5 * shape.early_trans_demand,
        "peak jobs demand {} vs trans demand {}",
        shape.peak_jobs_demand,
        shape.early_trans_demand
    );
}

#[test]
fn phase3_contention_equalizes_utility_with_uneven_cpu() {
    let (params, report) = small_report();
    let shape = shape_metrics(
        &report,
        SimTime::from_secs(params.tail_start_secs),
        SimTime::from_secs(params.horizon_secs),
    );
    let gap = shape
        .equalization_gap
        .expect("contention window must exist");
    assert!(gap < 0.2, "utilities should equalize, gap {gap}");
    let ratio = shape
        .contention_alloc_ratio
        .expect("contention window must exist");
    assert!(
        ratio > 1.3,
        "jobs should hold much more CPU than the app under contention, ratio {ratio}"
    );
}

#[test]
fn phase4_tail_returns_cpu_to_transactional() {
    let (params, report) = small_report();
    let shape = shape_metrics(
        &report,
        SimTime::from_secs(params.tail_start_secs),
        SimTime::from_secs(params.horizon_secs),
    );
    let recovery = shape.tail_recovery_ratio.expect("tail window must exist");
    assert!(
        recovery > 1.02,
        "transactional allocation should recover in the tail: {recovery}"
    );
}

#[test]
fn figure2_shape_demand_vs_satisfied() {
    let (_params, report) = small_report();
    let m = &report.metrics;
    // Long-running demand peaks above what is satisfied (memory + speed
    // caps bound the realizable allocation) …
    let peak_demand = m.max("jobs_demand").unwrap();
    let peak_alloc = m.max("jobs_alloc").unwrap();
    assert!(
        peak_demand > peak_alloc,
        "demand {peak_demand} should exceed satisfied {peak_alloc} at peak"
    );
    // … while early transactional demand is essentially satisfied.
    let first_demand = m.series("trans_demand")[1].1;
    let first_alloc = m.series("trans_alloc")[1].1;
    assert!(
        first_alloc > 0.7 * first_demand,
        "early trans alloc {first_alloc} vs demand {first_demand}"
    );
}

#[test]
fn bookkeeping_totals_add_up() {
    let (params, report) = small_report();
    let s = report.job_stats;
    assert_eq!(
        s.submitted,
        s.pending + s.running + s.suspended + s.completed,
        "lifecycle states must partition the population"
    );
    assert!(s.completed > 0, "some jobs must finish");
    assert!(s.submitted > 50, "the stream must have fed the system");
    // All series span the run.
    let horizon = params.horizon_secs;
    let last_t = report.metrics.series("jobs_alloc").last().unwrap().0;
    assert!(last_t > horizon - 2.0 * params.control_period_secs);
}
