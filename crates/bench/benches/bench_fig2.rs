//! E2 — regenerate the Figure 2 series (per-workload allocations and
//! max-utility demands over time). Same run as Figure 1 plus the
//! allocation/demand series extraction; benched separately so a
//! regression in either extraction path is attributable.

use criterion::{criterion_group, criterion_main, Criterion};
use slaq_core::scenario::PaperParams;
use slaq_experiments::{fig2_csv, run_paper_experiment};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("paper_small_end_to_end", |b| {
        b.iter(|| {
            let report = run_paper_experiment(black_box(&PaperParams::small())).unwrap();
            let csv = fig2_csv(&report);
            black_box(csv.len())
        })
    });
    // Extraction alone (series → CSV) on a pre-computed report.
    let report = run_paper_experiment(&PaperParams::small()).unwrap();
    group.bench_function("series_extraction", |b| {
        b.iter(|| black_box(fig2_csv(black_box(&report)).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
