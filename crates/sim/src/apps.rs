//! Transactional application runtime: intensity source, measured response
//! times, and online demand estimation.

use slaq_perfmodel::TransactionalSpec;
use slaq_perfmodel::{DemandEstimator, PsQueue};
use slaq_types::{AppId, CpuMhz, NodeId, SimDuration, SimTime, Work};

/// What the controller gets to see about a transactional application each
/// cycle: the spec and the *estimated* arrival rate (not the ground-truth
/// trace — the estimator path is part of the system under test).
#[derive(Debug, Clone, PartialEq)]
pub struct AppObservation {
    /// Application identity.
    pub id: AppId,
    /// Static spec (service demand, RT goal, memory, scaling limits).
    pub spec: TransactionalSpec,
    /// Estimated request arrival rate (req/s), already scaled by the
    /// routing tier's effective-work discount when routing is active —
    /// routed load *is* the demand signal the controller optimizes.
    pub lambda: f64,
    /// Per-node warmth scores from the routing tier's aggregator
    /// (id-sorted), surfaced to the controller as a placement-affinity
    /// hint. Empty when routing is off or the tier routes uniformly.
    pub affinity: Vec<(NodeId, f64)>,
}

/// Simulator-side state of one transactional application.
pub struct TransactionalRuntime {
    /// Application identity.
    pub id: AppId,
    /// Static spec.
    pub spec: TransactionalSpec,
    /// Ground-truth intensity λ(t) — a closure so any trace works.
    lambda_fn: Box<dyn Fn(SimTime) -> f64 + Send>,
    estimator: DemandEstimator,
    /// Response-time · seconds accumulated since the last flush (for the
    /// cycle-mean measurement).
    rt_weighted: f64,
    /// Utility · seconds accumulated since the last flush.
    util_weighted: f64,
    accum_secs: f64,
    /// Interned metric keys — the simulator records these every control
    /// cycle, so the per-app `format!` is paid once at construction.
    rt_metric_key: String,
    utility_metric_key: String,
    /// Effective-work multiplier from the routing tier: warm (cache/data
    /// local) instances serve each request with `route_discount` of the
    /// nominal work. `1.0` — the exact multiplicative identity — when no
    /// router is installed, so routing-off runs are bit-identical.
    route_discount: f64,
}

impl TransactionalRuntime {
    /// Create a runtime with the given ground-truth intensity and an EWMA
    /// estimator (`alpha` smoothing).
    pub fn new(
        id: AppId,
        spec: TransactionalSpec,
        lambda_fn: Box<dyn Fn(SimTime) -> f64 + Send>,
        alpha: f64,
    ) -> Option<Self> {
        spec.validate().ok()?;
        Some(TransactionalRuntime {
            id,
            spec,
            lambda_fn,
            estimator: DemandEstimator::new(alpha)?,
            rt_weighted: 0.0,
            util_weighted: 0.0,
            accum_secs: 0.0,
            rt_metric_key: format!("trans_rt_{id}"),
            utility_metric_key: format!("trans_utility_{id}"),
            route_discount: 1.0,
        })
    }

    /// Install the routing tier's effective-work multiplier for the
    /// coming cycle (clamped into `(0, 1]`). The discount routed at
    /// cycle *k* shapes the load observed during `[k, k+1)` — a
    /// one-cycle actuation lag, like every other control signal here.
    pub fn set_route_discount(&mut self, discount: f64) {
        self.route_discount = if discount > 0.0 && discount <= 1.0 {
            discount
        } else {
            1.0
        };
    }

    /// The effective-work multiplier in force (`1.0` without routing).
    pub fn route_discount(&self) -> f64 {
        self.route_discount
    }

    /// Name of this app's measured response-time series.
    pub fn rt_metric_key(&self) -> &str {
        &self.rt_metric_key
    }

    /// Name of this app's measured utility series.
    pub fn utility_metric_key(&self) -> &str {
        &self.utility_metric_key
    }

    /// Ground-truth arrival rate at `t`.
    pub fn true_lambda(&self, t: SimTime) -> f64 {
        (self.lambda_fn)(t)
    }

    /// The cycle's aggregated request batch over `[at, at + window)`:
    /// millions of requests folded into one count, never evented
    /// individually. This is what the routing tier apportions.
    pub fn request_batch(&self, at: SimTime, window: SimDuration) -> slaq_workloads::RequestBatch {
        slaq_workloads::RequestBatch::from_rate(self.true_lambda(at), window)
    }

    /// What the controller observes. The estimated intensity is scaled
    /// by the routing discount — routed (warmth-concentrated) load is
    /// the demand signal the controller optimizes, so warm apps ask for
    /// less CPU and release capacity to the rest of the cluster.
    pub fn observation(&self, t: SimTime) -> AppObservation {
        AppObservation {
            id: self.id,
            spec: self.spec.clone(),
            // Cold start: trust the instantaneous truth (first cycle has
            // no history; the real system would bootstrap from config).
            lambda: self.estimator.lambda_or(self.true_lambda(t)) * self.route_discount,
            affinity: Vec::new(),
        }
    }

    /// Integrate one interval `[from, from+dt)` during which the
    /// application's *effective* allocation was `alloc`. Updates the
    /// estimator and accumulates measured response time and utility.
    pub fn observe_interval(&mut self, from: SimTime, dt: SimDuration, alloc: CpuMhz) {
        if dt.is_zero() {
            return;
        }
        let lam = self.true_lambda(from);
        let served = lam * dt.as_secs();
        // Warm routing shrinks the *work* each request costs, not the
        // request count: the estimator sees true arrivals with
        // discounted work, and the queue sees the discounted work rate.
        // `route_discount == 1.0` makes both multiplications exact
        // no-ops (bit-identical to the routing-free simulator).
        let work = Work::new(served * self.spec.service_per_request.as_f64() * self.route_discount);
        self.estimator.observe(served.round() as u64, work, dt);

        let rt = match PsQueue::new(lam * self.route_discount, self.spec.service_per_request) {
            Some(q) => q.response_time(alloc),
            None => SimDuration::ZERO,
        };
        let u = self.spec.rt_goal.utility_of_rt(rt);
        // Saturated cycles have unbounded RT; accumulate a capped value so
        // the mean stays plottable (utility already bottoms at −1).
        let rt_capped = rt.as_secs().min(4.0 * self.spec.rt_goal.target.as_secs());
        self.rt_weighted += rt_capped * dt.as_secs();
        self.util_weighted += u * dt.as_secs();
        self.accum_secs += dt.as_secs();
    }

    /// Flush the accumulated cycle measurements: returns
    /// `(mean_rt, mean_utility)` since the previous flush, or `None` if
    /// nothing accumulated.
    pub fn flush_cycle(&mut self) -> Option<(SimDuration, f64)> {
        if self.accum_secs <= 0.0 {
            return None;
        }
        let rt = SimDuration::from_secs(self.rt_weighted / self.accum_secs);
        let u = self.util_weighted / self.accum_secs;
        self.rt_weighted = 0.0;
        self.util_weighted = 0.0;
        self.accum_secs = 0.0;
        Some((rt, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::MemMb;
    use slaq_utility::ResponseTimeGoal;

    fn spec() -> TransactionalSpec {
        TransactionalSpec {
            name: "trade".into(),
            service_per_request: Work::new(2000.0),
            rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
            mem_per_instance: MemMb::new(1024),
            max_instances: 25,
            min_instances: 1,
            u_cap: 0.9,
        }
    }

    fn rt(lambda: f64) -> TransactionalRuntime {
        TransactionalRuntime::new(AppId::new(0), spec(), Box::new(move |_| lambda), 0.3).unwrap()
    }

    #[test]
    fn cold_start_observation_uses_truth() {
        let r = rt(50.0);
        let obs = r.observation(SimTime::ZERO);
        assert_eq!(obs.lambda, 50.0);
        assert_eq!(obs.id, AppId::new(0));
    }

    #[test]
    fn estimator_converges_to_truth() {
        let mut r = rt(50.0);
        for i in 0..20 {
            r.observe_interval(
                SimTime::from_secs(i as f64 * 600.0),
                SimDuration::from_secs(600.0),
                CpuMhz::new(140_000.0),
            );
        }
        let obs = r.observation(SimTime::from_secs(12_000.0));
        assert!((obs.lambda - 50.0).abs() < 0.5, "{}", obs.lambda);
    }

    #[test]
    fn well_provisioned_interval_scores_high_utility() {
        let mut r = rt(50.0);
        // Demand for u=0.9 is 140 000 (see perfmodel tests).
        r.observe_interval(
            SimTime::ZERO,
            SimDuration::from_secs(600.0),
            CpuMhz::new(140_000.0),
        );
        let (rt_mean, u) = r.flush_cycle().unwrap();
        assert!((u - 0.9).abs() < 1e-9, "{u}");
        assert!((rt_mean.as_secs() - 0.05).abs() < 1e-9);
        // Flush resets.
        assert!(r.flush_cycle().is_none());
    }

    #[test]
    fn starved_interval_bottoms_out() {
        let mut r = rt(50.0);
        // Below offered load (100 000): unstable.
        r.observe_interval(
            SimTime::ZERO,
            SimDuration::from_secs(600.0),
            CpuMhz::new(90_000.0),
        );
        let (rt_mean, u) = r.flush_cycle().unwrap();
        assert_eq!(u, -1.0);
        assert_eq!(rt_mean.as_secs(), 2.0); // capped at 4×τ
    }

    #[test]
    fn mixed_intervals_average_time_weighted() {
        let mut r = rt(50.0);
        r.observe_interval(
            SimTime::ZERO,
            SimDuration::from_secs(300.0),
            CpuMhz::new(140_000.0),
        );
        r.observe_interval(
            SimTime::from_secs(300.0),
            SimDuration::from_secs(100.0),
            CpuMhz::new(104_000.0), // u = 0 point
        );
        let (_, u) = r.flush_cycle().unwrap();
        let expect = (0.9 * 300.0 + 0.0 * 100.0) / 400.0;
        assert!((u - expect).abs() < 1e-9, "{u} vs {expect}");
    }

    #[test]
    fn zero_length_interval_is_ignored() {
        let mut r = rt(10.0);
        r.observe_interval(SimTime::ZERO, SimDuration::ZERO, CpuMhz::new(1000.0));
        assert!(r.flush_cycle().is_none());
    }
}
