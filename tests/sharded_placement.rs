//! Differential gates for the sharded placement engine.
//!
//! 1. **1-shard ≡ global, bit for bit, on every corpus preset.** A
//!    `Count{1}` sharded run must reproduce the `Global` run exactly —
//!    every recorded metric sample, every job statistic, every placement
//!    change count. (Solver-level random-problem differentials live in
//!    `crates/placement/src/shard.rs`; this pins the full controller +
//!    simulator path.)
//! 2. **Multi-shard stays within a pinned utility gap of global.** The
//!    sharded engine trades placement quality for per-shard scan width;
//!    the trade must stay bounded on the whole corpus.

use slaq::core::spec::{ScenarioSpec, ShardingSpec};

/// Run a preset for `cycles` control cycles under the given sharding
/// knob, returning the report.
fn run_with(spec: &ScenarioSpec, shards: ShardingSpec, cycles: usize) -> slaq::sim::SimReport {
    let mut spec = spec.clone();
    spec.controller.shards = shards;
    spec.timing.cap_to_cycles(cycles);
    spec.run()
        .unwrap_or_else(|e| panic!("{} ({shards:?}): {e}", spec.name))
}

/// Σ of a recorded series' samples (0 when the series is absent).
fn series_sum(report: &slaq::sim::SimReport, name: &str) -> f64 {
    report.metrics.series(name).iter().map(|&(_, v)| v).sum()
}

#[test]
fn one_shard_sharded_engine_is_bit_identical_to_global_on_every_preset() {
    for name in ScenarioSpec::preset_names() {
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let global = run_with(&spec, ShardingSpec::Global, 4);
        let sharded = run_with(&spec, ShardingSpec::Count { count: 1 }, 4);

        assert_eq!(global.cycles, sharded.cycles, "{name}: cycle count");
        assert_eq!(
            global.total_changes, sharded.total_changes,
            "{name}: total changes"
        );
        let g = &global.job_stats;
        let s = &sharded.job_stats;
        assert_eq!(g.submitted, s.submitted, "{name}: submitted");
        assert_eq!(g.completed, s.completed, "{name}: completed");
        assert_eq!(g.goals_met, s.goals_met, "{name}: goals met");
        assert_eq!(g.disruptions, s.disruptions, "{name}: disruptions");
        // Every recorded series, sample for sample, bit for bit.
        let mut names = global.metrics.names();
        names.sort();
        let mut sharded_names = sharded.metrics.names();
        sharded_names.sort();
        assert_eq!(names, sharded_names, "{name}: recorded series differ");
        for series in names {
            assert_eq!(
                global.metrics.series(series),
                sharded.metrics.series(series),
                "{name}: series {series} diverged"
            );
        }
    }
}

#[test]
fn multi_shard_utility_gap_is_bounded_on_every_preset() {
    // The pinned fidelity floor: across the corpus, a 3-shard run must
    // deliver at least this fraction of the global run's total satisfied
    // CPU (transactional + jobs, summed over cycles). Tightening the
    // engine may raise this; it must never sink below.
    const PINNED_FLOOR: f64 = 0.80;
    for name in ScenarioSpec::preset_names() {
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let global = run_with(&spec, ShardingSpec::Global, 6);
        let sharded = run_with(&spec, ShardingSpec::Count { count: 3 }, 6);

        let g_total = series_sum(&global, "trans_alloc") + series_sum(&global, "jobs_alloc");
        let s_total = series_sum(&sharded, "trans_alloc") + series_sum(&sharded, "jobs_alloc");
        assert!(
            s_total >= PINNED_FLOOR * g_total,
            "{name}: sharded satisfied CPU {s_total:.0} < {PINNED_FLOOR} × global {g_total:.0}"
        );
        // The sharded run must remain a working scheduler, not just a
        // cheap one: it keeps serving the job tier.
        assert!(
            sharded.job_stats.submitted == global.job_stats.submitted,
            "{name}: workloads must be identical"
        );
    }
}

#[test]
fn zoned_preset_actually_exercises_the_sharded_engine() {
    // The consolidation preset's three zone labels must activate the
    // sharded engine through the default `Zones` knob…
    let spec = ScenarioSpec::preset("consolidation").expect("preset");
    let scenario = spec.materialize().expect("valid");
    let controller = scenario.utility_controller();
    assert!(
        controller.is_sharded(),
        "zone-labeled fleet must select the sharded engine"
    );
    // …while the unlabeled presets keep the exact global solver.
    for name in ["paper-small", "hetero-pool", "diurnal"] {
        let scenario = ScenarioSpec::preset(name)
            .expect("preset")
            .materialize()
            .expect("valid");
        assert!(
            !scenario.utility_controller().is_sharded(),
            "{name}: unlabeled fleet must stay on the global solver"
        );
    }
    // And the zoned run completes end to end with a sane report.
    let report = run_with(&spec, ShardingSpec::Zones, 6);
    assert!(report.cycles >= 6);
    assert!(series_sum(&report, "trans_alloc") > 0.0);
}
