//! # slaq-workloads — composable, reproducible workload generation
//!
//! The generator library behind the scenario corpus: every workload shape
//! a [`ScenarioSpec`](../slaq_core/spec) references by name+params lives
//! here as plain serde-round-trippable data, and materializes into
//! concrete streams with explicit seeds so every figure regenerates
//! bit-identically.
//!
//! Three generator families:
//!
//! * **Intensity traces** ([`IntensityTrace`]) — transactional request
//!   intensity λ(t): constant (the paper's evaluation), stepped, diurnal,
//!   spiky (periodic flash crowds), and pointwise sums of any of these.
//! * **Arrival processes** ([`ArrivalProcess`]) — job submission
//!   instants: Poisson streams over a piecewise-constant
//!   [`RateSchedule`] (the paper submits 800 jobs at a mean spacing of
//!   260 s, "slightly decreased" near the end), bursty ON–OFF sources,
//!   and periodic batch drops. [`PoissonArrivals`] is the underlying
//!   iterator form.
//! * **Request streams** ([`RequestBatch`] / [`CycleLoad`]) — per-cycle
//!   *aggregated* request load for the routing tier: counts, rates, and
//!   coarse histograms derived from the intensity traces (millions of
//!   requests per cycle, never evented individually).
//! * **Job mixes** ([`JobMix`] of weighted [`TemplateClass`]es) — turn
//!   arrival instants into concrete [`slaq_jobs::JobSpec`]s: short vs
//!   long jobs, small vs large memory footprints, and differentiated
//!   importance tiers, with SLAs anchored at each submission via
//!   [`JobTemplate`]. [`generate_job_stream`] remains the single-template
//!   fast path.
//!
//! Everything random is driven by `ChaCha12Rng` with explicit seeds;
//! determinism is pinned by property tests in each module.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arrivals;
pub mod intensity;
pub mod jobstream;
pub mod mix;
pub mod requests;

pub use arrivals::{ArrivalProcess, PoissonArrivals, RateSchedule};
pub use intensity::IntensityTrace;
pub use jobstream::{generate_job_stream, JobTemplate};
pub use mix::{GeneratedJob, JobMix, TemplateClass};
pub use requests::{CycleLoad, RequestBatch};
