//! The transactional application model: spec + live state, and its
//! monotone utility-of-CPU curve for the equalizer.

use crate::queueing::PsQueue;
use serde::{Deserialize, Serialize};
use slaq_types::{CpuMhz, MemMb, Work};
use slaq_utility::{ResponseTimeGoal, UtilityOfCpu, U_MIN};

/// Static description of a transactional (clustered web) application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionalSpec {
    /// Human-readable name (experiment reports).
    pub name: String,
    /// Mean CPU work per request.
    pub service_per_request: Work,
    /// Response-time SLA.
    pub rt_goal: ResponseTimeGoal,
    /// Memory footprint of one application instance (one VM).
    pub mem_per_instance: MemMb,
    /// Maximum number of instances the application may scale to (its
    /// cluster size limit).
    pub max_instances: u32,
    /// Minimum number of instances kept running even when idle.
    pub min_instances: u32,
    /// Utility level regarded as "maximum" for demand purposes. Under
    /// processor sharing utility approaches 1 only as allocation → ∞, so
    /// the *demand for maximum utility* (the quantity Figure 2 plots) is
    /// defined as the allocation reaching this level. Must be < 1.
    pub u_cap: f64,
}

impl TransactionalSpec {
    /// Validate the spec, normalizing silly combinations.
    pub fn validate(&self) -> Result<(), String> {
        if self.service_per_request.as_f64() <= 0.0 {
            return Err("service_per_request must be positive".into());
        }
        if !(self.u_cap > 0.0 && self.u_cap < 1.0) {
            return Err("u_cap must lie in (0, 1)".into());
        }
        if self.max_instances == 0 {
            return Err("max_instances must be at least 1".into());
        }
        if self.min_instances > self.max_instances {
            return Err("min_instances exceeds max_instances".into());
        }
        Ok(())
    }
}

/// A transactional application at a specific observed intensity: the spec
/// plus the current request arrival rate λ. Implements [`UtilityOfCpu`]
/// with exact closed forms from the M/G/1-PS model:
///
/// * `utility(ω)   = clamp((τ − RT(ω))/τ, −1, u_cap)`
/// * `cpu(u)       = λ·c + c / (τ·(1 − u))` for `u ∈ (−1, u_cap]`
/// * `max_useful_cpu = cpu(u_cap)` — the Figure-2 "transactional demand"
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionalModel {
    /// The static spec.
    pub spec: TransactionalSpec,
    /// Observed (or estimated) arrival rate, req/s.
    pub lambda: f64,
}

impl TransactionalModel {
    /// Bind a spec to an observed arrival rate.
    pub fn new(spec: TransactionalSpec, lambda: f64) -> Option<Self> {
        (lambda >= 0.0 && lambda.is_finite() && spec.validate().is_ok())
            .then_some(TransactionalModel { spec, lambda })
    }

    /// The underlying queue at the current intensity.
    pub fn queue(&self) -> PsQueue {
        PsQueue::new(self.lambda, self.spec.service_per_request)
            .expect("spec validated at construction")
    }

    /// Predicted mean response time at allocation `alloc`.
    pub fn response_time(&self, alloc: CpuMhz) -> slaq_types::SimDuration {
        self.queue().response_time(alloc)
    }

    /// The work arrival rate λ·c: minimum stable allocation.
    pub fn offered_load(&self) -> CpuMhz {
        self.queue().offered_load()
    }
}

impl UtilityOfCpu for TransactionalModel {
    fn utility(&self, cpu: CpuMhz) -> f64 {
        if self.lambda == 0.0 {
            // No traffic: response time is vacuous; an idle application
            // is fully satisfied at any allocation (flat curve). This
            // must hold at *every* point — a flat `utility_at_zero` with
            // a positive `max_useful_cpu` would let the equalizer park
            // CPU on an application that serves nobody.
            return self.spec.u_cap;
        }
        let rt = self.queue().response_time(cpu);
        self.spec.rt_goal.utility_of_rt(rt).min(self.spec.u_cap)
    }

    fn cpu_for_utility(&self, u: f64) -> Option<CpuMhz> {
        if u > self.spec.u_cap + 1e-12 {
            return None;
        }
        if self.lambda == 0.0 || u <= U_MIN {
            return Some(CpuMhz::ZERO);
        }
        let u = u.min(self.spec.u_cap);
        // RT achieving utility u, then the allocation achieving that RT.
        let rt = self.spec.rt_goal.rt_for_utility(u);
        self.queue().cpu_for_response_time(rt)
    }

    fn max_useful_cpu(&self) -> CpuMhz {
        if self.lambda == 0.0 {
            return CpuMhz::ZERO;
        }
        self.cpu_for_utility(self.spec.u_cap)
            .expect("u_cap is reachable by construction")
    }

    fn max_utility(&self) -> f64 {
        self.spec.u_cap
    }

    fn utility_at_zero(&self) -> f64 {
        if self.lambda == 0.0 {
            self.spec.u_cap
        } else {
            U_MIN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slaq_types::SimDuration;

    /// The experiment-scale app: λ=50 req/s, c=2000 MHz·s, τ=0.5 s.
    fn model(lambda: f64) -> TransactionalModel {
        TransactionalModel::new(
            TransactionalSpec {
                name: "trade".into(),
                service_per_request: Work::new(2000.0),
                rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
                mem_per_instance: MemMb::new(1024),
                max_instances: 25,
                min_instances: 1,
                u_cap: 0.9,
            },
            lambda,
        )
        .unwrap()
    }

    #[test]
    fn spec_validation_catches_errors() {
        let mut spec = model(1.0).spec;
        spec.u_cap = 1.0;
        assert!(spec.validate().is_err());
        spec.u_cap = 0.9;
        spec.service_per_request = Work::ZERO;
        assert!(spec.validate().is_err());
        spec.service_per_request = Work::new(1.0);
        spec.min_instances = 9;
        spec.max_instances = 3;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn demand_for_max_utility_matches_closed_form() {
        let m = model(50.0);
        // λc = 100 000; headroom for u_cap=0.9: c/(τ·0.1) = 2000/0.05 = 40 000.
        let demand = m.max_useful_cpu();
        assert!(demand.approx_eq(CpuMhz::new(140_000.0), 1e-6), "{demand}");
        assert!((m.utility(demand) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn utility_curve_key_points() {
        let m = model(50.0);
        // u = 0 at ω = λc + c/τ = 104 000.
        assert!(m.utility(CpuMhz::new(104_000.0)).abs() < 1e-9);
        // u = 0.5 at ω = λc + 2c/τ = 108 000.
        assert!((m.utility(CpuMhz::new(108_000.0)) - 0.5).abs() < 1e-9);
        // Unstable allocations bottom out at −1.
        assert_eq!(m.utility(CpuMhz::new(90_000.0)), -1.0);
        assert_eq!(m.utility(CpuMhz::ZERO), -1.0);
        // Above demand the cap binds.
        assert_eq!(m.utility(CpuMhz::new(500_000.0)), 0.9);
    }

    #[test]
    fn inverse_demand_roundtrip() {
        let m = model(50.0);
        for u in [-0.9, -0.5, 0.0, 0.25, 0.5, 0.75, 0.9] {
            let cpu = m.cpu_for_utility(u).unwrap();
            assert!(
                (m.utility(cpu) - u).abs() < 1e-9,
                "u={u}: got {}",
                m.utility(cpu)
            );
        }
        assert!(m.cpu_for_utility(0.95).is_none());
        assert_eq!(m.cpu_for_utility(-1.0), Some(CpuMhz::ZERO));
    }

    #[test]
    fn idle_app_is_flat_and_demands_nothing() {
        let m = model(0.0);
        assert_eq!(m.max_useful_cpu(), CpuMhz::ZERO);
        assert_eq!(m.utility_at_zero(), 0.9);
        assert_eq!(m.utility(CpuMhz::new(1000.0)), 0.9);
        assert_eq!(m.cpu_for_utility(0.9), Some(CpuMhz::ZERO));
        // An *almost* idle app still wants latency headroom — the
        // discontinuity at exactly zero traffic is intentional.
        let barely = model(0.001);
        assert!(barely.max_useful_cpu().as_f64() > 39_000.0);
    }

    #[test]
    fn higher_traffic_shifts_demand_up() {
        let lo = model(25.0);
        let hi = model(75.0);
        assert!(hi.max_useful_cpu() > lo.max_useful_cpu());
        // Same allocation yields lower utility under more load.
        let alloc = CpuMhz::new(120_000.0);
        assert!(hi.utility(alloc) < lo.utility(alloc));
    }

    proptest! {
        #[test]
        fn prop_utility_monotone_in_cpu(
            lambda in 0.0..100.0f64,
            a in 0.0..3e5f64,
            extra in 0.0..3e5f64,
        ) {
            let m = model(lambda);
            prop_assert!(
                m.utility(CpuMhz::new(a + extra)) >= m.utility(CpuMhz::new(a)) - 1e-12
            );
        }

        #[test]
        fn prop_utility_bounded(lambda in 0.0..100.0f64, a in 0.0..1e6f64) {
            let m = model(lambda);
            let u = m.utility(CpuMhz::new(a));
            prop_assert!((-1.0..=0.9).contains(&u));
        }

        #[test]
        fn prop_cpu_for_utility_is_least(
            lambda in 1.0..100.0f64,
            u in -0.99..0.89f64,
        ) {
            let m = model(lambda);
            let cpu = m.cpu_for_utility(u).unwrap();
            prop_assert!(m.utility(cpu) >= u - 1e-9);
            // 1% less CPU must fall short (strictly increasing region).
            if cpu.as_f64() > 1.0 {
                prop_assert!(m.utility(cpu * 0.99) < u + 1e-9);
            }
        }
    }
}
