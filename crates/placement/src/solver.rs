//! The placement heuristic: sticky, priority-ordered, churn-bounded.
//!
//! Pipeline per control cycle (NOMS'08 heuristic extended with jobs):
//!
//! 1. **Keep** — running jobs stay put and previous application instances
//!    survive (free: no churn). Their memory is reserved first.
//! 2. **Grow/shrink apps** — applications claim residual capacity
//!    *before* any new job is placed (kept jobs stay senior): they gain
//!    instances until their cluster-wide targets are covered and shed
//!    instances beyond `max_instances` or, when idle, down to
//!    `min_instances`.
//! 3. **Place** — unplaced jobs with positive CPU targets are placed in
//!    priority order, each on the node offering it the most residual CPU
//!    among those with memory room (affinity-first for suspended images).
//! 4. **Rebalance** — running jobs shortchanged on oversubscribed nodes
//!    migrate to nodes with room (live migration).
//! 5. **Evict** — still-unplaced jobs may displace strictly
//!    lower-priority running jobs (suspend + start, two changes), guarded
//!    by a priority-gap hysteresis.
//! 6. **Reclaim** — jobs still memory-blocked may retire zero-load
//!    application instances (above `min_instances`) and take their slot.
//! 7. **Allocate** — exact CPU division for the final placement via
//!    min-cost max-flow ([`crate::allocation::allocate`]).
//!
//! Every step consumes from a shared *change budget*
//! ([`crate::problem::PlacementConfig::max_changes`]); keeping an entity
//! where it is costs nothing, which is what makes placements sticky.

use crate::allocation::allocate;
use crate::placement::{Placement, PlacementChange};
use crate::problem::{AppRequest, JobRequest, PlacementProblem};
use serde::{Deserialize, Serialize};
use slaq_types::{fcmp, AppId, CpuMhz, JobId, MemMb, NodeId};
use std::collections::BTreeMap;

/// Result of one placement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// The new placement with exact allocations.
    pub placement: Placement,
    /// Disruptive actions relative to the previous placement.
    pub changes: Vec<PlacementChange>,
    /// Per-application satisfied CPU.
    pub satisfied_apps: BTreeMap<AppId, CpuMhz>,
    /// Per-job satisfied CPU (running jobs only).
    pub satisfied_jobs: BTreeMap<JobId, CpuMhz>,
    /// Jobs with positive targets that could not be placed this cycle
    /// (they stay pending/suspended).
    pub unplaced_jobs: Vec<JobId>,
}

impl PlacementOutcome {
    /// Σ satisfied transactional CPU.
    pub fn total_app_satisfied(&self) -> CpuMhz {
        self.satisfied_apps.values().copied().sum()
    }

    /// Σ satisfied job CPU.
    pub fn total_job_satisfied(&self) -> CpuMhz {
        self.satisfied_jobs.values().copied().sum()
    }
}

/// Mutable per-node trackers used while making discrete decisions.
struct NodeState {
    id: NodeId,
    mem_free: MemMb,
    /// Residual CPU available for *committing* new demand. An
    /// approximation used only to steer discrete choices; the exact
    /// division is recomputed by the flow at the end.
    cpu_free: f64,
}

/// Solve one cycle. `prev` is the placement currently in force.
pub fn solve(problem: &PlacementProblem, prev: &Placement) -> PlacementOutcome {
    let cfg = &problem.config;
    let mut budget = cfg.max_changes.unwrap_or(usize::MAX);

    let mut nodes: Vec<NodeState> = problem
        .nodes
        .iter()
        .map(|n| NodeState {
            id: n.id,
            mem_free: n.mem,
            cpu_free: n.cpu.as_f64(),
        })
        .collect();
    let idx_of = |ns: &[NodeState], id: NodeId| ns.iter().position(|n| n.id == id);

    // ------------------------------------------------------------------
    // Step 0/1: keep previous app instances and running jobs; reserve
    // memory and commit CPU.
    // ------------------------------------------------------------------
    let mut app_hosts: BTreeMap<AppId, Vec<NodeId>> = BTreeMap::new();
    for app in &problem.apps {
        let mut hosts: Vec<NodeId> = prev
            .apps
            .get(&app.id)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        hosts.retain(|h| idx_of(&nodes, *h).is_some());
        for h in &hosts {
            let i = idx_of(&nodes, *h).expect("retained");
            nodes[i].mem_free = nodes[i].mem_free.saturating_sub(app.mem_per_instance);
        }
        app_hosts.insert(app.id, hosts);
    }

    let mut ordered_jobs: Vec<&JobRequest> = problem.jobs.iter().collect();
    ordered_jobs.sort_by(|a, b| fcmp(b.priority, a.priority).then(a.id.cmp(&b.id)));

    let mut job_nodes: BTreeMap<JobId, NodeId> = BTreeMap::new();
    // Committed CPU per kept job (for the shortchange rebalance pass).
    let mut committed: BTreeMap<JobId, f64> = BTreeMap::new();
    for job in &ordered_jobs {
        if let Some(node) = job.running_on {
            if let Some(i) = idx_of(&nodes, node) {
                if nodes[i].mem_free.fits(job.mem) || prev.jobs.contains_key(&job.id) {
                    // A running job's memory is already resident; keeping
                    // it is always feasible (prev placement was valid).
                    nodes[i].mem_free = nodes[i].mem_free.saturating_sub(job.mem);
                    let got = job.demand.as_f64().min(nodes[i].cpu_free).max(0.0);
                    nodes[i].cpu_free -= got;
                    committed.insert(job.id, got);
                    job_nodes.insert(job.id, node);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Step 2: grow/shrink application instance sets. Applications claim
    // nodes *before new jobs are placed* (kept jobs committed above stay
    // senior): the transactional tier is fluid cluster-wide only through
    // its instances, so it gets first pick of residual capacity; jobs are
    // indivisible and fill in around it.
    // ------------------------------------------------------------------
    // Per-host CPU actually claimed by an app (for the reclaim pass: a
    // zero-take instance is disposable when jobs are memory-blocked).
    let mut app_take: BTreeMap<(AppId, NodeId), f64> = BTreeMap::new();
    let mut ordered_apps: Vec<&AppRequest> = problem.apps.iter().collect();
    ordered_apps.sort_by(|a, b| b.demand.total_cmp(a.demand).then(a.id.cmp(&b.id)));
    for app in &ordered_apps {
        let hosts = app_hosts.entry(app.id).or_default();
        // Shrink above max_instances (stop the emptiest nodes first — the
        // flow would starve them anyway). Also shed down to min_instances
        // when the app is idle, releasing memory for future cycles.
        let shrink_to = if app.demand.is_zero() {
            app.min_instances.max(1) as usize
        } else {
            app.max_instances as usize
        };
        while hosts.len() > shrink_to && budget > 0 {
            let (pos, &host) = hosts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ca = idx_of(&nodes, **a).map_or(0.0, |i| nodes[i].cpu_free);
                    let cb = idx_of(&nodes, **b).map_or(0.0, |i| nodes[i].cpu_free);
                    fcmp(ca, cb).then(a.cmp(b))
                })
                .expect("hosts nonempty");
            if let Some(i) = idx_of(&nodes, host) {
                nodes[i].mem_free += app.mem_per_instance;
            }
            hosts.remove(pos);
            budget -= 1;
        }
        // Grow the host set until the reachable capacity covers the
        // target (or instances run out).
        loop {
            let reachable: f64 = hosts
                .iter()
                .filter_map(|h| idx_of(&nodes, *h))
                .map(|i| nodes[i].cpu_free)
                .sum();
            if reachable + 1e-6 >= app.demand.as_f64()
                || hosts.len() >= app.max_instances as usize
                || budget == 0
            {
                break;
            }
            let cand = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.mem_free.fits(app.mem_per_instance)
                        && n.cpu_free > 1e-9
                        && !hosts.contains(&n.id)
                })
                .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
                .map(|(i, _)| i);
            let Some(i) = cand else { break };
            nodes[i].mem_free -= app.mem_per_instance;
            hosts.push(nodes[i].id);
            budget -= 1;
        }
        // Spread the target evenly across the hosts (water-fill): a
        // load-balanced cluster divides its traffic, and packing nodes
        // solid would starve their memory slots of job CPU — the
        // Figure 2 ratio depends on this spreading.
        let mut remaining = app.demand.as_f64();
        for _ in 0..hosts.len().max(1) {
            if remaining <= 1e-6 {
                break;
            }
            let open: Vec<usize> = hosts
                .iter()
                .filter_map(|h| idx_of(&nodes, *h))
                .filter(|&i| nodes[i].cpu_free > 1e-9)
                .collect();
            if open.is_empty() {
                break;
            }
            let share = remaining / open.len() as f64;
            for i in open {
                let host = nodes[i].id;
                let take = share.min(nodes[i].cpu_free).min(remaining);
                nodes[i].cpu_free -= take;
                remaining -= take;
                *app_take.entry((app.id, host)).or_insert(0.0) += take;
            }
        }
        // Honour min_instances even when idle.
        while hosts.len() < app.min_instances as usize && budget > 0 {
            let cand = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.mem_free.fits(app.mem_per_instance) && !hosts.contains(&n.id))
                .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
                .map(|(i, _)| i);
            let Some(i) = cand else { break };
            nodes[i].mem_free -= app.mem_per_instance;
            hosts.push(nodes[i].id);
            budget -= 1;
        }
        hosts.sort();
    }

    // ------------------------------------------------------------------
    // Step 3: place unplaced jobs with positive targets, priority order.
    // ------------------------------------------------------------------
    let place_job = |job: &JobRequest, nodes: &mut [NodeState], budget: &mut usize| -> Option<NodeId> {
        if *budget == 0 || job.demand.is_zero() {
            return None;
        }
        // Affinity first if it can feed the job meaningfully.
        if let Some(aff) = job.affinity {
            if let Some(i) = idx_of(nodes, aff) {
                if nodes[i].mem_free.fits(job.mem)
                    && nodes[i].cpu_free >= job.demand.as_f64() * 0.5
                {
                    nodes[i].mem_free -= job.mem;
                    let got = job.demand.as_f64().min(nodes[i].cpu_free);
                    nodes[i].cpu_free -= got;
                    *budget -= 1;
                    return Some(aff);
                }
            }
        }
        // Otherwise, the node offering the most CPU (ties: more free
        // memory, then lower id).
        let best = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.mem_free.fits(job.mem) && n.cpu_free > 1e-9)
            .max_by(|(_, a), (_, b)| {
                fcmp(
                    a.cpu_free.min(job.demand.as_f64()),
                    b.cpu_free.min(job.demand.as_f64()),
                )
                .then(a.mem_free.cmp(&b.mem_free))
                .then(b.id.cmp(&a.id))
            })
            .map(|(i, _)| i)?;
        nodes[best].mem_free -= job.mem;
        let got = job.demand.as_f64().min(nodes[best].cpu_free);
        nodes[best].cpu_free -= got;
        *budget -= 1;
        Some(nodes[best].id)
    };

    for job in &ordered_jobs {
        if job_nodes.contains_key(&job.id) {
            continue;
        }
        if let Some(node) = place_job(job, &mut nodes, &mut budget) {
            job_nodes.insert(job.id, node);
            committed.insert(job.id, job.demand.as_f64().min(f64::MAX));
        }
    }

    // ------------------------------------------------------------------
    // Step 4: rebalance — migrate shortchanged running jobs to nodes
    // with room.
    // ------------------------------------------------------------------
    for job in &ordered_jobs {
        if budget == 0 {
            break;
        }
        let Some(&cur) = job_nodes.get(&job.id) else {
            continue;
        };
        if job.running_on != Some(cur) {
            continue; // only running jobs can live-migrate
        }
        let got = committed.get(&job.id).copied().unwrap_or(0.0);
        let deficit = job.demand.as_f64() - got;
        if deficit <= job.demand.as_f64() * 0.25 {
            continue; // close enough; not worth a migration
        }
        let target = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.id != cur && n.mem_free.fits(job.mem) && n.cpu_free > got + deficit * 0.5)
            .max_by(|(_, a), (_, b)| fcmp(a.cpu_free, b.cpu_free).then(b.id.cmp(&a.id)))
            .map(|(i, _)| i);
        if let Some(t) = target {
            let ci = idx_of(&nodes, cur).expect("current node exists");
            nodes[ci].mem_free += job.mem;
            nodes[ci].cpu_free += got;
            nodes[t].mem_free -= job.mem;
            let newgot = job.demand.as_f64().min(nodes[t].cpu_free);
            nodes[t].cpu_free -= newgot;
            committed.insert(job.id, newgot);
            job_nodes.insert(job.id, nodes[t].id);
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Step 5: eviction — unplaced high-priority jobs displace strictly
    // lower-priority running jobs (suspend + start = two changes).
    // ------------------------------------------------------------------
    for job in &ordered_jobs {
        if budget < 2 {
            break;
        }
        if job_nodes.contains_key(&job.id) || job.demand.is_zero() {
            continue;
        }
        // Cheapest victim: the lowest-priority placed job whose removal
        // makes room, strictly below this job's priority minus the gap.
        let victim = ordered_jobs
            .iter()
            .rev() // ascending priority
            .filter(|v| {
                job_nodes.contains_key(&v.id)
                    && v.priority + problem.config.evict_priority_gap < job.priority
            })
            .find(|v| {
                let node = job_nodes[&v.id];
                let i = idx_of(&nodes, node).expect("placed on known node");
                (nodes[i].mem_free + v.mem).fits(job.mem)
            })
            .map(|v| v.id);
        if let Some(vid) = victim {
            let vreq = problem.jobs.iter().find(|j| j.id == vid).expect("victim exists");
            let node = job_nodes.remove(&vid).expect("victim placed");
            let i = idx_of(&nodes, node).expect("known node");
            nodes[i].mem_free += vreq.mem;
            nodes[i].cpu_free += committed.remove(&vid).unwrap_or(0.0);
            budget -= 1; // the suspension
            nodes[i].mem_free -= job.mem;
            let got = job.demand.as_f64().min(nodes[i].cpu_free);
            nodes[i].cpu_free -= got;
            committed.insert(job.id, got);
            job_nodes.insert(job.id, node);
            budget -= 1; // the start
        }
    }

    // ------------------------------------------------------------------
    // Step 6: reclaim — when jobs with positive targets are still
    // memory-blocked, disposable (zero-CPU-take, above min_instances)
    // application instances give their memory back to the job tier. This
    // is the "drop least-useful instances when memory-blocked" move of
    // the NOMS'08 heuristic.
    // ------------------------------------------------------------------
    for job in &ordered_jobs {
        if budget < 2 {
            break;
        }
        if job_nodes.contains_key(&job.id) || job.demand.is_zero() {
            continue;
        }
        let mut placed_at: Option<NodeId> = None;
        'apps: for app in &ordered_apps {
            let hosts = app_hosts.get_mut(&app.id).expect("initialized above");
            if hosts.len() <= app.min_instances.max(1) as usize {
                continue;
            }
            for (pos, &host) in hosts.iter().enumerate() {
                let take = app_take.get(&(app.id, host)).copied().unwrap_or(0.0);
                if take > 1e-6 {
                    continue; // instance is carrying real load
                }
                let i = idx_of(&nodes, host).expect("host known");
                if (nodes[i].mem_free + app.mem_per_instance).fits(job.mem)
                    && nodes[i].cpu_free > 1e-9
                {
                    nodes[i].mem_free += app.mem_per_instance;
                    hosts.remove(pos);
                    budget -= 1; // the instance stop
                    nodes[i].mem_free -= job.mem;
                    let got = job.demand.as_f64().min(nodes[i].cpu_free);
                    nodes[i].cpu_free -= got;
                    committed.insert(job.id, got);
                    job_nodes.insert(job.id, host);
                    budget -= 1; // the job start
                    placed_at = Some(host);
                    break 'apps;
                }
            }
        }
        if placed_at.is_none() {
            continue;
        }
    }

    // ------------------------------------------------------------------
    // Step 7: exact allocation + bookkeeping.
    // ------------------------------------------------------------------
    let placement = allocate(
        &problem.nodes,
        &problem.apps,
        &app_hosts,
        &problem.jobs,
        &job_nodes,
        problem.config.mhz_unit,
    );
    let changes = placement.diff(prev);

    let satisfied_apps: BTreeMap<AppId, CpuMhz> = problem
        .apps
        .iter()
        .map(|a| (a.id, placement.app_alloc(a.id)))
        .collect();
    let satisfied_jobs: BTreeMap<JobId, CpuMhz> = placement
        .jobs
        .iter()
        .map(|(&j, &(_, c))| (j, c))
        .collect();
    let unplaced_jobs: Vec<JobId> = problem
        .jobs
        .iter()
        .filter(|j| !j.demand.is_zero() && !placement.jobs.contains_key(&j.id))
        .map(|j| j.id)
        .collect();

    PlacementOutcome {
        placement,
        changes,
        satisfied_apps,
        satisfied_jobs,
        unplaced_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{NodeCapacity, PlacementConfig};
    use proptest::prelude::*;

    fn nodes(n: u32, cpu: f64, mem: u64) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity {
                id: NodeId::new(i),
                cpu: CpuMhz::new(cpu),
                mem: MemMb::new(mem),
            })
            .collect()
    }

    fn jobr(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    fn appr(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 1,
            max_instances: 32,
        }
    }

    fn problem(
        nodes: Vec<NodeCapacity>,
        apps: Vec<AppRequest>,
        jobs: Vec<JobRequest>,
    ) -> PlacementProblem {
        PlacementProblem {
            nodes,
            apps,
            jobs,
            config: PlacementConfig::default(),
        }
    }

    #[test]
    fn empty_problem_yields_empty_outcome() {
        let p = problem(nodes(2, 12_000.0, 4096), vec![], vec![]);
        let out = solve(&p, &Placement::empty());
        assert!(out.placement.jobs.is_empty());
        assert!(out.changes.is_empty());
        assert!(out.unplaced_jobs.is_empty());
    }

    #[test]
    fn memory_limits_jobs_per_node() {
        // The paper's constraint: 4 cores but only 3 jobs fit in memory.
        let p = problem(
            nodes(1, 12_000.0, 4096),
            vec![],
            (0..4).map(|i| jobr(i, 3000.0)).collect(),
        );
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.jobs.len(), 3);
        assert_eq!(out.unplaced_jobs.len(), 1);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(9000.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn placement_is_sticky_across_cycles() {
        let p = problem(
            nodes(3, 12_000.0, 4096),
            vec![appr(0, 9000.0)],
            (0..4).map(|i| jobr(i, 3000.0)).collect(),
        );
        let first = solve(&p, &Placement::empty());
        // Second cycle: mark jobs as running where they landed.
        let mut p2 = p.clone();
        for j in &mut p2.jobs {
            j.running_on = first.placement.job_node(j.id);
        }
        let second = solve(&p2, &first.placement);
        assert!(
            second.changes.is_empty(),
            "unchanged problem must not churn: {:?}",
            second.changes
        );
        assert_eq!(second.placement.jobs, first.placement.jobs);
    }

    #[test]
    fn change_budget_caps_disruptions() {
        let mut p = problem(
            nodes(2, 12_000.0, 8192),
            vec![],
            (0..6).map(|i| jobr(i, 3000.0)).collect(),
        );
        p.config.max_changes = Some(2);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.changes.len(), 2, "{:?}", out.changes);
        assert_eq!(out.placement.jobs.len(), 2);
        assert_eq!(out.unplaced_jobs.len(), 4);
    }

    #[test]
    fn high_priority_pending_evicts_low_priority_running() {
        // Node full with three running low-priority jobs; a high-priority
        // job arrives.
        let mut jobs: Vec<JobRequest> = (0..3)
            .map(|i| {
                let mut j = jobr(i, 500.0);
                j.running_on = Some(NodeId::new(0));
                j.priority = 1.0;
                j
            })
            .collect();
        let mut hot = jobr(3, 3000.0);
        hot.priority = 100.0;
        jobs.push(hot);
        let mut prev = Placement::empty();
        for i in 0..3 {
            prev.jobs
                .insert(JobId::new(i), (NodeId::new(0), CpuMhz::new(500.0)));
        }
        let mut p = problem(nodes(1, 12_000.0, 4096), vec![], jobs);
        p.config.evict_priority_gap = 10.0;
        let out = solve(&p, &prev);
        assert!(out.placement.jobs.contains_key(&JobId::new(3)));
        assert_eq!(out.placement.jobs.len(), 3);
        let suspended = out
            .changes
            .iter()
            .filter(|c| matches!(c, PlacementChange::SuspendJob { .. }))
            .count();
        assert_eq!(suspended, 1);
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn eviction_respects_priority_gap() {
        let mut running = jobr(0, 2900.0);
        running.running_on = Some(NodeId::new(0));
        running.priority = 95.0;
        let mut pending = jobr(1, 3000.0);
        pending.priority = 100.0;
        // Memory only fits one job.
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(2900.0)));
        let mut p = problem(nodes(1, 12_000.0, 1500), vec![], vec![running, pending]);
        p.config.evict_priority_gap = 10.0; // gap of 5 < 10: no eviction
        let out = solve(&p, &prev);
        assert!(out.placement.jobs.contains_key(&JobId::new(0)));
        assert!(!out.placement.jobs.contains_key(&JobId::new(1)));
    }

    #[test]
    fn shortchanged_running_job_migrates_to_free_node() {
        // Two jobs run on node0 (cpu 3000): together they demand 6000.
        // Node1 is idle: the solver should migrate one over.
        let mut j0 = jobr(0, 3000.0);
        j0.running_on = Some(NodeId::new(0));
        let mut j1 = jobr(1, 3000.0);
        j1.running_on = Some(NodeId::new(0));
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(1500.0)));
        prev.jobs
            .insert(JobId::new(1), (NodeId::new(0), CpuMhz::new(1500.0)));
        let p = problem(nodes(2, 3000.0, 4096), vec![], vec![j0, j1]);
        let out = solve(&p, &prev);
        let migrations = out
            .changes
            .iter()
            .filter(|c| matches!(c, PlacementChange::MigrateJob { .. }))
            .count();
        assert_eq!(migrations, 1, "{:?}", out.changes);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(6000.0));
    }

    #[test]
    fn app_grows_instances_to_cover_demand() {
        let p = problem(nodes(4, 12_000.0, 4096), vec![appr(0, 30_000.0)], vec![]);
        let out = solve(&p, &Placement::empty());
        assert!(out.placement.app_instances(AppId::new(0)) >= 3);
        assert!(out
            .total_app_satisfied()
            .approx_eq(CpuMhz::new(30_000.0), 1.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn idle_app_keeps_min_instances() {
        let mut app = appr(0, 0.0);
        app.min_instances = 2;
        let p = problem(nodes(3, 12_000.0, 4096), vec![app], vec![]);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.app_instances(AppId::new(0)), 2);
        assert_eq!(out.total_app_satisfied(), CpuMhz::ZERO);
    }

    #[test]
    fn idle_app_sheds_extra_instances() {
        // Previously spread over 3 nodes; demand collapses to zero.
        let mut prev = Placement::empty();
        for n in 0..3 {
            prev.apps
                .entry(AppId::new(0))
                .or_default()
                .insert(NodeId::new(n), CpuMhz::new(1000.0));
        }
        let mut app = appr(0, 0.0);
        app.min_instances = 1;
        let p = problem(nodes(3, 12_000.0, 4096), vec![app], vec![]);
        let out = solve(&p, &prev);
        assert_eq!(out.placement.app_instances(AppId::new(0)), 1);
        let stops = out
            .changes
            .iter()
            .filter(|c| matches!(c, PlacementChange::StopInstance { .. }))
            .count();
        assert_eq!(stops, 2);
    }

    #[test]
    fn max_instances_caps_app_growth() {
        let mut app = appr(0, 48_000.0);
        app.max_instances = 2;
        let p = problem(nodes(4, 12_000.0, 4096), vec![app], vec![]);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.app_instances(AppId::new(0)), 2);
        assert!(out
            .total_app_satisfied()
            .approx_eq(CpuMhz::new(24_000.0), 1.0));
    }

    #[test]
    fn mixed_workload_shares_one_node() {
        let p = problem(
            nodes(1, 12_000.0, 4096),
            vec![appr(0, 6000.0)],
            vec![jobr(0, 3000.0), jobr(1, 3000.0)],
        );
        let out = solve(&p, &Placement::empty());
        // 2 jobs (2×1280) + 1 instance (1024) = 3584 ≤ 4096 ✓; CPU exactly full.
        assert_eq!(out.placement.jobs.len(), 2);
        assert_eq!(out.total_job_satisfied(), CpuMhz::new(6000.0));
        assert!(out.total_app_satisfied().approx_eq(CpuMhz::new(6000.0), 1.0));
        out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
    }

    #[test]
    fn zero_demand_jobs_are_not_newly_placed_but_kept_if_running() {
        let mut running = jobr(0, 0.0);
        running.running_on = Some(NodeId::new(0));
        running.priority = 0.0;
        let pending = jobr(1, 0.0);
        let mut prev = Placement::empty();
        prev.jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::ZERO));
        let p = problem(nodes(2, 12_000.0, 4096), vec![], vec![running, pending]);
        let out = solve(&p, &prev);
        assert!(out.placement.jobs.contains_key(&JobId::new(0)), "kept running");
        assert!(!out.placement.jobs.contains_key(&JobId::new(1)), "not started");
        assert!(out.unplaced_jobs.is_empty(), "zero-demand pending is not 'unplaced'");
    }

    #[test]
    fn suspended_job_prefers_affinity_node() {
        let mut j = jobr(0, 3000.0);
        j.affinity = Some(NodeId::new(1));
        let p = problem(nodes(3, 12_000.0, 4096), vec![], vec![j]);
        let out = solve(&p, &Placement::empty());
        assert_eq!(out.placement.job_node(JobId::new(0)), Some(NodeId::new(1)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_outcome_always_valid_and_within_budget(
            n_nodes in 1u32..6,
            node_cpu in 3000.0..16_000.0f64,
            node_mem in 1024u64..8192,
            app_demands in proptest::collection::vec(0.0..40_000.0f64, 0..3),
            job_demands in proptest::collection::vec(0.0..3000.0f64, 0..12),
            budget in proptest::option::of(0usize..8),
        ) {
            let apps: Vec<AppRequest> = app_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut a = appr(i as u32, d);
                    a.min_instances = 0;
                    a
                })
                .collect();
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| jobr(i as u32, d))
                .collect();
            let mut p = problem(nodes(n_nodes, node_cpu, node_mem), apps, jobs);
            p.config.max_changes = budget;
            let out = solve(&p, &Placement::empty());
            // 1. Structural validity (capacity constraints, counts).
            out.placement.validate(&p.nodes, &p.apps, &p.jobs).unwrap();
            // 2. Budget respected.
            if let Some(b) = budget {
                prop_assert!(out.changes.len() <= b, "{} > {b}", out.changes.len());
            }
            // 3. Nobody exceeds their demand.
            for a in &p.apps {
                prop_assert!(
                    out.satisfied_apps[&a.id].as_f64() <= a.demand.as_f64() + 1.0
                );
            }
            for j in &p.jobs {
                if let Some(&got) = out.satisfied_jobs.get(&j.id) {
                    prop_assert!(got.as_f64() <= j.demand.as_f64() + 1.0);
                }
            }
        }

        #[test]
        fn prop_resolving_same_problem_is_stable(
            n_nodes in 1u32..5,
            job_demands in proptest::collection::vec(100.0..3000.0f64, 1..10),
        ) {
            let jobs: Vec<JobRequest> = job_demands
                .iter()
                .enumerate()
                .map(|(i, &d)| jobr(i as u32, d))
                .collect();
            let p = problem(nodes(n_nodes, 12_000.0, 4096), vec![], jobs);
            let first = solve(&p, &Placement::empty());
            let mut p2 = p.clone();
            for j in &mut p2.jobs {
                j.running_on = first.placement.job_node(j.id);
            }
            let second = solve(&p2, &first.placement);
            prop_assert!(second.changes.is_empty(), "churn: {:?}", second.changes);
        }
    }
}
