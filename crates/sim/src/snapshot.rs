//! The **snapshot** stage of the control pipeline: an owned, `Send`
//! capture of everything a controller may observe at a control cycle.
//!
//! [`ControlInputs`] is a bundle of borrows into the
//! live simulator — perfect for the synchronous path, where the solve
//! happens inline and the world cannot move underneath it, but useless for
//! an overlapped solve that must outlive the control cycle it was sensed
//! in. [`SensingSnapshot`] is the owned counterpart: node capacities, the
//! placement in force, the whole job manager (states, remaining work,
//! SLAs) and the per-application observations, cloned once at sensing
//! time. It is `Send`, so a solve task built from it can cross a worker
//! boundary (today's worker runs inline under the sequential `rayon`
//! stand-in; real threads get the same contract for free), and
//! [`SensingSnapshot::inputs`] lends it back out as `ControlInputs` so
//! any [`Controller`](crate::Controller) can solve against the frozen
//! world without knowing it is stale.
//!
//! Staleness is the point: a plan computed from a snapshot taken at cycle
//! *k* describes the world as it *was*; whoever enacts it at cycle
//! *k + latency* must reconcile it against the world as it *is* (jobs
//! completed meanwhile, nodes failed, arrivals the plan never saw). The
//! reconciliation lives with the pipeline driver in `slaq-core`; this
//! module only guarantees the capture is complete and detached.

use crate::apps::AppObservation;
use crate::simulator::ControlInputs;
use slaq_jobs::JobManager;
use slaq_placement::problem::NodeCapacity;
use slaq_placement::Placement;
use slaq_types::SimTime;

/// An owned, detached capture of one control cycle's observations — the
/// snapshot stage of the snapshot → solve → actuate pipeline.
#[derive(Debug, Clone)]
pub struct SensingSnapshot {
    /// Instant the snapshot was taken (the sensing cycle's `now`).
    pub now: SimTime,
    /// Node capacities as sensed (outage-affected nodes read zero).
    pub nodes: Vec<NodeCapacity>,
    /// Placement in force at sensing time.
    pub current: Placement,
    /// The job population, frozen: states, remaining work, SLAs.
    pub jobs: JobManager,
    /// Per-application observations (spec + estimated intensity).
    pub apps: Vec<AppObservation>,
}

impl SensingSnapshot {
    /// Capture the live inputs into an owned snapshot.
    pub fn capture(inputs: &ControlInputs<'_>) -> Self {
        SensingSnapshot {
            now: inputs.now,
            nodes: inputs.nodes.to_vec(),
            current: inputs.current.clone(),
            jobs: inputs.jobs.clone(),
            apps: inputs.apps.to_vec(),
        }
    }

    /// Lend the snapshot back out as controller inputs: any
    /// [`Controller`](crate::Controller) can solve against the frozen
    /// world exactly as it would against the live one.
    pub fn inputs(&self) -> ControlInputs<'_> {
        ControlInputs {
            now: self.now,
            nodes: &self.nodes,
            current: &self.current,
            jobs: &self.jobs,
            apps: &self.apps,
        }
    }
}

// A snapshot must be able to cross a solve-worker boundary.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SensingSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_jobs::JobSpec;
    use slaq_types::{CpuMhz, JobId, MemMb, NodeId, SimDuration, Work};
    use slaq_utility::CompletionGoal;

    fn job_spec(work_secs: f64) -> JobSpec {
        JobSpec {
            name: "snap".into(),
            total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::ZERO,
                SimDuration::from_secs(work_secs),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    #[test]
    fn capture_is_detached_from_the_live_world() {
        let nodes = vec![NodeCapacity {
            id: NodeId::new(0),
            cpu: CpuMhz::new(12_000.0),
            mem: MemMb::new(4096),
        }];
        let mut jobs = JobManager::new();
        jobs.submit(job_spec(1000.0), SimTime::ZERO).unwrap();
        let mut placement = Placement::empty();
        placement
            .jobs
            .insert(JobId::new(0), (NodeId::new(0), CpuMhz::new(3000.0)));
        let inputs = ControlInputs {
            now: SimTime::from_secs(600.0),
            nodes: &nodes,
            current: &placement,
            jobs: &jobs,
            apps: &[],
        };
        let snap = SensingSnapshot::capture(&inputs);

        // The live world moves on; the snapshot does not.
        jobs.job_mut(JobId::new(0))
            .unwrap()
            .start(NodeId::new(0), SimTime::from_secs(600.0))
            .unwrap();
        placement.jobs.clear();

        assert_eq!(snap.now, SimTime::from_secs(600.0));
        assert_eq!(snap.jobs.len(), 1);
        assert!(matches!(
            snap.jobs.job(JobId::new(0)).unwrap().state,
            slaq_jobs::JobState::Pending
        ));
        assert_eq!(snap.current.jobs.len(), 1);

        // And it lends itself back out as equivalent inputs.
        let lent = snap.inputs();
        assert_eq!(lent.now, snap.now);
        assert_eq!(lent.current.job_node(JobId::new(0)), Some(NodeId::new(0)));
        assert_eq!(lent.nodes.len(), 1);
    }
}
