//! # slaq-placement — the Application Placement Controller
//!
//! The optimizer at the heart of the paper's system (the "APC" of the
//! authors' middleware, algorithmically the NOMS'08 placement heuristic
//! extended with long-running jobs). Every control cycle it receives:
//!
//! * per-entity **CPU targets** from the utility equalizer — how much CPU
//!   each transactional application and each job *should* get;
//! * node capacities (CPU MHz, memory MB) and the **previous placement**.
//!
//! and produces a placement that realizes those targets as closely as the
//! discrete constraints allow:
//!
//! * transactional applications are **fluid but clustered** — they may
//!   have at most one instance per node, each instance carries a memory
//!   footprint, and the cluster-wide allocation is the sum of per-node
//!   slices;
//! * jobs are **indivisible** — exactly one node, a memory footprint
//!   (three jobs per node in the paper's testbed), and an allocation
//!   capped by the job's maximum speed;
//! * **churn is bounded** — placements are sticky, and the number of
//!   disruptive actions per cycle (job starts/resumes/migrations/
//!   suspensions, instance starts/stops) can be capped.
//!
//! The allocation subproblem for a *fixed* placement is solved exactly as
//! a max-flow (`allocation` module, on top of `slaq-flow`); the discrete
//! placement search is the greedy-with-improvement heuristic in `solver`.
//!
//! ## Candidate-node heap (`heap` module)
//!
//! The heuristic's improvement steps pick nodes through a
//! [`CandidateHeap`]: an indexed tournament heap keyed by residual CPU
//! (with free-memory and shard-membership summaries for pruning),
//! updated incrementally as placements land — `O(log N)` per candidate
//! query instead of the full-node `max_by` scan the solver used through
//! PR 4, and **bit-identical** to it (the heap reproduces the scan
//! comparators exactly; differential tests against both the retained
//! scan engine and the seed `reference` oracle pin this). A job is still
//! placed "on the node offering it the most residual CPU among those
//! with memory room" — the heap only changes how that node is found,
//! turning the placement loop from `O(J·N)` into `O(J log N)`.
//!
//! ## Sharded solves (`shard` module)
//!
//! For large fleets the crate also offers a **zone-partitioned engine**:
//! [`ShardedSolver`] implements the same `solve(problem, prev)` interface
//! as [`Solver`] but partitions the nodes into shards (per zone label or
//! a fixed count, via [`ShardMap`]/[`ShardPlan`]), solves the shards with
//! independent warm `Solver`s — in parallel under real `rayon` — and then
//! runs a budgeted **cross-shard rebalance pass** that migrates the most
//! unsatisfied jobs from over-subscribed shards onto foreign-shard nodes
//! with residual capacity.
//!
//! Fidelity guarantees, in decreasing strength:
//!
//! * **1 shard ≡ global.** A single-shard plan routes through the exact
//!   global solve, bit for bit (differential tests pin this on the whole
//!   scenario corpus and on random problems).
//! * **k shards: feasible, near-global.** Every capacity/instance-count
//!   constraint of the merged placement still holds (`Placement::
//!   validate`); placement *quality* may trail the global solve because
//!   app demand is split across shards proportionally to capacity and a
//!   job confined to a crowded shard is only rescued by the budgeted
//!   rebalance pass. Corpus tests pin the utility gap. (With the
//!   candidate heap the global solve is already `O(J log N)`, so under
//!   the sequential `rayon` stand-in sharding no longer wins on scan
//!   width at the bench shapes — its payoff is the `~k×` smaller
//!   allocation flows, zone isolation, and real thread parallelism once
//!   the stand-in is swapped for the real crate.)

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod allocation;
pub mod delta;
pub mod heap;
pub mod placement;
pub mod problem;
#[doc(hidden)]
pub mod reference;
pub mod shard;
pub mod solver;

pub use allocation::{allocate, Allocator};
pub use delta::{DeltaStats, SolveDelta};
pub use heap::CandidateHeap;
pub use placement::{Placement, PlacementChange};
pub use problem::{AppRequest, JobRequest, NodeCapacity, PlacementConfig, PlacementProblem};
pub use shard::{ShardMap, ShardPlan, ShardedSolver};
pub use solver::{solve, CandidateEngine, PlacementOutcome, SolveMode, Solver};
